#!/usr/bin/env python
"""Observe a distributed run and render its markdown run report.

Runs three MoDa steps on 4 simulated ranks with ``observe=True`` on the
run config: the shared :class:`~repro.simmpi.RunContext` then carries a
live metric registry (labeled counters/gauges/histograms) and per-layer
router telemetry next to its traffic counters and phase timers. The
script prints the Prometheus exposition of the registry, the per-op comm
profile with cost-model utilization, and the router load heatmap, then
writes ``run_report.md`` — the same deterministic markdown the CLI's
``report`` subcommand produces from a ``--metrics`` JSONL file.

The CLI round trip:

    python -m repro.cli distributed --observe --metrics out.jsonl
    python -m repro.cli report out.jsonl --out report.md

Run:  python examples/run_report.py
"""

from repro.api import (
    TrainingRunConfig,
    build_report,
    collect_run_records,
    profile_comm,
    run_distributed_training,
    sunway_network,
    tiny_config,
)

WORLD, EP = 4, 2
CFG = tiny_config(num_experts=4)


def main() -> None:
    net = sunway_network(WORLD, supernode_size=4)
    run_cfg = TrainingRunConfig(
        model=CFG,
        world_size=WORLD,
        ep_size=EP,
        num_steps=3,
        batch_size=2,
        seq_len=8,
        trace=True,     # timed per-(op, rank) comm records
        observe=True,   # live registry + router telemetry
    )
    res = run_distributed_training(run_cfg, network=net)
    ctx = res.context

    from repro.obs import to_prometheus

    print("=== Prometheus exposition ===")
    print(to_prometheus(ctx.metrics))

    print("=== Comm profile (virtual time vs cost model) ===")
    print(profile_comm(ctx, network=net).format_table())

    print("\n=== Router load heatmap, layer 0 ===")
    print(ctx.router.heatmap(0))

    records = collect_run_records(ctx, network=net)
    records += [{"step": s, "loss": loss} for s, loss in enumerate(res.losses)]
    report = build_report(records, title="Observed MoDa run")
    with open("run_report.md", "w") as fh:
        fh.write(report)
    print(f"\nwrote run_report.md ({len(report.splitlines())} lines)")


if __name__ == "__main__":
    main()
