#!/usr/bin/env python
"""Pipeline-parallel training (GPipe) on simulated ranks.

Splits a 4-layer MoE transformer into 2 stages across 2 simulated ranks
and trains with 4 microbatches per step. Demonstrates the third parallel
axis beyond the paper's MoDa (data x expert): stage boundaries exchange
activations/gradients point-to-point, and the classic pipeline *bubble*
shows up directly in the virtual-clock timing.

Run:  python examples/pipeline_parallel.py
"""

import numpy as np

from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import tiny_config
from repro.network import flat_network
from repro.parallel import GPipeRunner, pipeline_bubble_fraction
from repro.simmpi import run_spmd
from repro.train import Adam

STAGES = 2
MICROBATCHES = 4
STEPS = 10
CFG = tiny_config(n_layers=4)


def rank_program(comm):
    runner = GPipeRunner(CFG, comm, num_microbatches=MICROBATCHES, seed=0)
    corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, predictability=0.9, seed=1)
    loader = ShardedLoader(corpus, batch_size=8, seq_len=16)
    optimizer = Adam(runner.stage.parameters(), lr=3e-3)

    losses = []
    for step in range(STEPS):
        batch = loader.get_batch(step)
        runner.stage.zero_grad()
        losses.append(runner.train_step(batch.tokens, batch.targets))
        optimizer.step()
    return {
        "losses": losses,
        "stage_params": runner.stage.num_parameters(),
        "role": "first" if runner.is_first else "last",
    }


def main() -> None:
    print(f"GPipe: {CFG.n_layers} layers over {STAGES} stages, "
          f"{MICROBATCHES} microbatches "
          f"(bubble {pipeline_bubble_fraction(STAGES, MICROBATCHES):.0%})")
    res = run_spmd(rank_program, STAGES, network=flat_network(STAGES), timeout=300)

    for rank, info in enumerate(res.returns):
        print(f"  stage {rank} ({info['role']}): "
              f"{info['stage_params']:,} parameters")
    losses = res.returns[0]["losses"]
    print("loss per step:", " ".join(f"{v:.3f}" for v in losses))
    print(f"simulated time: {res.simulated_time * 1e3:.3f} ms "
          f"({res.stats.p2p_messages} boundary messages)")

    assert losses[-1] < losses[0]
    assert np.allclose(res.returns[0]["losses"], res.returns[1]["losses"])
    print("OK — stages agree and the loss decreased")


if __name__ == "__main__":
    main()
