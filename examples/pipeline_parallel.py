#!/usr/bin/env python
"""Pipeline-parallel training (GPipe) through the strategy registry.

Splits a 4-layer MoE transformer into 2 stages across 2 simulated ranks
and trains with 4 microbatches per step — the third parallel axis beyond
the paper's MoDa (data x expert). Setting ``pp_size=2`` on the run config
is all it takes: the registry routes the layout to the ``pipeline``
strategy, stage boundaries exchange activations/gradients point-to-point,
and the classic pipeline *bubble* shows up directly in the virtual-clock
timing.

Run:  python examples/pipeline_parallel.py
"""

from repro.models import tiny_config
from repro.network import flat_network
from repro.parallel import (
    TrainingRunConfig,
    pipeline_bubble_fraction,
    run_distributed_training,
)
from repro.utils import format_time

STAGES = 2
MICROBATCHES = 4
STEPS = 10
CFG = tiny_config(n_layers=4)


def main() -> None:
    print(f"GPipe: {CFG.n_layers} layers over {STAGES} stages, "
          f"{MICROBATCHES} microbatches "
          f"(bubble {pipeline_bubble_fraction(STAGES, MICROBATCHES):.0%})")

    run_cfg = TrainingRunConfig(
        model=CFG,
        world_size=STAGES,
        pp_size=STAGES,
        num_microbatches=MICROBATCHES,
        num_steps=STEPS,
        batch_size=8,
        seq_len=16,
        lr=3e-3,
        corpus_predictability=0.9,
    )
    print(f"layout  : {run_cfg.layout.describe()}")
    print(f"strategy: {run_cfg.resolve_strategy().name!r}")
    res = run_distributed_training(run_cfg, network=flat_network(STAGES))

    print("loss per step:", " ".join(f"{v:.3f}" for v in res.losses))
    print(f"simulated step time: {format_time(res.step_time)} "
          f"({res.traffic['p2p_messages']} boundary messages)")
    print("virtual time per phase (rank 0):")
    for phase, seconds in res.phase_seconds.items():
        print(f"  {phase:<12} {format_time(seconds)}")

    assert res.losses[-1] < res.losses[0]
    assert res.traffic["p2p_messages"] > 0
    print("OK — stages agree and the loss decreased")


if __name__ == "__main__":
    main()
