#!/usr/bin/env python
"""Compare gating strategies on a Zipf-distributed token stream.

Natural-language tokens are Zipf-distributed, so content-based top-k
routing concentrates load on a few experts; in synchronous expert
parallelism the most-loaded expert paces everyone. This example routes the
same 4,096 tokens through each gate and translates the measured imbalance
into a projected full-machine step time.

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro.data import SyntheticCorpus
from repro.hardware import sunway_machine
from repro.models import Embedding, Linear, bagualu_14_5t
from repro.moe import load_stats, make_gate
from repro.network import sunway_network
from repro.perf import ParallelPlan, StepModel

VOCAB, D, EXPERTS, TOKENS = 512, 32, 32, 4096


def main() -> None:
    rng = np.random.default_rng(0)
    corpus = SyntheticCorpus(vocab_size=VOCAB, zipf_alpha=1.1, seed=0)
    tokens = corpus.sample(TOKENS)
    emb = Embedding(VOCAB, D, rng)
    router = Linear(D, EXPERTS, rng, bias=False)
    logits = router(emb(tokens.reshape(1, -1)).reshape(TOKENS, D))

    sm = StepModel(bagualu_14_5t(), sunway_machine(96_000), sunway_network(96_000))

    print(f"{TOKENS} Zipf tokens over {EXPERTS} experts\n")
    print(f"{'gate':<12} {'max':>5} {'mean':>7} {'imbalance':>10} {'proj. step @96k':>16}")
    for name in ("topk", "noisy-topk", "balanced", "random"):
        gate = make_gate(name, EXPERTS, top_k=1)
        out = gate(logits, np.random.default_rng(1))
        stats = load_stats(out.load)
        plan = ParallelPlan(
            num_nodes=96_000, ep_size=96_000, micro_batch=8, seq_len=2048,
            load_imbalance=float(stats.imbalance),
        )
        print(f"{name:<12} {stats.max:5.0f} {stats.mean:7.1f} "
              f"{stats.imbalance:10.2f} {sm.step_time(plan):13.1f} s")

    print("\nbalanced gating keeps the load bound near 1.0, which is what "
          "lets 96,000 nodes run in lock-step (the paper's SWIPE-style "
          "balanced routing).")


if __name__ == "__main__":
    main()
