#!/usr/bin/env python
"""Elastic training: survive a dead node by shrinking the world.

A stochastic fault model (seeded, so this script is deterministic) gives
every node an exponential time-to-failure and marks node 3 as permanently
dead. The recovery supervisor classifies each failure, backs off with a
capped exponential schedule, and — after node 3 fails twice — performs an
elastic restart: it excludes the node, halves the world from 4 to 2
ranks, reshards the experts *and* the optimizer state through the
layout-independent checkpoint format, and resumes.

The shrunken world replays the original schedule with fold-carry
gradient accumulation, so the stitched loss trajectory equals a healthy
full-width run exactly — verified at the end against a fault-free
reference.

Run:  python examples/elastic_training.py
"""

import tempfile
from pathlib import Path

from repro.models import tiny_config
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.resilience import ElasticRunConfig, Supervisor
from repro.simmpi import FaultModel

CFG = tiny_config(num_experts=4)
STEPS = 8


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        supervisor = Supervisor(
            ElasticRunConfig(
                model=CFG, world_size=4, ep_size=2, total_steps=STEPS,
                checkpoint_every=2, checkpoint_dir=Path(tmp) / "ckpts",
                batch_size=2, seq_len=8, seed=0, max_restarts=8,
                # Virtual step times for this tiny model are ~1e-4 s;
                # scale the backoff to the same regime so the goodput
                # number printed below stays meaningful.
                backoff_base=1e-4, backoff_cap=1e-3,
            ),
            faults=FaultModel(seed=0, mtbf=1e-3, dead_nodes=(3,)),
        )
        res = supervisor.run()

        print("session timeline:")
        for event in res.context.events:
            kind = event["kind"]
            extra = ""
            if kind == "failure":
                extra = f"  rank {event['rank']} (node {event['node']})"
            elif kind == "elastic_restart":
                extra = (f"  node {event['node']} excluded after "
                         f"{event['strikes']} strikes")
            elif kind == "reshard":
                extra = (f"  world {event['from_world']} -> {event['to_world']}, "
                         f"ep {event['from_ep']} -> {event['to_ep']}")
            print(f"  t={event['t']:9.4f}s  {kind:<16}{extra}")

        print(f"\nrestarts={res.restarts}  shrinks={res.shrinks}  "
              f"world history {res.world_history}  "
              f"finished at world={res.final_world_size}")
        print(f"lost steps={res.lost_steps}  goodput={res.goodput:.3f}  "
              f"availability={res.availability:.3f}")

        # A healthy full-width run of the same configuration: the elastic
        # session must land on the identical trajectory from wherever it
        # resumed, even though it finished on half the ranks.
        healthy = run_distributed_training(
            TrainingRunConfig(
                model=CFG, world_size=4, ep_size=2, num_steps=STEPS,
                batch_size=2, seq_len=8, seed=0,
            )
        )
        overlap = healthy.losses[res.first_step:]
        assert overlap == res.losses, "trajectories diverged"
        print(f"\n{'step':>5} {'healthy':>9} {'elastic':>9}")
        for i, loss in enumerate(res.losses):
            print(f"{res.first_step + i:5d} {overlap[i]:9.4f} {loss:9.4f}")
        print("\nOK — the elastic session (finishing on 2 of 4 ranks) "
              "matches the healthy run exactly")


if __name__ == "__main__":
    main()
