#!/usr/bin/env python
"""Search parallel layouts with the auto-parallelism planner.

One call enumerates every launchable (dp, tp, pp, ep, zero) factorization
of an 8-node world for a tiny MoE config, ranks them with the analytic
step model, verifies the top-2 with short simulated training runs through
the strategy registry, and calibrates the model against the best
measurement. The script prints the ranked table, the rejections (each
carrying the exact error message a real launch would raise), and writes
``plan_report.md`` — the same deterministic markdown the CLI's ``plan``
subcommand produces.

The CLI one-liner:

    python -m repro.cli plan --nodes 8 --cluster toy --out plan.md

Run:  python examples/plan_layouts.py
"""

from repro.api import generate_plan_report, plan_layouts, tiny_config

# 4 layers with alternating dense/MoE blocks: every axis has something to
# parallelise (TP shards the dense FFNs, pp splits the stack, EP the experts).
CFG = tiny_config(n_layers=4, moe_every=2, num_experts=8)
NODES = 8


def main() -> None:
    result = plan_layouts(
        CFG,
        num_nodes=NODES,
        cluster="toy",  # laptop-class nodes on 4-node supernodes
        top_k=2,
        verify_steps=2,
    )

    print(f"planned {CFG.name} on {NODES} 'toy' nodes: "
          f"{len(result.candidates)} launchable layouts, "
          f"{len(result.rejected)} rejected\n")

    print("rank  layout                         strategy   predicted step")
    for rank, cand in enumerate(result.candidates[:8], start=1):
        lay = cand.layout
        axes = (f"dp={lay.dp_size} tp={lay.tp_size} pp={lay.pp_size} "
                f"ep={lay.ep_size} zero={lay.zero_shards}")
        print(f"  #{rank:<3} {axes:<30} {cand.strategy:<10} "
              f"{cand.predicted_step_time * 1e6:8.1f} us")

    print("\nverified against short simulated runs:")
    for v in result.verified:
        cal = ("" if v.calibrated_relative_error is None
               else f" -> {v.calibrated_relative_error:.1%} after calibration")
        print(f"  {v.candidate.layout.describe()}: "
              f"measured {v.measured_step_time * 1e6:.1f} us "
              f"(raw error {v.relative_error:.1%}{cal})")
    if result.calibration is not None:
        print(f"  fitted compute efficiency: {result.calibration.efficiency:.3f}")
    print(f"  median model-vs-measured error: "
          f"{result.median_relative_error:.1%}")

    print("\nsample rejections (same ConfigError a launch would raise):")
    for rej in result.rejected[:3]:
        print(f"  {rej.layout.describe()}: {rej.reason}")

    report = generate_plan_report(result, out_path="plan_report.md",
                                  title=f"Plan report: {CFG.name}")
    print(f"\nwrote plan_report.md ({len(report.splitlines())} lines, "
          "byte-stable across runs)")


if __name__ == "__main__":
    main()
