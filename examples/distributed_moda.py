#!/usr/bin/env python
"""MoDa hybrid parallel training on a simulated 8-node Sunway machine.

Launches an SPMD program on 8 simulated MPI ranks (2 supernodes of 4):
experts are sharded over expert-parallel groups of 4 (one per supernode),
dense parameters are data-parallel across all 8. The layout alone selects
the ``moda`` strategy from the registry; every communication call advances
a virtual clock using the topology cost model, so the run reports
*simulated* step time, per-phase breakdown, and traffic alongside the
(exactly synchronous) loss.

Run:  python examples/distributed_moda.py
"""

from repro.models import tiny_config
from repro.network import sunway_network
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.utils import format_bytes, format_time

WORLD = 8
EP = 4


def main() -> None:
    cfg = tiny_config(num_experts=8, gate="balanced")
    net = sunway_network(WORLD, supernode_size=4)

    run_cfg = TrainingRunConfig(
        model=cfg,
        world_size=WORLD,
        ep_size=EP,
        num_steps=10,
        batch_size=4,
        seq_len=16,
        alltoall_algorithm="hierarchical",
        allreduce_algorithm="hierarchical",
        mixed_precision=True,
    )
    strategy = run_cfg.resolve_strategy()
    print(f"layout  : {run_cfg.layout.describe()}")
    print(f"strategy: {strategy.name!r} (selected from the layout)")
    print(f"launching {WORLD} ranks (EP groups of {EP}, {WORLD // EP} expert "
          f"replicas), mixed precision, balanced gate")
    result = run_distributed_training(run_cfg, network=net)

    print("\nglobal loss per step:")
    for i, loss in enumerate(result.losses):
        print(f"  step {i:2d}  loss {loss:.4f}")

    print(f"\nsimulated step time : {format_time(result.step_time)}")
    print(f"expert load imbalance: {result.load_imbalance:.2f} (max/mean)")
    print(f"total traffic        : {format_bytes(result.traffic['total_bytes'])}")
    print(f"collective calls     : {result.traffic['collective_calls']}")
    print("virtual time per phase (rank 0):")
    for phase, seconds in result.phase_seconds.items():
        print(f"  {phase:<12} {format_time(seconds)}")

    assert result.losses[-1] < result.losses[0]
    print("\nOK — loss decreased and every rank agreed on the trajectory")


if __name__ == "__main__":
    main()
