#!/usr/bin/env python
"""Mixed-precision training with dynamic loss scaling, side by side.

Trains the same model twice — fp32 and emulated fp16 with master weights
and a dynamic loss scaler — and prints the two loss curves plus the
scaler's trajectory. The fp16 run genuinely overflows/underflows (our
dtype emulation rounds onto the binary16 grid), so the scaler does real
work, exactly as on the Sunway accelerators.

Run:  python examples/mixed_precision.py
"""

import numpy as np

from repro.amp import DynamicLossScaler, cast_model
from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import build_model, tiny_config
from repro.train import Adam, ConstantLR, Trainer

STEPS, LR = 80, 3e-3


def train(dtype: str):
    cfg = tiny_config()
    model = build_model(cfg, seed=4)
    scaler = None
    if dtype == "fp16":
        cast_model(model, "fp16")
        # Deliberately too-high initial scale: watch the backoff find a
        # stable operating point.
        scaler = DynamicLossScaler(init_scale=2.0**20, growth_interval=25)
    corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=5)
    loader = ShardedLoader(corpus, batch_size=8, seq_len=16)
    trainer = Trainer(model, Adam(model.parameters(), lr=LR),
                      schedule=ConstantLR(LR), scaler=scaler, grad_clip=1.0)
    history = trainer.fit(loader, STEPS)
    return history, scaler


def main() -> None:
    h32, _ = train("fp32")
    h16, scaler = train("fp16")

    print(f"{'step':>5} {'fp32':>9} {'fp16':>9} {'scale':>10} {'skipped':>8}")
    for i in range(0, STEPS, 10):
        print(f"{i:5d} {h32[i].loss:9.4f} {h16[i].loss:9.4f} "
              f"{h16[i].loss_scale:10.0f} {str(h16[i].skipped):>8}")

    final32 = np.mean([h.loss for h in h32[-10:]])
    final16 = np.mean([h.loss for h in h16[-10:]])
    skipped = sum(h.skipped for h in h16)
    print(f"\nfinal loss: fp32 {final32:.4f}  fp16 {final16:.4f} "
          f"(gap {abs(final32 - final16):.4f})")
    print(f"scaler: {scaler.overflow_count} overflows, {skipped} skipped steps, "
          f"final scale {scaler.scale:.0f}")
    assert abs(final32 - final16) < 0.2
    print("OK — mixed precision tracks fp32")


if __name__ == "__main__":
    main()
