#!/usr/bin/env python
"""Project brain-scale training onto the full 37-million-core machine.

Uses the analytic performance model to answer the paper's headline
questions for each brain-scale configuration (1.93 T / 14.5 T / 174 T):

* does it fit in node memory under MoDa sharding (+ ZeRO)?
* what is the per-step time breakdown at 96,000 nodes?
* what sustained mixed-precision FLOP/s does the machine reach?

Run:  python examples/brain_scale_projection.py
"""

from repro.hardware import SUNWAY_NODE, sunway_machine
from repro.models import BRAIN_SCALE_CONFIGS
from repro.network import sunway_network
from repro.perf import ParallelPlan, StepModel, node_memory
from repro.utils import format_bytes, format_count, format_flops, format_time

NODES = 96_000


def largest_ep(num_instances: int) -> int:
    """Largest EP width dividing the machine with no idle ranks."""
    ep = NODES
    while ep > num_instances or NODES % ep != 0:
        ep //= 2
    return ep


def main() -> None:
    machine = sunway_machine(NODES)
    net = sunway_network(NODES)
    print(f"machine: {machine.name}  nodes={NODES:,}  "
          f"cores={format_count(machine.total_cores)}  "
          f"peak fp16={format_flops(machine.peak_flops('fp16'))}\n")

    for label, factory in BRAIN_SCALE_CONFIGS.items():
        cfg = factory()
        instances = cfg.num_moe_layers * cfg.num_experts
        plan = ParallelPlan(
            num_nodes=NODES,
            ep_size=largest_ep(instances),
            micro_batch=8,
            seq_len=2048,
            zero_shards=64,
            load_imbalance=1.05,
        )
        sm = StepModel(cfg, machine, net)
        # Memory is checked at micro-batch 1: larger micro-batches rely on
        # activation recomputation, which trades the activation term for
        # ~1/3 extra compute (standard practice at this scale).
        mem_plan = ParallelPlan(
            num_nodes=NODES, ep_size=plan.ep_size, micro_batch=1,
            seq_len=2048, zero_shards=64,
        )
        mem = node_memory(cfg, mem_plan)
        bd = sm.step_breakdown(plan)

        print(f"=== {cfg.name} ===")
        print(f"  total params        : {format_count(cfg.total_params)}")
        print(f"  active per token    : {format_count(cfg.active_params_per_token)}")
        print(f"  EP width            : {plan.ep_size:,} "
              f"({instances:,} expert instances)")
        fits = "yes" if mem.total <= SUNWAY_NODE.memory_bytes else "NO"
        print(f"  node memory         : {format_bytes(mem.total)} "
              f"(budget {format_bytes(SUNWAY_NODE.memory_bytes)}) fits: {fits}")
        print(f"  step time           : {format_time(bd.total)} "
              f"(compute {bd.compute / bd.total:.0%}, comm {bd.communication / bd.total:.0%})")
        print(f"  sustained (mixed)   : {format_flops(sm.achieved_flops(plan))}")
        print(f"  tokens/second       : {format_count(sm.tokens_per_second(plan))}")
        print()

    print("The 14.5T row is the paper's trained model class; its sustained "
          "mixed-precision figure lands in the ~1 EFLOPS class the paper "
          "reports (1.18 EFLOPS).")


if __name__ == "__main__":
    main()
