#!/usr/bin/env python
"""Trace a distributed training step and export a Chrome-tracing JSON.

Runs two MoDa steps on 8 simulated ranks with ``trace=True`` on the run
config; the shared :class:`~repro.simmpi.RunContext` collects the event
stream, traffic counters, and per-phase timers in one place. Prints a
per-operation summary plus the phase breakdown and writes
``trace_step.json`` — open it in Perfetto (https://ui.perfetto.dev) or
chrome://tracing to see the alltoall waves, gradient allreduces, and
modelled compute of every rank on the simulated machine's timeline.

The CLI exposes the same export: ``repro distributed --trace out.json``.

Run:  python examples/trace_training_step.py
"""

from collections import defaultdict

from repro.models import tiny_config
from repro.network import sunway_network
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.utils import format_time

WORLD, EP = 8, 4
CFG = tiny_config(num_experts=8)


def main() -> None:
    run_cfg = TrainingRunConfig(
        model=CFG,
        world_size=WORLD,
        ep_size=EP,
        num_steps=2,
        batch_size=4,
        seq_len=16,
        trace=True,
    )
    res = run_distributed_training(
        run_cfg, network=sunway_network(WORLD, supernode_size=4)
    )

    by_op: dict[str, list[float]] = defaultdict(list)
    for e in res.trace:
        by_op[e.op].append(e.duration)

    print(f"{len(res.trace)} events over "
          f"{format_time(res.step_time * run_cfg.num_steps)} "
          f"of virtual time ({WORLD} ranks)\n")
    print(f"{'op':<16} {'count':>6} {'total':>12} {'mean':>12}")
    for op, durations in sorted(by_op.items(), key=lambda kv: -sum(kv[1])):
        print(f"{op:<16} {len(durations):>6} "
              f"{format_time(sum(durations)):>12} "
              f"{format_time(sum(durations) / len(durations)):>12}")

    print("\nvirtual time per phase (rank 0):")
    for phase, seconds in res.phase_seconds.items():
        print(f"  {phase:<12} {format_time(seconds)}")

    path = res.context.write_chrome_trace("trace_step.json")
    print(f"\nwrote {path} — open in https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
