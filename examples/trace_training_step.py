#!/usr/bin/env python
"""Trace a distributed training step and export a Chrome-tracing JSON.

Runs two MoDa steps on 8 simulated ranks with virtual-time tracing on,
prints a per-operation summary, and writes ``trace_step.json`` — open it
in Perfetto (https://ui.perfetto.dev) or chrome://tracing to see the
alltoall waves, gradient allreduces, and modelled compute of every rank
on the simulated machine's timeline.

Run:  python examples/trace_training_step.py
"""

from collections import defaultdict

from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import tiny_config
from repro.network import sunway_network
from repro.parallel import MoDaTrainer, build_groups, build_moda_model
from repro.perf import ComputeTimer
from repro.hardware import laptop_machine
from repro.simmpi import run_spmd, write_chrome_trace
from repro.train import Adam
from repro.utils import format_time

WORLD, EP = 8, 4
CFG = tiny_config(num_experts=8)


def rank_program(comm):
    timer = ComputeTimer(CFG, laptop_machine(WORLD), seq_len=16)
    groups = build_groups(comm, EP)
    model = build_moda_model(
        CFG, groups, seed=1,
        compute_hook=lambda rows: comm.advance(timer.expert_layer_time(rows)),
    )
    trainer = MoDaTrainer(model, Adam(model.parameters(), lr=1e-3), groups)
    corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, seed=0)
    loader = ShardedLoader(corpus, 4, 16, dp_rank=comm.rank, dp_size=comm.size)
    for step in range(2):
        comm.advance(timer.dense_step_time(4 * 16))
        trainer.train_step(loader.get_batch(step))


def main() -> None:
    res = run_spmd(
        rank_program, WORLD,
        network=sunway_network(WORLD, supernode_size=4),
        trace=True, timeout=600,
    )

    by_op: dict[str, list[float]] = defaultdict(list)
    for e in res.trace:
        by_op[e.op].append(e.duration)

    print(f"{len(res.trace)} events over {format_time(res.simulated_time)} "
          f"of virtual time ({WORLD} ranks)\n")
    print(f"{'op':<16} {'count':>6} {'total':>12} {'mean':>12}")
    for op, durations in sorted(by_op.items(), key=lambda kv: -sum(kv[1])):
        print(f"{op:<16} {len(durations):>6} "
              f"{format_time(sum(durations)):>12} "
              f"{format_time(sum(durations) / len(durations)):>12}")

    path = write_chrome_trace(res.trace, "trace_step.json")
    print(f"\nwrote {path} — open in https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
