#!/usr/bin/env python
"""Quickstart: train a tiny Mixture-of-Experts language model on CPU.

Demonstrates the single-process path end to end:

1. build an MoE transformer from a config;
2. stream a synthetic Zipf-Markov corpus;
3. train with Adam + warmup-cosine schedule + gradient clipping;
4. watch the loss fall and the expert load distribute.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import build_model, tiny_config
from repro.train import Adam, Trainer, WarmupCosineLR
from repro.utils import format_count


def main() -> None:
    cfg = tiny_config(num_experts=8, top_k=2)
    model = build_model(cfg, seed=0)
    print(f"model: {cfg.name}  params={format_count(model.num_parameters())} "
          f"({cfg.num_experts} experts x {cfg.num_moe_layers} MoE layers, top-{cfg.top_k})")

    corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=1)
    loader = ShardedLoader(corpus, batch_size=8, seq_len=16)
    print(f"corpus: vocab={cfg.vocab_size}, marginal entropy "
          f"{corpus.entropy_bits():.2f} bits/token")

    steps = 120
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=3e-3),
        schedule=WarmupCosineLR(peak_lr=3e-3, warmup_steps=10, total_steps=steps),
        grad_clip=1.0,
    )
    history = trainer.fit(loader, steps, log_every=20)

    first, last = history[0].loss, np.mean([h.loss for h in history[-10:]])
    print(f"\nloss: {first:.3f} -> {last:.3f} over {steps} steps")

    load = model.expert_load()
    print("expert load (last batch):", load.tolist())
    assert last < first, "training should reduce the loss"
    print("OK")


if __name__ == "__main__":
    main()
