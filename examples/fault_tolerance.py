#!/usr/bin/env python
"""Fault-tolerant training: crash, restore, and prove nothing was lost.

Trains the same configuration twice:

1. a healthy run to completion;
2. a run whose rank 1 is killed mid-training by an injected fault — the
   driver restarts the world from the last sharded checkpoint and resumes.

Because training is deterministic end to end (derived seeds everywhere),
the recovered trajectory matches the healthy one exactly — printed side by
side below. This is the operational loop that keeps a 96,000-node job
alive.

Run:  python examples/fault_tolerance.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.models import tiny_config
from repro.parallel import ResilientRunConfig, run_resilient_training
from repro.simmpi import FaultPlan

CFG = tiny_config(num_experts=4)
STEPS = 8


def run(workdir: Path, faults=None):
    return run_resilient_training(
        ResilientRunConfig(
            model=CFG, world_size=4, ep_size=2, total_steps=STEPS,
            checkpoint_every=2, checkpoint_dir=workdir,
            batch_size=4, seq_len=8, seed=13,
        ),
        fault_plans=faults,
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        healthy = run(tmp / "healthy")
        print(f"healthy run : {STEPS} steps, {healthy.restarts} restarts, "
              f"checkpoints at {healthy.checkpoint_steps}")

        # Kill rank 1 partway through the first launch.
        faulted = run(
            tmp / "faulted",
            faults=[FaultPlan().kill_rank(1, at_op=140), None],
        )
        print(f"faulted run : killed rank 1, {faulted.restarts} restart(s), "
              f"resumed from step {faulted.first_step}\n")

        print(f"{'step':>5} {'healthy':>9} {'recovered':>10}")
        for i, loss in enumerate(faulted.losses):
            step = faulted.first_step + i
            print(f"{step:5d} {healthy.losses[step]:9.4f} {loss:10.4f}")

        overlap = healthy.losses[faulted.first_step:]
        assert np.allclose(overlap, faulted.losses, atol=1e-6)
        print("\nOK — the recovered trajectory matches the healthy run exactly")


if __name__ == "__main__":
    main()
