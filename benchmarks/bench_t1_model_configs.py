"""T1 — brain-scale model configuration table.

Paper claim (reconstructed): BaGuaLu trains MoE transformers at 1.93 T,
14.5 T, and 174 T parameters — the largest matching the synapse count of a
human brain. This bench regenerates the configuration table: dimensions,
expert counts, total vs active parameters, and per-step FLOPs per token.
"""

from repro.models import BRAIN_SCALE_CONFIGS, tiny_config
from repro.perf import step_flops_per_token
from repro.utils import format_count


def build_rows():
    rows = []
    for label, factory in BRAIN_SCALE_CONFIGS.items():
        cfg = factory()
        rows.append(
            {
                "model": cfg.name,
                "layers": cfg.n_layers,
                "d_model": cfg.d_model,
                "d_ff": cfg.d_ff,
                "experts/layer": cfg.num_experts,
                "total_params": format_count(cfg.total_params),
                "active/token": format_count(cfg.active_params_per_token),
                "step_flops/token": format_count(step_flops_per_token(cfg)),
            }
        )
    return rows


def test_t1_model_configs(benchmark, report):
    rows = benchmark(build_rows)
    report("t1_model_configs", "T1: brain-scale model configurations", rows)

    totals = {r["model"]: r["total_params"] for r in rows}
    # The headline counts (names are the ground truth being matched).
    assert totals["bagualu-1.93T"].endswith("T")
    assert totals["bagualu-14.5T"] == "14.50T"
    assert totals["bagualu-174T"] == "173.99T"


def test_t1_sparsity_ratio(benchmark, report):
    """MoE sparsity: active params per token vs total (the efficiency
    premise that makes brain scale trainable)."""

    def rows():
        out = []
        for label, factory in BRAIN_SCALE_CONFIGS.items():
            cfg = factory()
            out.append(
                {
                    "model": cfg.name,
                    "total/active": round(cfg.total_params / cfg.active_params_per_token, 1),
                }
            )
        return out

    data = benchmark(rows)
    report("t1_sparsity", "T1b: MoE sparsity (total / active parameters)", data)
    assert all(r["total/active"] > 100 for r in data)


def test_t1_tiny_config_instantiable(benchmark):
    """The laptop-scale config instantiates and matches its analytic count."""
    from repro.models import build_model

    cfg = tiny_config()
    model = benchmark(lambda: build_model(cfg))
    assert model.num_parameters() == cfg.total_params
