"""F4 — allreduce algorithm ablation for dense-gradient synchronization.

Paper claim (reconstructed): topology-aware (hierarchical) allreduce beats
both flat ring (latency-bound at scale) and recursive doubling
(bandwidth-bound for large buffers) for the dense-gradient volumes MoDa
synchronizes every step.
"""

import numpy as np

from repro.network import sunway_network, sunway_topology
from repro.network.collectives import (
    cost_hierarchical_allreduce,
    cost_ring_allreduce,
    cost_tree_allreduce,
)
from repro.simmpi import run_spmd
from repro.utils import format_bytes, format_time


def test_f4_analytic_algorithm_sweep(benchmark, report):
    topo = sunway_topology(16384, supernode_size=256)
    nodes = list(range(16384))

    def sweep():
        rows = []
        for nbytes in [1e4, 1e6, 1e8, 2e10]:  # up to 20 GB of fp32 grads
            ring = cost_ring_allreduce(topo, nbytes, nodes)
            tree = cost_tree_allreduce(topo, nbytes, nodes)
            hier = cost_hierarchical_allreduce(topo, nbytes, nodes)
            rows.append(
                {
                    "buffer": format_bytes(nbytes),
                    "ring": format_time(ring),
                    "tree": format_time(tree),
                    "hierarchical": format_time(hier),
                    "best": min(
                        [("ring", ring), ("tree", tree), ("hier", hier)],
                        key=lambda kv: kv[1],
                    )[0],
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f4_algorithms", "F4a: allreduce algorithms at 16,384 nodes", rows)

    # Shape: tree wins tiny buffers; hierarchical wins the gradient-sized
    # buffers MoDa actually synchronizes.
    assert rows[0]["best"] == "tree"
    assert rows[-1]["best"] == "hier"


def test_f4_hierarchical_advantage_vs_scale(benchmark, report):
    """Hierarchical/ring ratio improves with node count (10 MB buffer)."""

    def sweep():
        rows = []
        for n in [512, 2048, 8192, 32768, 96000]:
            topo = sunway_topology(n, supernode_size=256)
            nodes = list(range(n))
            ring = cost_ring_allreduce(topo, 1e7, nodes)
            hier = cost_hierarchical_allreduce(topo, 1e7, nodes)
            rows.append({"nodes": n, "ring/hier": round(ring / hier, 2)})
        return rows

    rows = benchmark(sweep)
    report("f4_scale", "F4b: hierarchical allreduce advantage vs scale (10 MB)", rows)
    ratios = [r["ring/hier"] for r in rows]
    assert ratios[-1] > ratios[0] > 0.9


def test_f4_measured_simmpi(benchmark, report):
    """Measured through the runtime at 16 ranks, supernode=4."""
    net = sunway_network(16, supernode_size=4)

    def run_once(algorithm):
        def program(comm):
            buf = np.zeros(250_000, dtype=np.float32)  # 1 MB
            for _ in range(3):
                comm.allreduce(buf, algorithm=algorithm)

        return run_spmd(program, 16, network=net).simulated_time

    def measure():
        return [
            {
                "algorithm": algo,
                "time_3_rounds": format_time(run_once(algo)),
                "seconds": run_once(algo),
            }
            for algo in ("ring", "tree", "hierarchical")
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("f4_measured", "F4c: measured allreduce (16 ranks, 1 MB buffer)", rows)
    by = {r["algorithm"]: r["seconds"] for r in rows}
    assert by["hierarchical"] < by["tree"]  # bandwidth-bound at 1 MB
