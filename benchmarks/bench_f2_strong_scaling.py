"""F2 — strong scaling: fixed global batch, growing node count.

Paper claim (reconstructed): step time drops with node count until the
per-node work is too small to amortize communication — the classic strong-
scaling knee. Projected with the analytic model; measured at small scale
with simmpi.
"""

from repro.hardware import laptop_machine, sunway_machine
from repro.models import bagualu_14_5t, tiny_config
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.perf import strong_scaling_rows
from repro.network import sunway_network


def test_f2_projected_strong_scaling(benchmark, report):
    cfg = bagualu_14_5t()
    machine = sunway_machine(96_000)

    def sweep():
        return strong_scaling_rows(
            cfg, machine, [1024, 4096, 16384, 65536], ep_size=1024,
            global_batch_tokens=2048 * 65536, seq_len=2048,
        )

    rows = benchmark(sweep)
    pretty = [
        {
            "nodes": int(r["nodes"]),
            "step_time_s": round(r["step_time_s"], 2),
            "speedup_vs_linear": round(r["speedup_vs_linear"], 3),
        }
        for r in rows
    ]
    report("f2_projected", "F2a: projected strong scaling (14.5T, fixed batch)", pretty)

    times = [r["step_time_s"] for r in rows]
    assert all(a > b for a, b in zip(times, times[1:])), "more nodes must be faster"
    # Efficiency at the tail is below the head: the knee exists.
    assert rows[-1]["speedup_vs_linear"] <= rows[0]["speedup_vs_linear"] + 1e-9


def test_f2_measured_strong_scaling(benchmark, report):
    cfg = tiny_config(num_experts=16)
    global_sequences = 32

    def measure():
        rows = []
        for w in [2, 4, 8, 16]:
            per_rank = max(global_sequences // w, 1)
            res = run_distributed_training(
                TrainingRunConfig(
                    model=cfg, world_size=w, ep_size=w, num_steps=2,
                    batch_size=per_rank, seq_len=16,
                ),
                network=sunway_network(w, supernode_size=8),
                machine=laptop_machine(w),
            )
            rows.append({"ranks": w, "step_time_s": res.step_time})
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("f2_measured", "F2b: measured strong scaling (simmpi, fixed global batch)", rows)

    # Shape: the first doubling helps; the knee appears by the tail.
    assert rows[1]["step_time_s"] < rows[0]["step_time_s"]
