"""T9 — auto-parallelism planner: ranked layouts vs measured step times.

The planner enumerates every launchable (dp, tp, pp, ep, zero) layout for
a model + cluster preset, ranks them with the analytic step model, then
verifies the top-k with short simulated runs through the same strategy
registry a real launch uses. This bench sweeps node counts on the
compute-dominated ``toy`` preset and publishes the ranked table with
model-vs-measured error columns — the planner's accuracy contract is a
median calibrated error of at most 25% on the verified candidates.
"""

from repro.models import tiny_config
from repro.plan import plan_layouts

CFG = tiny_config(n_layers=4, moe_every=2, num_experts=8)

NODE_COUNTS = (4, 8, 16)
TOP_K = 2


def _axes(layout) -> str:
    return (f"dp={layout.dp_size} tp={layout.tp_size} pp={layout.pp_size} "
            f"ep={layout.ep_size} zero={layout.zero_shards}")


def test_t9_planner_node_sweep(benchmark, report):
    def run():
        rows = []
        medians = {}
        for nodes in NODE_COUNTS:
            result = plan_layouts(
                CFG, num_nodes=nodes, cluster="toy",
                top_k=TOP_K, verify_steps=2,
            )
            medians[nodes] = result.median_relative_error
            measured = {
                v.candidate.layout: v for v in result.verified
            }
            for rank, cand in enumerate(result.candidates[:5], start=1):
                v = measured.get(cand.layout)
                rows.append(
                    {
                        "nodes": nodes,
                        "rank": rank,
                        "layout": _axes(cand.layout),
                        "strategy": cand.strategy,
                        "predicted_s": cand.predicted_step_time,
                        "measured_s": "-" if v is None else f"{v.measured_step_time:.3e}",
                        "error": "-" if v is None else f"{v.relative_error:.1%}",
                        "cal_error": (
                            "-" if v is None or v.calibrated_relative_error is None
                            else f"{v.calibrated_relative_error:.1%}"
                        ),
                    }
                )
            rows.append(
                {
                    "nodes": nodes,
                    "rank": "-",
                    "layout": f"(+{max(len(result.candidates) - 5, 0)} more, "
                              f"{len(result.rejected)} rejected)",
                    "strategy": "-",
                    "predicted_s": 0.0,
                    "measured_s": "-",
                    "error": "-",
                    "cal_error": (
                        "-" if medians[nodes] is None
                        else f"median {medians[nodes]:.1%}"
                    ),
                }
            )
        return rows, medians

    rows, medians = benchmark.pedantic(run, rounds=1, iterations=1)
    report("t9_plan", "T9: planner ranked layouts vs measured (toy cluster)", rows)

    # The accuracy contract: median calibrated error <= 25% at every width.
    for nodes, med in medians.items():
        assert med is not None, f"no verified candidates at {nodes} nodes"
        assert med <= 0.25, f"median error {med:.1%} at {nodes} nodes"
