"""F1 — weak scaling: throughput vs node count at fixed per-node load.

Paper claim: MoDa scales near-linearly to the full machine because expert
parallelism adds experts with nodes (fixed work per node) and the
communication terms grow slowly. Reproduced two ways:

* measured: simmpi runs at 2-16 ranks with virtual-clock timing;
* projected: the analytic step model from 256 to 96,000 nodes.

Both use the same network cost model, so the curves are consistent.
"""

import pytest

from repro.hardware import laptop_machine, sunway_machine
from repro.models import bagualu_14_5t, tiny_config
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.perf import weak_scaling_rows
from repro.utils import format_count


def test_f1_projected_weak_scaling(benchmark, report):
    cfg = bagualu_14_5t()
    machine = sunway_machine(96_000)

    def sweep():
        return weak_scaling_rows(
            cfg, machine, [256, 1024, 4096, 16384, 49152, 96_000],
            ep_size=96_000, micro_batch=8, seq_len=2048, load_imbalance=1.05,
        )

    rows = benchmark(sweep)
    pretty = [
        {
            "nodes": int(r["nodes"]),
            "cores": format_count(r["cores"]),
            "step_time_s": round(r["step_time_s"], 2),
            "tokens/s": format_count(r["tokens_per_s"]),
            "achieved": format_count(r["flops"]) + "FLOPS",
            "efficiency": round(r["efficiency"], 3),
        }
        for r in rows
    ]
    report("f1_projected", "F1a: projected weak scaling (14.5T, MoDa)", pretty)

    # Shape: >85% weak-scaling efficiency at the full machine.
    assert rows[-1]["efficiency"] > 0.85
    # Throughput grows by ~two orders of magnitude over the sweep.
    assert rows[-1]["tokens_per_s"] > 100 * rows[0]["tokens_per_s"]


@pytest.mark.parametrize("world_sizes", [[2, 4, 8, 16]])
def test_f1_measured_weak_scaling(benchmark, report, world_sizes):
    cfg = tiny_config(num_experts=16)

    def measure():
        rows = []
        base_per_node = None
        for w in world_sizes:
            # A laptop-class node keeps tiny-model compute and modelled
            # communication on comparable scales (a Sunway node would finish
            # the tiny model's math in nanoseconds and measure only comm).
            res = run_distributed_training(
                TrainingRunConfig(
                    model=cfg, world_size=w, ep_size=w, num_steps=2,
                    batch_size=8, seq_len=16,
                ),
                machine=laptop_machine(w),
            )
            tokens = 8 * 16 * w * 2  # batch*seq*world*steps
            tput = tokens / res.simulated_time
            per_node = tput / w
            if base_per_node is None:
                base_per_node = per_node
            rows.append(
                {
                    "ranks": w,
                    "step_time_s": res.step_time,
                    "tokens/s": round(tput, 1),
                    "efficiency": round(per_node / base_per_node, 3),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("f1_measured", "F1b: measured weak scaling (simmpi, tiny MoE)", rows)

    # Shape: efficiency degrades gracefully, not catastrophically.
    assert rows[-1]["efficiency"] > 0.4
    assert all(r["step_time_s"] > 0 for r in rows)
