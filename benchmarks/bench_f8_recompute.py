"""F8 (ablation) — activation recomputation: memory saved vs compute paid.

BaGuaLu-scale training cannot store every activation; recomputation trades
the per-layer activation memory for one extra forward (~33% more dense
compute). This ablation prices the trade at 96,000 nodes and verifies the
functional implementation costs what the model says.
"""

import numpy as np

from repro.hardware import SUNWAY_NODE, sunway_machine
from repro.models import bagualu_14_5t, build_model, tiny_config
from repro.network import sunway_network
from repro.perf import ParallelPlan, StepModel, node_memory
from repro.utils import format_bytes, format_time


def test_f8_memory_compute_trade(benchmark, report):
    cfg = bagualu_14_5t()
    sm = StepModel(cfg, sunway_machine(96_000), sunway_network(96_000))

    def rows():
        out = []
        for mb in (1, 8, 32):
            for recompute in (False, True):
                plan = ParallelPlan(
                    num_nodes=96_000, ep_size=96_000, micro_batch=mb,
                    seq_len=2048, zero_shards=64, recompute=recompute,
                )
                mem = node_memory(cfg, plan)
                bd = sm.step_breakdown(plan)
                out.append(
                    {
                        "micro_batch": mb,
                        "recompute": recompute,
                        "activations": format_bytes(mem.activations),
                        "node_total": format_bytes(mem.total),
                        "fits_96GiB": mem.total <= SUNWAY_NODE.memory_bytes,
                        "step_time": format_time(bd.total),
                        "_seconds": bd.total,
                        "_total": mem.total,
                    }
                )
        return out

    data = benchmark(rows)
    report("f8_recompute", "F8: recomputation ablation at 96,000 nodes (14.5T)", [
        {k: v for k, v in r.items() if not k.startswith("_")} for r in data
    ])

    by = {(r["micro_batch"], r["recompute"]): r for r in data}
    # mb=32 without recompute blows the node budget; with it, it fits.
    assert not by[(32, False)]["fits_96GiB"]
    assert by[(32, True)]["fits_96GiB"]
    # Extra compute is bounded (~<40% step-time increase).
    assert by[(8, True)]["_seconds"] < by[(8, False)]["_seconds"] * 1.4


def test_f8_functional_grad_identity(benchmark, report):
    """The implemented checkpointing changes memory/compute, not numbers."""
    rng = np.random.default_rng(0)
    cfg = tiny_config()
    tokens = rng.integers(0, cfg.vocab_size, size=(4, 16))

    def run():
        plain = build_model(cfg, seed=9)
        ckpt = build_model(tiny_config(recompute=True), seed=9)
        plain.loss(tokens, tokens).backward()
        ckpt.loss(tokens, tokens).backward()
        worst = 0.0
        for (_, a), (_, b) in zip(plain.named_parameters(), ckpt.named_parameters()):
            if a.grad is not None and b.grad is not None:
                worst = max(worst, float(np.abs(a.grad - b.grad).max()))
        return [{"max_grad_difference": worst}]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("f8_identity", "F8b: recompute gradient identity", rows)
    assert rows[0]["max_grad_difference"] < 1e-5
