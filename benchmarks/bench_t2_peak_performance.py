"""T2 — peak sustained performance at full machine scale.

Paper claim: BaGuaLu sustains ~1.18 EFLOPS in mixed precision on the full
New Generation Sunway (96,000 nodes / 37.44 M cores) training the 14.5 T
model. This bench regenerates the table from the analytic step model:
achieved FLOP/s for fp32 vs mixed precision, with the per-step phase
breakdown. Absolute numbers come from our machine model; the *shape*
(mixed precision ~2x fp32, EFLOPS class, communication a minor fraction at
large micro-batch) is the reproduced result.
"""

from repro.hardware import sunway_machine
from repro.models import bagualu_14_5t
from repro.network import sunway_network
from repro.perf import ParallelPlan, StepModel
from repro.utils import format_count, format_time

NODES = 96_000


def build_rows():
    machine = sunway_machine(NODES)
    net = sunway_network(NODES)
    rows = []
    for dtype in ("fp32", "fp16"):
        cfg = bagualu_14_5t().scaled(dtype=dtype)
        sm = StepModel(cfg, machine, net)
        plan = ParallelPlan(
            num_nodes=NODES, ep_size=NODES, micro_batch=8, seq_len=2048,
            load_imbalance=1.05,
        )
        bd = sm.step_breakdown(plan)
        rows.append(
            {
                "precision": "mixed(fp16)" if dtype == "fp16" else "fp32",
                "nodes": NODES,
                "cores": format_count(machine.total_cores),
                "step_time": format_time(bd.total),
                "compute_frac": round(bd.compute / bd.total, 3),
                "achieved_flops": format_count(sm.achieved_flops(plan)) + "FLOPS",
                "peak_flops": format_count(machine.peak_flops(dtype)) + "FLOPS",
                "tokens/s": format_count(sm.tokens_per_second(plan)),
            }
        )
    return rows


def test_t2_peak_performance(benchmark, report):
    rows = benchmark(build_rows)
    report("t2_peak_performance", "T2: sustained performance at 96,000 nodes (14.5T model)", rows)

    fp32, fp16 = rows[0], rows[1]
    # Shape checks: mixed precision in the EFLOPS class, fp32 below it.
    assert "EFLOPS" in fp16["achieved_flops"] or fp16["achieved_flops"].endswith("PFLOPS")
    assert fp16["compute_frac"] > 0.7  # compute-dominated at mb=8


def test_t2_mixed_precision_speedup(benchmark, report):
    """Mixed precision speedup over fp32 for the same plan (paper: ~2x on
    hardware with 2x fp16 throughput)."""

    def compute():
        machine = sunway_machine(NODES)
        net = sunway_network(NODES)
        plan = ParallelPlan(num_nodes=NODES, ep_size=NODES, micro_batch=8, seq_len=2048)
        t32 = StepModel(bagualu_14_5t().scaled(dtype="fp32"), machine, net).step_time(plan)
        t16 = StepModel(bagualu_14_5t(), machine, net).step_time(plan)
        return [{"fp32_step": t32, "fp16_step": t16, "speedup": round(t32 / t16, 2)}]

    rows = benchmark(compute)
    report("t2_amp_speedup", "T2b: mixed-precision step-time speedup", rows)
    assert 1.3 < rows[0]["speedup"] < 2.5
