"""F10 (ablation) — communication/computation overlap, measured + analytic.

BaGuaLu-class systems bucket the dense-gradient allreduce and overlap it
with backward compute, and pipeline the MoE token alltoalls against
expert matmuls. The measured half of this bench runs real SPMD training
through the runner's ``overlap_chunks`` knob: nonblocking collectives
charge only the *exposed* remainder of their network cost, so the
virtual-clock step time shrinks while the loss trajectory stays
bit-identical to the blocking schedule. The analytic half sweeps the
same knobs at full machine scale with :class:`~repro.perf.StepModel`.

Run standalone as ``python benchmarks/bench_f10_overlap.py --smoke`` for
a seconds-scale CI smoke (world=4, asserts measured speedup > 1).
"""

from repro.hardware import sunway_machine
from repro.models import ModelConfig, bagualu_14_5t
from repro.network import sunway_network
from repro.obs import profile_comm
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.perf import ParallelPlan, StepModel
from repro.utils import format_count, format_time

NODES = 96_000

# Measured-run shape: big enough that bandwidth + modelled compute
# dominate the per-chunk latency the overlap schedule adds.
WORLD = 4
BATCH, SEQ, STEPS = 8, 32, 3


def _measured_model() -> ModelConfig:
    return ModelConfig(
        vocab_size=128, max_seq_len=64, d_model=128, d_ff=512, n_layers=2,
        n_heads=4, num_experts=8, top_k=2, moe_every=1, name="f10-overlap",
    )


def _run_measured(overlap_chunks: int):
    return run_distributed_training(TrainingRunConfig(
        model=_measured_model(), world_size=WORLD, ep_size=WORLD,
        num_steps=STEPS, batch_size=BATCH, seq_len=SEQ,
        overlap_chunks=overlap_chunks,
    ))


def _measured_rows() -> list[dict]:
    """One row per overlap width: measured step time, hidden comm,
    analytic prediction, and model-vs-measured error."""
    model = _measured_model()
    sm = StepModel(model, sunway_machine(WORLD), sunway_network(WORLD))
    baseline = _run_measured(1)
    rows = []
    for chunks in (1, 2, 4):
        res = baseline if chunks == 1 else _run_measured(chunks)
        assert res.losses == baseline.losses, "overlap changed the math"
        stats = res.context.stats
        hidden = sum(
            r["hidden_seconds"] for r in profile_comm(res.context).records()
        )
        predicted = sm.step_time(ParallelPlan(
            num_nodes=WORLD, ep_size=WORLD, micro_batch=BATCH, seq_len=SEQ,
            overlap_chunks=chunks,
        ))
        rows.append({
            "overlap_chunks": chunks,
            "step_time": format_time(res.step_time),
            "speedup": round(baseline.step_time / res.step_time, 3),
            "hidden_comm_s": hidden,
            "total_bytes": res.traffic["total_bytes"],
            "model_error_pct": round(
                100 * abs(predicted - res.step_time) / res.step_time, 1
            ),
            "seconds": res.step_time,
        })
        assert stats.summary()["total_bytes"] == baseline.traffic["total_bytes"]
    return rows


def test_f10_measured_overlap_sweep(benchmark, report):
    """Measured: chunked dispatch + bucketed grad sync beat blocking at
    world=4 with bit-identical losses and byte-stable traffic."""
    rows = benchmark.pedantic(_measured_rows, rounds=1, iterations=1)
    report(
        "f10_measured",
        "F10a: measured overlap sweep (world=4, ep=4, bitwise-equal losses)",
        rows,
    )
    assert rows[0]["hidden_comm_s"] == 0.0  # blocking hides nothing
    for row in rows[1:]:
        assert row["speedup"] > 1.0
        assert row["hidden_comm_s"] > 0.0
    # Wider pipelines hide at least as much as narrower ones here.
    assert rows[2]["seconds"] <= rows[1]["seconds"]


def test_f10_analytic_overlap_sweep(benchmark, report):
    """Analytic: grad-sync overlap fraction at full machine scale."""
    cfg = bagualu_14_5t()
    sm = StepModel(cfg, sunway_machine(NODES), sunway_network(NODES))

    def sweep():
        rows = []
        for overlap in (0.0, 0.5, 1.0):
            plan = ParallelPlan(
                num_nodes=NODES, ep_size=NODES, micro_batch=8, seq_len=2048,
                load_imbalance=1.05, overlap=overlap,
            )
            t = sm.step_time(plan)
            rows.append(
                {
                    "overlap": overlap,
                    "step_time": format_time(t),
                    "seconds": t,
                    "sustained": format_count(sm.achieved_flops(plan)) + "FLOPS",
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f10_overlap", "F10b: gradient-sync overlap at 96,000 nodes (14.5T)", rows)

    times = [r["seconds"] for r in rows]
    assert times[0] > times[2]
    # The win is bounded by the sync time itself (a few percent at mb=8).
    assert times[2] > times[0] * 0.9


def test_f10_analytic_chunked_dispatch(benchmark, report):
    """Analytic: chunked dispatch also hides alltoall time at scale."""
    cfg = bagualu_14_5t()
    sm = StepModel(cfg, sunway_machine(NODES), sunway_network(NODES))

    def sweep():
        rows = []
        base = None
        for chunks in (1, 2, 4, 8):
            plan = ParallelPlan(
                num_nodes=NODES, ep_size=NODES, micro_batch=8, seq_len=2048,
                load_imbalance=1.05, overlap_chunks=chunks,
            )
            t = sm.step_time(plan)
            base = base if base is not None else t
            rows.append(
                {
                    "overlap_chunks": chunks,
                    "step_time": format_time(t),
                    "seconds": t,
                    "speedup": round(base / t, 3),
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f10_chunked", "F10c: chunked expert dispatch at 96,000 nodes", rows)
    assert rows[1]["seconds"] < rows[0]["seconds"]


def test_f10_overlap_matters_most_at_small_batch(benchmark, report):
    """Small micro-batches are comm-heavier, so overlap buys more there."""
    cfg = bagualu_14_5t()
    sm = StepModel(cfg, sunway_machine(NODES), sunway_network(NODES))

    def sweep():
        rows = []
        for mb in (1, 8):
            t0 = sm.step_time(ParallelPlan(num_nodes=NODES, ep_size=NODES,
                                           micro_batch=mb, seq_len=2048))
            t1 = sm.step_time(ParallelPlan(num_nodes=NODES, ep_size=NODES,
                                           micro_batch=mb, seq_len=2048, overlap=1.0))
            rows.append(
                {
                    "micro_batch": mb,
                    "no_overlap": format_time(t0),
                    "full_overlap": format_time(t1),
                    "gain_pct": round(100 * (1 - t1 / t0), 2),
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f10_by_batch", "F10d: overlap gain vs micro-batch", rows)
    assert rows[0]["gain_pct"] > rows[1]["gain_pct"]


def _smoke() -> int:
    """Fast end-to-end check: measured speedup at overlap_chunks=4."""
    baseline = _run_measured(1)
    overlapped = _run_measured(4)
    if overlapped.losses != baseline.losses:
        print("f10 smoke: FAIL — overlap changed the loss trajectory")
        return 1
    hidden = sum(overlapped.context.stats.overlapped_seconds.values())
    speedup = baseline.step_time / overlapped.step_time
    print(
        f"f10 smoke: step {format_time(baseline.step_time)} -> "
        f"{format_time(overlapped.step_time)} at overlap_chunks=4 "
        f"(speedup {speedup:.3f}x, hidden {hidden:.2e}s, losses bitwise equal)"
    )
    if speedup <= 1.0 or hidden <= 0.0:
        print("f10 smoke: FAIL — expected a strictly positive overlap win")
        return 1
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="fast end-to-end check (CI)")
    if ap.parse_args().smoke:
        sys.exit(_smoke())
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    from conftest import format_table

    print(format_table(
        "F10a: measured overlap sweep (world=4, ep=4)", _measured_rows()
    ))
