"""F10 (ablation) — communication/computation overlap.

BaGuaLu-class systems bucket the dense-gradient allreduce and overlap it
with backward compute. This ablation sweeps the overlap fraction at full
machine scale and reports the step-time / sustained-FLOPS gain; the token
alltoalls stay on the critical path (they gate the next layer's compute),
which bounds the total win.
"""

from repro.hardware import sunway_machine
from repro.models import bagualu_14_5t
from repro.network import sunway_network
from repro.perf import ParallelPlan, StepModel
from repro.utils import format_count, format_time

NODES = 96_000


def test_f10_overlap_sweep(benchmark, report):
    cfg = bagualu_14_5t()
    sm = StepModel(cfg, sunway_machine(NODES), sunway_network(NODES))

    def sweep():
        rows = []
        for overlap in (0.0, 0.5, 1.0):
            plan = ParallelPlan(
                num_nodes=NODES, ep_size=NODES, micro_batch=8, seq_len=2048,
                load_imbalance=1.05, overlap=overlap,
            )
            t = sm.step_time(plan)
            rows.append(
                {
                    "overlap": overlap,
                    "step_time": format_time(t),
                    "seconds": t,
                    "sustained": format_count(sm.achieved_flops(plan)) + "FLOPS",
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f10_overlap", "F10: gradient-sync overlap at 96,000 nodes (14.5T)", rows)

    times = [r["seconds"] for r in rows]
    assert times[0] > times[2]
    # The win is bounded by the sync time itself (a few percent at mb=8).
    assert times[2] > times[0] * 0.9


def test_f10_overlap_matters_most_at_small_batch(benchmark, report):
    """Small micro-batches are comm-heavier, so overlap buys more there."""
    cfg = bagualu_14_5t()
    sm = StepModel(cfg, sunway_machine(NODES), sunway_network(NODES))

    def sweep():
        rows = []
        for mb in (1, 8):
            t0 = sm.step_time(ParallelPlan(num_nodes=NODES, ep_size=NODES,
                                           micro_batch=mb, seq_len=2048))
            t1 = sm.step_time(ParallelPlan(num_nodes=NODES, ep_size=NODES,
                                           micro_batch=mb, seq_len=2048, overlap=1.0))
            rows.append(
                {
                    "micro_batch": mb,
                    "no_overlap": format_time(t0),
                    "full_overlap": format_time(t1),
                    "gain_pct": round(100 * (1 - t1 / t0), 2),
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f10_by_batch", "F10b: overlap gain vs micro-batch", rows)
    assert rows[0]["gain_pct"] > rows[1]["gain_pct"]
