"""T6 (extension) — 3D parallelism: grid-shape sweep at fixed world size.

With pipe x data x expert factorizations of the same 16 ranks, numerics
are identical (tested) while the simulated step time varies with the
communication mix: pipelines add p2p boundary traffic but shrink per-rank
dense allreduce volume; EP adds alltoalls but shrinks expert memory.
Every shape launches through the strategy registry — the layout alone
(``ep_size``/``pp_size``) selects dp, moda, or pp_moda — so this bench
doubles as an end-to-end check of ``strategy_for_layout``.
"""

from repro.models import tiny_config
from repro.network import sunway_network
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.utils import format_time

CFG = tiny_config(n_layers=4, num_experts=16)
WORLD = 16
NET = sunway_network(WORLD, supernode_size=4)


def _run_shape(pipe, ep, steps=2):
    res = run_distributed_training(
        TrainingRunConfig(
            model=CFG, world_size=WORLD, ep_size=ep, pp_size=pipe,
            num_steps=steps, batch_size=4, seq_len=8, num_microbatches=2,
            model_compute_time=False,  # isolate the communication mix
        ),
        network=NET,
    )
    return res


def test_t6_grid_shape_sweep(benchmark, report):
    def measure():
        rows = []
        for pipe, ep, label in [
            (1, 1, "pure DP (16 pipelines x 1)"),
            (1, 4, "MoDa (dp=4 x ep=4)"),
            (2, 4, "3D (pipe=2 x dp=2 x ep=4)"),
            (4, 4, "3D (pipe=4 x dp=1 x ep=4)"),
        ]:
            res = _run_shape(pipe, ep)
            rows.append(
                {
                    "grid": label,
                    "strategy": res.meta["strategy"],
                    "step_time": format_time(res.step_time),
                    "seconds": res.step_time,
                    "p2p_msgs": res.traffic["p2p_messages"],
                    "losses0": round(res.losses[0], 4),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("t6_grid", "T6: 3D grid factorizations at 16 ranks", rows)

    by = {r["grid"]: r for r in rows}
    # The layout alone routes each shape to the right strategy.
    assert by["pure DP (16 pipelines x 1)"]["strategy"] == "dp"
    assert by["MoDa (dp=4 x ep=4)"]["strategy"] == "moda"
    assert by["3D (pipe=2 x dp=2 x ep=4)"]["strategy"] == "pp_moda"
    # Pipeline shapes produce boundary p2p traffic; flat shapes none.
    assert by["3D (pipe=2 x dp=2 x ep=4)"]["p2p_msgs"] > 0
    assert by["MoDa (dp=4 x ep=4)"]["p2p_msgs"] == 0
    # Same plane width (=16) shapes see the same data -> same first loss.
    assert by["pure DP (16 pipelines x 1)"]["losses0"] == by["MoDa (dp=4 x ep=4)"]["losses0"]
