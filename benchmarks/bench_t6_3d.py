"""T6 (extension) — 3D parallelism: grid-shape sweep at fixed world size.

With pipe x data x expert factorizations of the same 16 ranks, numerics
are identical (tested) while the simulated step time varies with the
communication mix: pipelines add p2p boundary traffic but shrink per-rank
dense allreduce volume; EP adds alltoalls but shrinks expert memory. This
bench prints the measured trade at 16 ranks.
"""

import numpy as np

from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import tiny_config
from repro.network import sunway_network
from repro.parallel import Trainer3D, build_groups3d
from repro.simmpi import run_spmd
from repro.train import Adam
from repro.utils import format_time

CFG = tiny_config(n_layers=4, num_experts=16)
WORLD = 16
NET = sunway_network(WORLD, supernode_size=4)


def _run_shape(pipe, ep, steps=2):
    def program(comm):
        groups = build_groups3d(comm, pipe_size=pipe, ep_size=ep)
        trainer = Trainer3D(CFG, groups, num_microbatches=2, seed=1)
        trainer.attach_optimizer(Adam(trainer.stage.parameters(), lr=1e-3))
        corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, seed=2)
        loader = ShardedLoader(corpus, 4, 8, dp_rank=groups.pipeline_id,
                               dp_size=groups.grid.plane_size)
        return [trainer.train_step(loader.get_batch(s)).global_loss
                for s in range(steps)]

    res = run_spmd(program, WORLD, network=NET, timeout=600)
    return res


def test_t6_grid_shape_sweep(benchmark, report):
    def measure():
        rows = []
        for pipe, ep, label in [
            (1, 1, "pure DP (16 pipelines x 1)"),
            (1, 4, "MoDa (dp=4 x ep=4)"),
            (2, 4, "3D (pipe=2 x dp=2 x ep=4)"),
            (4, 4, "3D (pipe=4 x dp=1 x ep=4)"),
        ]:
            res = _run_shape(pipe, ep)
            rows.append(
                {
                    "grid": label,
                    "step_time": format_time(res.simulated_time / 2),
                    "seconds": res.simulated_time / 2,
                    "p2p_msgs": res.stats.p2p_messages,
                    "losses0": round(res.returns[0][0], 4),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("t6_grid", "T6: 3D grid factorizations at 16 ranks", rows)

    # Pipeline shapes produce boundary p2p traffic; flat shapes none.
    by = {r["grid"]: r for r in rows}
    assert by["3D (pipe=2 x dp=2 x ep=4)"]["p2p_msgs"] > 0
    assert by["MoDa (dp=4 x ep=4)"]["p2p_msgs"] == 0
    # Same plane width (=16) shapes see the same data -> same first loss.
    assert by["pure DP (16 pipelines x 1)"]["losses0"] == by["MoDa (dp=4 x ep=4)"]["losses0"]
