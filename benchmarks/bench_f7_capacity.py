"""F7 — capacity-factor sweep: token drop rate vs buffer size vs quality.

Paper context (reconstructed): static expert buffers make MoE traffic
fixed-size; the capacity factor trades dropped tokens (quality) against
buffer memory and alltoall payload. This bench sweeps the factor over a
skewed stream and reports drop rate and converged loss.
"""

import numpy as np

from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import build_model, tiny_config
from repro.moe import apply_capacity, expert_capacity, make_gate
from repro.models import Embedding, Linear
from repro.train import Adam, ConstantLR, Trainer

VOCAB = 256
EXPERTS = 16


def test_f7_drop_rate_vs_capacity(benchmark, report):
    """Routing-level sweep on a Zipf stream with a top-k gate."""
    rng = np.random.default_rng(0)
    corpus = SyntheticCorpus(vocab_size=VOCAB, zipf_alpha=1.2, seed=0)
    tokens = corpus.sample(2048)
    emb = Embedding(VOCAB, 16, rng)
    router = Linear(16, EXPERTS, rng, bias=False)
    logits = router(emb(tokens.reshape(1, -1)).reshape(-1, 16))
    gate = make_gate("topk", EXPERTS, top_k=1)
    out = gate(logits, rng)

    def sweep():
        rows = []
        for factor in (0.5, 1.0, 1.5, 2.0, 4.0):
            cap = apply_capacity(out.indices, EXPERTS, factor)
            rows.append(
                {
                    "capacity_factor": factor,
                    "buffer_per_expert": expert_capacity(2048, EXPERTS, 1, factor),
                    "dropped_tokens": cap.dropped,
                    "drop_rate": round(cap.drop_fraction, 4),
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f7_drop_rate", "F7a: token drop rate vs capacity factor (topk gate)", rows)

    drops = [r["drop_rate"] for r in rows]
    assert all(a >= b for a, b in zip(drops, drops[1:])), "drop rate must fall"
    assert drops[0] > 0.1
    assert drops[-1] < 0.05


def test_f7_balanced_gate_never_needs_drops(benchmark, report):
    """The balanced gate's assignment respects capacity by construction."""
    rng = np.random.default_rng(1)
    corpus = SyntheticCorpus(vocab_size=VOCAB, zipf_alpha=1.2, seed=1)
    tokens = corpus.sample(2048)
    emb = Embedding(VOCAB, 16, rng)
    router = Linear(16, EXPERTS, rng, bias=False)
    logits = router(emb(tokens.reshape(1, -1)).reshape(-1, 16))

    def sweep():
        rows = []
        for name in ("topk", "balanced"):
            gate = make_gate(name, EXPERTS, top_k=1, **(
                {"capacity_factor": 1.0} if name == "balanced" else {}
            ))
            out = gate(logits, np.random.default_rng(2))
            cap = apply_capacity(out.indices, EXPERTS, 1.0)
            rows.append({"gate": name, "drop_rate_at_cf1": round(cap.drop_fraction, 4)})
        return rows

    rows = benchmark(sweep)
    report("f7_balanced", "F7b: drops at capacity factor 1.0 by gate", rows)
    by = {r["gate"]: r["drop_rate_at_cf1"] for r in rows}
    assert by["balanced"] <= 0.01
    assert by["topk"] > by["balanced"]


def test_f7_training_quality_vs_capacity(benchmark, report):
    """End-to-end: tighter capacity drops more tokens and costs loss."""

    def run():
        rows = []
        for factor in (0.5, 2.0):
            cfg = tiny_config(capacity_factor=factor)
            model = build_model(cfg, seed=4)
            corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=6)
            loader = ShardedLoader(corpus, batch_size=8, seq_len=16)
            trainer = Trainer(model, Adam(model.parameters(), lr=3e-3),
                              schedule=ConstantLR(3e-3))
            hist = trainer.fit(loader, 50)
            drop = float(np.mean([m.last_drop_fraction for m in model.moe_layers()]))
            rows.append(
                {
                    "capacity_factor": factor,
                    "final_drop_rate": round(drop, 4),
                    "final_loss": round(float(np.mean([h.loss for h in hist[-10:]])), 4),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("f7_quality", "F7c: training loss vs capacity factor", rows)

    tight, loose = rows[0], rows[1]
    assert tight["final_drop_rate"] >= loose["final_drop_rate"]
    # Quality ordering can be noisy at toy scale; require no *large* win
    # for the tighter buffer.
    assert tight["final_loss"] >= loose["final_loss"] - 0.1
