"""T11 (extension) — metric-driven autoscaling under a load ramp.

One table on the virtual clock: a two-tier workload whose Poisson
arrival rate ramps from comfortable (0.5x the calibrated sustainable
rate) through saturation (1.5x) to a long overload stage (3.0x),
served by

* a **pinned** fleet held at the floor replica count, and
* an **autoscaled** fleet starting at the same floor, growing toward a
  ceiling from windowed TTFT-p95 / backlog signals (and draining back
  on idle),

both running the *same* windowed online dispatch (a pinned autoscaler,
``min_replicas == max_replicas``), so elasticity is the only variable.
The legacy dispatch-all fleet path is deliberately not the baseline: it
schedules every arrival into one clairvoyant continuous-batching
segment, which no online controller can match — and which an autoscaler
cannot use, because scale decisions must interleave with arrivals.

The acceptance bar: the ramp saturates the pinned fleet — premium
(tier-0) TTFT p95 breaches the SLO and the burn-rate monitor fires —
while the autoscaled fleet holds premium TTFT p95 within the same SLO,
scales up at least once, burns strictly less error budget, and loses no
request silently.

Run standalone as ``python benchmarks/bench_t11_autoscale.py --smoke
[--out F]`` for a seconds-scale CI smoke; ``--out`` writes a
deterministic report (summary + SLO report + span dump) that CI runs
twice and byte-compares.
"""

import json

from repro.models import small_config
from repro.obs import SLOObjective, slo_report, span_coverage
from repro.serve import (
    AutoscalerConfig,
    FleetConfig,
    ServeConfig,
    run_fleet_serving,
    run_serving,
)

CFG = small_config(vocab_size=256)
WORLD = 2
REQUESTS = 72
MAX_NEW = 16

#: Ramp stages: (multiple of the sustainable arrival rate, requests).
#: The overload stage carries two thirds of the workload so saturation,
#: not the ramp-up transient, dominates the pinned fleet's tail.
RAMP_STAGES = ((0.5, 12), (1.5, 12), (3.0, 48))
#: Premium TTFT objective as a multiple of the *paced* uncontended p95
#: (an all-at-t=0 run inflates TTFT with its admission burst). The
#: pinned floor fleet saturates to ~50x uncontended under this ramp, so
#: 32x is a real objective it genuinely breaches with margin while an
#: elastic fleet holds it.
SLO_HEADROOM = 32.0
#: Calibration arrival rate for the uncontended p95 (x sustainable).
CALIBRATION_RATE = 0.25

FLOOR = 1
CEILING = 4

_US = 1e6  # virtual seconds -> microseconds for readable cells


def _serve_cfg(**overrides) -> ServeConfig:
    base = dict(
        model=CFG, ep_size=WORLD, num_requests=REQUESTS, prompt_len=8,
        prompt_len_max=16, max_new_tokens=MAX_NEW, max_batch_size=4,
        num_tiers=2, seed=0, observe=True,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _ramp(sustainable: float) -> tuple[tuple[float, float], ...]:
    """Piecewise-constant schedule: each stage sized for its request count."""
    segments = []
    t = 0.0
    for mult, count in RAMP_STAGES:
        rate = mult * sustainable
        segments.append((t, rate))
        t += count / rate
    return tuple(segments)


def _premium_ttft_p95(fleet) -> float:
    ttfts = sorted(
        r["ttft"] for r in fleet.requests
        if r["tier"] == 0 and r["state"] == "done" and r["ttft"] is not None
    )
    if not ttfts:
        return 0.0
    return ttfts[min(len(ttfts) - 1, int(0.95 * len(ttfts)))]


def _accounted(fleet, n=REQUESTS) -> bool:
    recs = fleet.requests
    return (
        sorted(r["rid"] for r in recs) == list(range(n))
        and all(r["state"] in ("done", "evicted", "shed") for r in recs)
        and all(r["state"] == "done" or r["reason"] for r in recs)
    )


def _fleet_cfg(scfg, slo_s, span_s, floor, ceiling) -> FleetConfig:
    """Windowed-dispatch fleet; ``floor == ceiling`` pins it (no scaling)."""
    scale = AutoscalerConfig(
        min_replicas=floor, max_replicas=ceiling, ttft_slo_s=slo_s,
        signal_window_s=span_s / 10, cooldown_s=span_s / 100,
        spawn_delay_s=span_s / 500, dispatch_window_s=span_s / 10,
        queue_high=2.0, queue_low=0.25, scale_up_frac=0.5,
        scale_down_frac=0.05, min_samples=2,
    )
    return FleetConfig(
        serve=scfg, replicas=floor, max_rounds=2048, autoscale=scale,
        slos=(SLOObjective(name="premium-ttft", threshold_s=slo_s,
                           metric="ttft", tier=0),),
        # Burn windows derive from the horizon (h/10 down to h/720); five
        # ramp spans puts the "notice" window at ~half the ramp, wide
        # enough to accumulate min_samples during the overload stage.
        slo_horizon_s=5.0 * span_s,
    )


def _slo_stats(fleet) -> dict:
    fired = bad = 0
    for mon in fleet.slo:
        s = mon.summary()
        fired += s["alerts_fired"]
        bad += s["bad"]
    return {"fired": fired, "bad": bad}


def test_t11_autoscale(benchmark, report):
    def measure():
        # Calibrate in two runs: sustainable request rate from a batch
        # run, then uncontended TTFT from a paced run well under it.
        healthy = run_serving(_serve_cfg(observe=False, num_requests=48))
        sustainable = healthy.throughput / MAX_NEW
        paced = run_serving(_serve_cfg(
            observe=False, num_requests=48,
            arrival_rate=CALIBRATION_RATE * sustainable,
        ))
        base_p95 = paced.ttft.percentile(95)
        slo_s = SLO_HEADROOM * base_p95
        ramp = _ramp(sustainable)
        ramp_span = ramp[-1][0] + RAMP_STAGES[-1][1] / ramp[-1][1]

        rows = []
        fleets = {}
        for label, ceiling in (("pinned", FLOOR), ("autoscaled", CEILING)):
            fleet = run_fleet_serving(_fleet_cfg(
                _serve_cfg(arrival_ramp=ramp), slo_s, ramp_span,
                FLOOR, ceiling,
            ))
            fleets[label] = fleet
            p95 = _premium_ttft_p95(fleet)
            slo = _slo_stats(fleet)
            rows.append({
                "fleet": label,
                "replicas": f"{FLOOR}..{ceiling}",
                "completed": fleet.completed,
                "scale_ups": fleet.scale_ups,
                "scale_downs": fleet.scale_downs,
                "replicas_final": fleet.replicas_final,
                "premium_ttft_p95_us": p95 * _US,
                "slo_us": slo_s * _US,
                "breach": p95 > slo_s,
                "slo_bad": slo["bad"],
                "slo_alerts": slo["fired"],
                "makespan_us": fleet.simulated_time * _US,
                "accounted": _accounted(fleet),
            })
        return rows, fleets

    rows, fleets = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "t11_autoscale",
        f"T11: pinned vs autoscaled fleet under an arrival ramp "
        f"({REQUESTS} reqs, stages {RAMP_STAGES} x sustainable, "
        f"{WORLD} EP ranks per replica)",
        rows,
    )

    pinned, scaled = rows[0], rows[1]
    # Zero silent loss on both fleets.
    assert all(r["accounted"] for r in rows)
    # The ramp saturates the pinned floor fleet...
    assert pinned["breach"], pinned
    # ...and the autoscaler absorbs it within the same SLO.
    assert not scaled["breach"], scaled
    assert scaled["scale_ups"] >= 1
    # The burn-rate monitor pages on the saturated fleet, and the
    # elastic fleet burns strictly less error budget.
    assert pinned["slo_alerts"] >= 1, pinned
    assert scaled["slo_bad"] < pinned["slo_bad"]

    # Every admitted request carries exactly one root span whose on-path
    # children (+ explicit gaps) account for its recorded latency.
    for fleet in fleets.values():
        spans = fleet.context.spans
        roots = [s for s in spans.roots() if s.kind == "request"]
        assert len(roots) == len(fleet.requests)
        by_rid = {r["rid"]: r for r in fleet.requests}
        for root in roots:
            cov = span_coverage(spans, root)
            rec = by_rid[root.attrs["rid"]]
            if rec["state"] == "done":
                assert abs(cov["root_seconds"] - rec["latency"]) < 1e-9


def _smoke_report(fleet) -> str:
    """Deterministic text+JSON report (CI byte-compares two runs)."""
    lines = ["# T11 autoscale smoke report", ""]
    for key, value in sorted(fleet.metrics_record().items()):
        if isinstance(value, float):
            lines.append(f"{key}: {value:.9g}")
        else:
            lines.append(f"{key}: {value}")
    lines.append("")
    lines.append(slo_report(fleet.slo))
    lines.append("## span dump")
    lines.append("")
    lines.append(json.dumps(
        {"spans": fleet.context.spans.records()}, sort_keys=True
    ))
    return "\n".join(lines) + "\n"


def _smoke(out: str | None) -> int:
    """Seconds-scale end-to-end check for CI (returns a process rc)."""
    small = dict(num_requests=12, max_new_tokens=8, prompt_len=4,
                 prompt_len_max=8)
    healthy = run_serving(_serve_cfg(observe=False, **small))
    sustainable = healthy.throughput / 8
    base_p95 = healthy.ttft.percentile(95)
    ramp = ((0.0, 0.5 * sustainable), (4 / sustainable, 3.0 * sustainable))
    span = ramp[-1][0] + 8 / ramp[-1][1]
    fleet = run_fleet_serving(_fleet_cfg(
        _serve_cfg(arrival_ramp=ramp, **small),
        3.0 * base_p95, span, FLOOR, CEILING,
    ))
    spans = fleet.context.spans
    roots = [s for s in spans.roots() if s.kind == "request"]
    coverage_ok = True
    for root in roots:
        try:
            span_coverage(spans, root)
        except Exception:
            coverage_ok = False
    ok = (
        _accounted(fleet, n=12)
        and fleet.scale_ups >= 1
        and len(roots) == 12
        and coverage_ok
    )
    print(
        f"t11 smoke: {fleet.completed}/12 completed, "
        f"+{fleet.scale_ups}/-{fleet.scale_downs} scale events "
        f"(final {fleet.replicas_final} replicas), "
        f"{len(spans)} spans / {len(roots)} roots, "
        f"coverage={'ok' if coverage_ok else 'BROKEN'}, "
        f"accounted={'yes' if _accounted(fleet, n=12) else 'NO'}"
    )
    if out:
        with open(out, "w") as fh:
            fh.write(_smoke_report(fleet))
        print(f"t11 smoke: report -> {out}")
    return 0 if ok else 1


if __name__ == "__main__":
    import argparse
    import sys

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="fast end-to-end check (CI)")
    ap.add_argument("--out", default=None,
                    help="write the smoke report here")
    ns = ap.parse_args()
    if ns.smoke:
        sys.exit(_smoke(ns.out))
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    from conftest import OUT_DIR, format_table

    class _Bench:
        @staticmethod
        def pedantic(fn, **kw):
            return fn()

    def _report(name, title, rows):
        text = format_table(title, rows)
        print(text)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text)

    test_t11_autoscale(_Bench(), _report)
