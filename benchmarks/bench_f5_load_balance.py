"""F5 — load balance across gating strategies.

Paper claim: balanced gating keeps per-expert (and hence per-node) load
near-uniform on skewed natural-language token streams, where naive top-k
routing concentrates tokens on few experts; the load imbalance directly
multiplies synchronous step time. Workload: Zipf-distributed synthetic
corpus routed through a trained-shape router.
"""

import numpy as np

from repro.data import SyntheticCorpus
from repro.models import Embedding, Linear
from repro.moe import load_stats, make_gate
from repro.tensor import Tensor

VOCAB = 512
D_MODEL = 32
NUM_EXPERTS = 32
TOKENS = 4096


def routing_logits(seed=0):
    """Zipf tokens -> embedding -> router logits (content-based routing)."""
    rng = np.random.default_rng(seed)
    corpus = SyntheticCorpus(vocab_size=VOCAB, zipf_alpha=1.1, seed=seed)
    tokens = corpus.sample(TOKENS)
    emb = Embedding(VOCAB, D_MODEL, rng)
    router = Linear(D_MODEL, NUM_EXPERTS, rng, bias=False)
    return router(emb(tokens.reshape(1, -1)).reshape(TOKENS, D_MODEL))


def test_f5_gate_strategy_imbalance(benchmark, report):
    logits = routing_logits()

    def sweep():
        rows = []
        for name in ("topk", "noisy-topk", "balanced", "random"):
            gate = make_gate(name, NUM_EXPERTS, top_k=1)
            out = gate(logits, np.random.default_rng(1))
            stats = load_stats(out.load)
            rows.append(
                {
                    "gate": name,
                    "max_load": int(stats.max),
                    "mean_load": round(stats.mean, 1),
                    "imbalance(max/mean)": round(stats.imbalance, 2),
                    "cv": round(stats.cv, 3),
                    # Step-time multiplier for synchronous EP.
                    "step_slowdown": round(stats.imbalance, 2),
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f5_gates", "F5a: expert load imbalance by gating strategy (Zipf tokens)", rows)

    by = {r["gate"]: r["imbalance(max/mean)"] for r in rows}
    # Shape: balanced ~ 1.0, topk clearly skewed, random near-uniform.
    assert by["balanced"] <= 1.1
    assert by["topk"] > 1.5
    assert by["balanced"] < by["topk"]
    assert by["random"] < by["topk"]


def test_f5_imbalance_vs_expert_count(benchmark, report):
    """Skew worsens with more experts for topk; balanced stays flat."""
    logits_full = routing_logits(seed=3)

    def sweep():
        rows = []
        for e in (8, 16, 32):
            sub = Tensor(logits_full.data[:, :e].copy())
            topk = load_stats(make_gate("topk", e)(sub, np.random.default_rng(0)).load)
            bal = load_stats(make_gate("balanced", e)(sub, np.random.default_rng(0)).load)
            rows.append(
                {
                    "experts": e,
                    "topk_imbalance": round(topk.imbalance, 2),
                    "balanced_imbalance": round(bal.imbalance, 2),
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f5_experts", "F5b: imbalance vs expert count", rows)
    assert all(r["balanced_imbalance"] <= 1.1 for r in rows)
    assert rows[-1]["topk_imbalance"] > rows[-1]["balanced_imbalance"]


def test_f5_projected_step_time_impact(benchmark, report):
    """Translate measured imbalance into full-machine step time (the paper's
    motivation for balanced gating)."""
    from repro.hardware import sunway_machine
    from repro.models import bagualu_14_5t
    from repro.network import sunway_network
    from repro.perf import ParallelPlan, StepModel

    logits = routing_logits(seed=5)

    def sweep():
        machine = sunway_machine(96_000)
        sm = StepModel(bagualu_14_5t(), machine, sunway_network(96_000))
        rows = []
        for name in ("topk", "balanced"):
            gate = make_gate(name, NUM_EXPERTS, top_k=1)
            imb = load_stats(gate(logits, np.random.default_rng(0)).load).imbalance
            plan = ParallelPlan(
                num_nodes=96_000, ep_size=96_000, micro_batch=8, seq_len=2048,
                load_imbalance=float(imb),
            )
            rows.append(
                {
                    "gate": name,
                    "measured_imbalance": round(imb, 2),
                    "projected_step_s": round(sm.step_time(plan), 1),
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f5_projected", "F5c: imbalance -> full-machine step time (14.5T)", rows)
    assert rows[1]["projected_step_s"] < rows[0]["projected_step_s"]
