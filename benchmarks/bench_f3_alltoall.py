"""F3 — hierarchical vs flat alltoall (the communication contribution).

Paper claim: the supernode-aggregated alltoall beats the flat pairwise
exchange at scale (latency-bound regime) because inter-supernode message
count drops from p-1 to G-1 per node; for very large payloads flat is
competitive (bandwidth-bound regime). This bench sweeps message size and
node count, printing the time ratio, and locates the crossover.
"""

import numpy as np

from repro.network import sunway_topology
from repro.network.collectives import cost_flat_alltoall, cost_hierarchical_alltoall
from repro.simmpi import run_spmd
from repro.network import sunway_network
from repro.utils import format_bytes, format_time


def test_f3_analytic_size_sweep(benchmark, report):
    """Analytic sweep at 4096 nodes over per-pair payload size."""
    topo = sunway_topology(4096, supernode_size=256)
    nodes = list(range(4096))

    def sweep():
        rows = []
        for nbytes in [64, 1024, 16384, 262144, 4194304, 67108864]:
            flat = cost_flat_alltoall(topo, nbytes, nodes)
            hier = cost_hierarchical_alltoall(topo, nbytes, nodes)
            rows.append(
                {
                    "per_pair": format_bytes(nbytes),
                    "flat": format_time(flat),
                    "hierarchical": format_time(hier),
                    "speedup(flat/hier)": round(flat / hier, 2),
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f3_size_sweep", "F3a: alltoall time vs per-pair size (4096 nodes)", rows)

    # Shape: hierarchical wins for small payloads, flat catches up for huge.
    assert rows[0]["speedup(flat/hier)"] > 2.0
    assert rows[-1]["speedup(flat/hier)"] < 1.1


def test_f3_analytic_node_sweep(benchmark, report):
    """Hierarchical advantage grows with node count (fixed 4 KiB payload)."""

    def sweep():
        rows = []
        for n in [256, 512, 1024, 4096, 16384, 96000]:
            topo = sunway_topology(n, supernode_size=256)
            nodes = list(range(n))
            flat = cost_flat_alltoall(topo, 4096, nodes)
            hier = cost_hierarchical_alltoall(topo, 4096, nodes)
            rows.append(
                {
                    "nodes": n,
                    "flat": format_time(flat),
                    "hierarchical": format_time(hier),
                    "speedup": round(flat / hier, 2),
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f3_node_sweep", "F3b: alltoall speedup vs node count (4 KiB/pair)", rows)

    speedups = [r["speedup"] for r in rows]
    assert speedups[-1] > speedups[1] > 1.0


def test_f3_measured_simmpi(benchmark, report):
    """Measured through the runtime: real alltoall calls on a 16-rank
    multi-supernode machine, virtual-clock timed."""
    net = sunway_network(16, supernode_size=4)

    def run_once(algorithm, nbytes):
        def program(comm):
            payload = [np.zeros(nbytes // 8, dtype=np.float64) for _ in range(comm.size)]
            for _ in range(3):
                comm.alltoall(payload, algorithm=algorithm)

        return run_spmd(program, 16, network=net).simulated_time

    def measure():
        rows = []
        for nbytes in [512, 8192, 131072]:
            flat = run_once("flat", nbytes)
            hier = run_once("hierarchical", nbytes)
            rows.append(
                {
                    "per_pair": format_bytes(nbytes),
                    "flat": format_time(flat),
                    "hierarchical": format_time(hier),
                    "speedup": round(flat / hier, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("f3_measured", "F3c: measured alltoall (16 ranks, supernode=4)", rows)
    assert rows[0]["speedup"] > 1.0  # small messages: hierarchical wins


def test_f3_measured_nonblocking_overlap(benchmark, report):
    """Measured: the nonblocking alltoall charges only the exposed
    remainder when compute advances between issue and wait (16 ranks)."""
    net = sunway_network(16, supernode_size=4)

    def run_once(compute_s, nonblocking):
        def program(comm):
            payload = [np.zeros(8192 // 8, dtype=np.float64)
                       for _ in range(comm.size)]
            for _ in range(3):
                if nonblocking:
                    req = comm.ialltoall(payload)
                    comm.advance(compute_s)
                    req.wait()
                else:
                    comm.alltoall(payload)
                    comm.advance(compute_s)

        return run_spmd(program, 16, network=net).simulated_time

    def measure():
        rows = []
        for compute_us in (0.0, 50.0, 500.0):
            compute_s = compute_us * 1e-6
            blocking = run_once(compute_s, nonblocking=False)
            overlapped = run_once(compute_s, nonblocking=True)
            rows.append(
                {
                    "compute_per_round": format_time(compute_s),
                    "blocking": format_time(blocking),
                    "nonblocking": format_time(overlapped),
                    "hidden": format_time(blocking - overlapped),
                    "hidden_seconds": blocking - overlapped,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("f3_nonblocking",
           "F3d: nonblocking alltoall overlap (16 ranks, 8 KiB/pair)", rows)
    assert rows[0]["hidden_seconds"] == 0.0  # no compute, nothing to hide
    assert rows[1]["hidden_seconds"] > 0.0
    # More compute hides more comm (until the exchange is fully hidden).
    assert rows[2]["hidden_seconds"] >= rows[1]["hidden_seconds"]
