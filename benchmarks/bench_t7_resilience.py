"""T7 (extension) — fault tolerance: checkpoint interval vs lost work.

At 96,000 nodes faults are routine; the checkpoint interval trades steady-
state overhead against work lost per failure. This bench crashes a run at
a fixed step under several intervals and reports the recomputed steps,
verifies the recovered trajectory matches an undisturbed run, and sweeps
the node MTBF through the elastic supervisor to chart goodput/availability
against failure rate (T7c).
"""

import numpy as np

from repro.models import tiny_config
from repro.parallel import ResilientRunConfig, run_resilient_training
from repro.resilience import ElasticRunConfig, Supervisor
from repro.simmpi import FaultModel, FaultPlan

CFG = tiny_config(num_experts=4)
TOTAL = 8

# Op index that lands the kill around training step ~5 of the first launch
# (measured for this model/batch configuration).
KILL_AT_OP = 120


def test_t7_interval_vs_lost_work(benchmark, report, tmp_path):
    def measure():
        rows = []
        for interval in (1, 2, 4):
            cfg = ResilientRunConfig(
                model=CFG, world_size=4, ep_size=2, total_steps=TOTAL,
                checkpoint_every=interval,
                checkpoint_dir=tmp_path / f"ival{interval}",
                batch_size=2, seq_len=8, seed=7,
            )
            res = run_resilient_training(
                cfg, fault_plans=[FaultPlan().kill_rank(1, at_op=KILL_AT_OP), None]
            )
            # Steps recomputed = steps the surviving segment replayed that
            # the crashed attempt had already processed (upper-bounded by
            # the interval).
            rows.append(
                {
                    "checkpoint_every": interval,
                    "restarts": res.restarts,
                    "resume_step": res.first_step,
                    "checkpoints_written": len(res.checkpoint_steps),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("t7_resilience", "T7: checkpoint interval vs recovery point", rows)

    assert all(r["restarts"] == 1 for r in rows)
    # Tighter intervals resume later (less lost work), at the cost of more
    # checkpoint writes.
    resume = [r["resume_step"] for r in rows]
    writes = [r["checkpoints_written"] for r in rows]
    assert resume[0] >= resume[-1]
    assert writes[0] > writes[-1]


def test_t7_recovery_is_exact(benchmark, report, tmp_path):
    """Crash+restore reproduces the healthy trajectory bit-for-bit."""

    def measure():
        healthy = run_resilient_training(
            ResilientRunConfig(
                model=CFG, world_size=4, ep_size=2, total_steps=6,
                checkpoint_every=2, checkpoint_dir=tmp_path / "healthy",
                batch_size=2, seq_len=8, seed=9,
            )
        )
        faulted = run_resilient_training(
            ResilientRunConfig(
                model=CFG, world_size=4, ep_size=2, total_steps=6,
                checkpoint_every=2, checkpoint_dir=tmp_path / "faulted",
                batch_size=2, seq_len=8, seed=9,
            ),
            fault_plans=[FaultPlan().kill_rank(2, at_op=100), None],
        )
        overlap = healthy.losses[faulted.first_step:]
        worst = float(np.abs(np.array(overlap) - np.array(faulted.losses)).max())
        return [
            {
                "restarts": faulted.restarts,
                "resumed_at_step": faulted.first_step,
                "max_loss_difference": worst,
            }
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("t7_exactness", "T7b: recovered vs healthy trajectory", rows)
    assert rows[0]["restarts"] == 1
    assert rows[0]["max_loss_difference"] < 1e-6


def test_t7_goodput_vs_mtbf(benchmark, report, tmp_path):
    """Sweep node MTBF through the elastic supervisor.

    Virtual step times for the tiny model are ~1e-4 s, so the MTBF grid
    spans "a failure every step or two" up to "effectively healthy"; the
    backoff base is scaled to the same regime. Goodput (surviving
    step-work per session second) should recover toward 1.0 as the
    machine gets healthier.
    """

    def sweep():
        rows = []
        for mtbf in (3e-4, 1e-3, 1e-2, None):
            cfg = ElasticRunConfig(
                model=CFG, world_size=4, ep_size=2, total_steps=TOTAL,
                checkpoint_every=2,
                checkpoint_dir=tmp_path / f"mtbf{mtbf or 'inf'}",
                batch_size=2, seq_len=8, seed=0,
                max_restarts=30, backoff_base=1e-4, backoff_cap=1e-3,
            )
            res = Supervisor(
                cfg, faults=FaultModel(seed=1, mtbf=mtbf) if mtbf else None
            ).run()
            rows.append(
                {
                    "mtbf_s": mtbf if mtbf is not None else float("inf"),
                    "restarts": res.restarts,
                    "shrinks": res.shrinks,
                    "final_world": res.final_world_size,
                    "lost_steps": res.lost_steps,
                    "goodput": res.goodput,
                    "availability": res.availability,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("t7_goodput", "T7c: goodput vs node MTBF (elastic supervisor)", rows)

    goodput = [r["goodput"] for r in rows]
    assert goodput[-1] == 1.0  # healthy machine: no overhead at all
    assert goodput == sorted(goodput)  # healthier machine, better goodput
    assert rows[0]["restarts"] > 0  # failure-dominated regime really failed
