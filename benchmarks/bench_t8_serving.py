"""T8 (extension) — serving: continuous batching + KV cache vs generate().

The training side of the reproduction measures step time; this bench
measures the *serving* side on the same virtual clock and network model.
One table, three regimes on a world of 4 EP ranks:

* the sequential uncached baseline (FIFO depth-1 per rank, full window
  re-forward per token — what looping ``generate(use_cache=False)`` does);
* continuous batching at several slot counts, all requests at t=0
  (throughput regime; the acceptance bar is >= 5x baseline decode
  throughput);
* continuous batching under Poisson arrivals at increasing rates
  (latency regime: TTFT and per-token p95 as the system saturates).

Run standalone as ``python benchmarks/bench_t8_serving.py --smoke`` for a
seconds-scale CI smoke (small world, asserts the machinery end to end).
"""

from repro.models import small_config
from repro.serve import ServeConfig, run_sequential_baseline, run_serving

CFG = small_config(vocab_size=256)
WORLD = 4
REQUESTS = 32
MAX_NEW = 32

SPEEDUP_FLOOR = 5.0

_US = 1e6  # virtual seconds -> microseconds for readable cells


def _serve_cfg(**overrides) -> ServeConfig:
    base = dict(
        model=CFG, ep_size=WORLD, num_requests=REQUESTS, prompt_len=8,
        prompt_len_max=16, max_new_tokens=MAX_NEW, max_batch_size=8, seed=0,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _row(label, res, baseline_throughput=None):
    rate = res.config.arrival_rate
    return {
        "mode": label,
        "batch": res.config.max_batch_size,
        "arrival_req_s": 0.0 if rate is None else rate,
        "completed": res.completed,
        "evicted": res.evicted,
        "makespan_us": res.simulated_time * _US,
        "tok_per_s": res.throughput,
        "speedup": (
            1.0 if baseline_throughput is None
            else res.throughput / baseline_throughput
        ),
        "ttft_p50_us": res.ttft.percentile(50) * _US if res.ttft.count else 0.0,
        "ttft_p95_us": res.ttft.percentile(95) * _US if res.ttft.count else 0.0,
        "token_p95_us": (
            res.token_latency.percentile(95) * _US
            if res.token_latency.count else 0.0
        ),
    }


def test_t8_serving(benchmark, report):
    def measure():
        rows = []
        base = run_sequential_baseline(_serve_cfg())
        rows.append(_row("sequential", base))
        bt = base.throughput
        # Throughput regime: all requests at t=0, growing slot counts.
        for batch in (1, 4, 8):
            res = run_serving(_serve_cfg(max_batch_size=batch))
            rows.append(_row("continuous", res, baseline_throughput=bt))
        # Latency regime: Poisson arrivals approaching saturation.
        for rate in (4e3, 16e3, 64e3):
            res = run_serving(_serve_cfg(arrival_rate=rate))
            rows.append(_row("continuous", res, baseline_throughput=bt))
        # Observed run: router telemetry + the serve metric registry.
        obs = run_serving(_serve_cfg(observe=True))
        router_rows = obs.context.router.layer_summary()
        metric_rows = [
            # Uniform columns: histograms report their mean + count,
            # counters/gauges their value with count 1.
            {
                "metric": r["metric"],
                "type": r["type"],
                "labels": r["labels"] or "-",
                "value": r.get("value", r.get("mean", 0.0)),
                "count": int(r.get("count", 1)),
            }
            for r in obs.context.metrics.snapshot()
        ]
        return rows, router_rows, metric_rows

    rows, router_rows, metric_rows = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    report("t8_router", "T8: decode-time router load per MoE layer", router_rows)
    report("t8_obs", "T8: serve metric registry (observed run)", metric_rows)
    assert any(r["metric"] == "serve_iterations" for r in metric_rows)
    assert all(r["mean_drop_fraction"] == 0.0 for r in router_rows)
    report(
        "t8_serving",
        f"T8: serving on {WORLD} EP ranks ({REQUESTS} reqs x {MAX_NEW} new "
        f"tokens, {CFG.name} d{CFG.d_model}x{CFG.n_layers}L "
        f"{CFG.num_experts}e)",
        rows,
    )

    seq = rows[0]
    cont = [r for r in rows if r["mode"] == "continuous"]
    # Everything completes when no SLO is set.
    assert all(r["completed"] == REQUESTS and r["evicted"] == 0 for r in rows)
    # The acceptance bar: continuous batching + KV cache beats the
    # sequential uncached baseline by >= 5x decode throughput.
    best = max(r["speedup"] for r in cont)
    assert best >= SPEEDUP_FLOOR, f"best speedup {best:.2f}x < {SPEEDUP_FLOOR}x"
    # Even a single cached slot beats uncached re-forwarding.
    assert cont[0]["batch"] == 1 and cont[0]["speedup"] > 1.0
    # More slots never hurt throughput in the t=0 regime.
    t0 = [r for r in cont if r["arrival_req_s"] == 0.0]
    assert all(a["tok_per_s"] <= b["tok_per_s"] * 1.01
               for a, b in zip(t0, t0[1:]))
    # Saturation: higher arrival rates push TTFT p95 up (queueing).
    rated = [r for r in cont if r["arrival_req_s"] > 0.0]
    assert rated[-1]["ttft_p95_us"] >= rated[0]["ttft_p95_us"]
    assert seq["tok_per_s"] > 0


def _smoke() -> int:
    """Seconds-scale end-to-end check for CI (returns a process rc)."""
    cfg = _serve_cfg(
        ep_size=2, num_requests=8, max_new_tokens=8, max_batch_size=4,
    )
    cont = run_serving(cfg)
    base = run_sequential_baseline(cfg)
    ok = (
        cont.completed == base.completed == cfg.num_requests
        and cont.decode_tokens == cfg.num_requests * cfg.max_new_tokens
        and cont.throughput > base.throughput
        and {r["rid"]: r["tokens"] for r in cont.requests}
        == {r["rid"]: r["tokens"] for r in base.requests}
    )
    speedup = cont.throughput / base.throughput if base.throughput else float("nan")
    print(
        f"t8 smoke: continuous {cont.throughput:,.0f} tok/s vs sequential "
        f"{base.throughput:,.0f} tok/s ({speedup:.2f}x), "
        f"{cont.completed}/{cfg.num_requests} completed, tokens "
        f"{'match' if ok else 'MISMATCH'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    import argparse
    import sys

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="fast end-to-end check (CI)")
    if ap.parse_args().smoke:
        sys.exit(_smoke())
    # Full table without pytest: reuse the conftest formatting.
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    from conftest import OUT_DIR, format_table

    class _Bench:
        @staticmethod
        def pedantic(fn, **kw):
            return fn()

    def _report(name, title, rows):
        text = format_table(title, rows)
        print(text)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text)

    test_t8_serving(_Bench(), _report)
