"""T3 — parallel strategy comparison: pure DP vs flat EP vs MoDa.

Paper claim: the MoDa hybrid (experts sharded inside supernodes,
hierarchical collectives, data parallelism everywhere) beats both
single-axis strategies. Every measured row launches through the strategy
registry (``TrainingRunConfig.strategy``), so the comparison exercises
the same dispatch path the CLI uses; per-phase timings come from the
shared RunContext. Projected rows use the analytic step model. Pure DP
is also memory-infeasible at brain scale (see T4), so its row at
96,000 nodes is hypothetical-compute-only.
"""

import numpy as np

from repro.hardware import sunway_machine
from repro.models import bagualu_14_5t, tiny_config
from repro.network import sunway_network
from repro.obs import profile_comm
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.perf import ParallelPlan, StepModel
from repro.utils import format_time

CFG = tiny_config(num_experts=16)
NET = sunway_network(16, supernode_size=4)


def _measure(strategy, ep_size, alltoall, allreduce):
    res = run_distributed_training(
        TrainingRunConfig(
            model=CFG, world_size=16, ep_size=ep_size, num_steps=3,
            batch_size=2, seq_len=8, strategy=strategy,
            alltoall_algorithm=alltoall, allreduce_algorithm=allreduce,
            model_compute_time=False,  # isolate communication differences
            trace=True,    # timed per-(op, rank) comm records
            observe=True,  # router telemetry for the load table
        ),
        network=NET,
    )
    assert res.meta["strategy"] == strategy
    return res


def test_t3_measured_strategy_comparison(benchmark, report):
    def run():
        strategies = [
            ("pure-DP (ep=1)", "dp", 1, None, "ring"),
            ("flat-EP (ep=16, flat a2a)", "ep", 16, "flat", "ring"),
            ("MoDa (ep=4, hierarchical)", "moda", 4, "hierarchical", "hierarchical"),
        ]
        rows = []
        losses = {}
        comm_rows = []
        router_rows = []
        for label, name, ep, a2a, ar in strategies:
            res = _measure(name, ep, a2a, ar)
            losses[label] = res.losses
            rows.append(
                {
                    "strategy": label,
                    "registry_name": name,
                    "comm_time_per_step": format_time(res.step_time),
                    "seconds": res.step_time,
                    "grad_sync_s": round(res.phase_seconds.get("grad_sync", 0.0), 6),
                    "total_bytes": res.traffic["total_bytes"],
                }
            )
            for rec in profile_comm(res.context, network=NET).per_op():
                comm_rows.append(
                    {
                        "strategy": name,
                        "op": rec.op,
                        "calls": rec.calls,
                        "nbytes": rec.nbytes,
                        "seconds": rec.seconds,
                        "utilization": (
                            0.0 if rec.utilization is None else rec.utilization
                        ),
                    }
                )
            for row in res.context.router.layer_summary():
                router_rows.append({"strategy": name, **row})
        return rows, losses, comm_rows, router_rows

    rows, losses, comm_rows, router_rows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report("t3_measured", "T3a: measured per-step communication time (16 ranks)", rows)
    report("t3_comm", "T3a: per-op comm profile (cost-model utilization)", comm_rows)
    report("t3_router", "T3a: router load per MoE layer", router_rows)

    by = {r["strategy"]: r["seconds"] for r in rows}
    moda = by["MoDa (ep=4, hierarchical)"]
    # Shape: MoDa beats flat EP; all strategies compute identical losses.
    assert moda < by["flat-EP (ep=16, flat a2a)"]
    vals = list(losses.values())
    for v in vals[1:]:
        assert np.allclose(v, vals[0], atol=1e-4)


def test_t3_projected_full_machine(benchmark, report):
    cfg = bagualu_14_5t()
    machine = sunway_machine(96_000)
    net = sunway_network(96_000)

    def run():
        sm = StepModel(cfg, machine, net)
        rows = []
        for label, kw in [
            ("flat-EP", dict(alltoall="flat", allreduce="ring")),
            ("MoDa (hierarchical)", dict(alltoall="hierarchical", allreduce="hierarchical")),
            ("MoDa (auto)", dict()),
        ]:
            plan = ParallelPlan(
                num_nodes=96_000, ep_size=96_000, micro_batch=8, seq_len=2048,
                load_imbalance=1.05, **kw,
            )
            bd = sm.step_breakdown(plan)
            rows.append(
                {
                    "strategy": label,
                    "alltoall": format_time(bd.alltoall),
                    "dense_allreduce": format_time(bd.dense_allreduce),
                    "step_total": format_time(bd.total),
                    "seconds": bd.total,
                }
            )
        return rows

    rows = benchmark(run)
    report("t3_projected", "T3b: projected strategies at 96,000 nodes (14.5T)", rows)

    by = {r["strategy"]: r["seconds"] for r in rows}
    assert by["MoDa (hierarchical)"] < by["flat-EP"]
    assert by["MoDa (auto)"] <= by["MoDa (hierarchical)"] + 1e-9
