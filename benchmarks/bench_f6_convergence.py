"""F6 — convergence curves: mixed precision vs fp32; MoE vs dense.

Paper claims (reconstructed):

* mixed-precision training with dynamic loss scaling follows the fp32
  loss curve (the correctness side of the 2x throughput);
* at matched *active* compute per token, the MoE model reaches a lower
  loss than the dense backbone alone (the capacity benefit of experts).
"""

import numpy as np

from repro.amp import DynamicLossScaler, cast_model
from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import build_model, tiny_config
from repro.train import Adam, ConstantLR, Trainer

STEPS = 60
LR = 3e-3


def train_curve(cfg, dtype="fp32", seed=1, steps=STEPS):
    model = build_model(cfg, seed=seed)
    scaler = None
    if dtype == "fp16":
        cast_model(model, "fp16")
        scaler = DynamicLossScaler(init_scale=2.0**10, growth_interval=25)
    corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=5)
    loader = ShardedLoader(corpus, batch_size=8, seq_len=16)
    trainer = Trainer(model, Adam(model.parameters(), lr=LR),
                      schedule=ConstantLR(LR), scaler=scaler, grad_clip=1.0)
    return [r.loss for r in trainer.fit(loader, steps)]


def test_f6_fp16_tracks_fp32(benchmark, report):
    cfg = tiny_config()

    def run():
        fp32 = train_curve(cfg, "fp32")
        fp16 = train_curve(cfg, "fp16")
        rows = []
        for s in (0, 14, 29, 44, STEPS - 1):
            rows.append(
                {
                    "step": s,
                    "fp32_loss": round(fp32[s], 4),
                    "fp16_loss": round(fp16[s], 4),
                    "abs_diff": round(abs(fp32[s] - fp16[s]), 4),
                }
            )
        return rows, fp32, fp16

    rows, fp32, fp16 = benchmark.pedantic(run, rounds=1, iterations=1)
    report("f6_precision", "F6a: fp32 vs mixed-precision loss curve", rows)

    # Shape: curves overlap (max gap small) and both converge.
    assert max(r["abs_diff"] for r in rows) < 0.15
    assert fp32[-1] < fp32[0] * 0.8
    assert fp16[-1] < fp16[0] * 0.8


def test_f6_moe_matches_dense_at_equal_active_compute(benchmark, report):
    """MoE (8 experts, top-1) vs dense with the same active FLOPs/token.

    The relevant premise at laptop scale: MoE holds many times the
    parameters *without* a quality penalty at equal active compute. (The
    paper's quality *advantage* needs corpus/model scale beyond this
    substrate — recorded as a known deviation in EXPERIMENTS.md.)
    """

    moe_cfg = tiny_config(num_experts=8, aux_weight=1e-2)
    dense_cfg = tiny_config(num_experts=1)  # single expert == dense FFN

    def run():
        moe = train_curve(moe_cfg, seed=2, steps=80)
        dense = train_curve(dense_cfg, seed=2, steps=80)
        rows = [
            {
                "model": "dense (1 expert)",
                "params": dense_cfg.total_params,
                "final_loss": round(np.mean(dense[-10:]), 4),
            },
            {
                "model": "MoE (8 experts, top-1)",
                "params": moe_cfg.total_params,
                "final_loss": round(np.mean(moe[-10:]), 4),
            },
        ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("f6_moe_vs_dense", "F6b: MoE vs dense at equal active compute", rows)

    dense_loss = rows[0]["final_loss"]
    moe_loss = rows[1]["final_loss"]
    # Shape: MoE matches dense within noise at equal active compute...
    assert moe_loss <= dense_loss + 0.1
    # ...while holding several times the parameters.
    assert rows[1]["params"] > 2 * rows[0]["params"]


def test_f6_loss_scale_dynamics(benchmark, report):
    """The scaler finds a stable scale without diverging training."""
    cfg = tiny_config()

    def run():
        model = cast_model(build_model(cfg, seed=3), "fp16")
        scaler = DynamicLossScaler(init_scale=2.0**20, growth_interval=30)
        corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=5)
        loader = ShardedLoader(corpus, batch_size=8, seq_len=16)
        trainer = Trainer(model, Adam(model.parameters(), lr=LR), scaler=scaler)
        hist = trainer.fit(loader, 50)
        skipped = sum(r.skipped for r in hist)
        return [
            {
                "initial_scale": 2.0**20,
                "final_scale": scaler.scale,
                "overflows": scaler.overflow_count,
                "skipped_steps": skipped,
                "final_loss": round(hist[-1].loss, 4),
            }
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("f6_scaler", "F6c: dynamic loss-scale trajectory (fp16)", rows)
    r = rows[0]
    assert np.isfinite(r["final_loss"])
    assert r["skipped_steps"] < 25  # training made progress
