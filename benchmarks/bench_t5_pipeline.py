"""T5 (extension) — pipeline parallelism: bubble overhead vs microbatches.

The GPipe bubble idles (S-1)/(M+S-1) of the step. This bench measures the
effect through the real runtime (virtual-clock timing of actual pipeline
p2p schedules) and checks it against the analytic formula — the third
parallel axis on top of the paper's MoDa.
"""

import numpy as np

from repro.hardware import laptop_machine
from repro.models import tiny_config
from repro.network import flat_network
from repro.parallel import GPipeRunner, pipeline_bubble_fraction
from repro.perf import ComputeTimer
from repro.simmpi import run_spmd

CFG = tiny_config(n_layers=4, aux_weight=0.0)
STAGES = 4
BATCH = 8


def _pipeline_time(num_microbatches: int) -> float:
    """Simulated time of one GPipe step with modelled per-stage compute."""
    tokens = np.random.default_rng(0).integers(0, CFG.vocab_size, size=(BATCH, 8))
    machine = laptop_machine(STAGES)
    timer = ComputeTimer(CFG, machine, seq_len=8)
    per_stage_tokens = BATCH * 8 // num_microbatches  # tokens per microbatch

    def program(comm):
        runner = GPipeRunner(CFG, comm, num_microbatches=num_microbatches, seed=1)
        # Model compute: each stage holds 1/STAGES of the layers, so each
        # microbatch costs roughly dense_time/STAGES on this stage. The
        # p2p dependencies then produce the fill/drain bubble naturally.
        orig = runner.stage.forward

        def timed_forward(x):
            comm.advance(timer.dense_step_time(per_stage_tokens) / STAGES)
            return orig(x)

        runner.stage.forward = timed_forward
        runner.train_step(tokens, tokens)
        return comm.clock

    res = run_spmd(program, STAGES, network=flat_network(STAGES), timeout=300)
    return res.simulated_time


def test_t5_bubble_vs_microbatches(benchmark, report):
    def measure():
        rows = []
        base = None
        for m in (1, 2, 4, 8):
            t = _pipeline_time(m)
            if base is None:
                base = t
            rows.append(
                {
                    "microbatches": m,
                    "step_time_s": t,
                    "vs_m1": round(t / base, 3),
                    "analytic_bubble": round(pipeline_bubble_fraction(STAGES, m), 3),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("t5_pipeline", "T5: GPipe step time vs microbatch count (4 stages)", rows)

    times = [r["step_time_s"] for r in rows]
    # Shape: more microbatches shrink the bubble -> faster steps.
    assert times[-1] < times[0]
    bubbles = [r["analytic_bubble"] for r in rows]
    assert all(a > b for a, b in zip(bubbles, bubbles[1:]))


def test_t5_stage_memory_partition(benchmark, report):
    """Each stage holds ~1/S of the parameters (the memory win)."""
    from repro.parallel import PipelineStage

    def measure():
        full = sum(
            PipelineStage(CFG, 1, 0, seed=0).num_parameters() for _ in range(1)
        )
        rows = []
        for s_count in (1, 2, 4):
            biggest = max(
                PipelineStage(CFG, s_count, s, seed=0).num_parameters()
                for s in range(s_count)
            )
            rows.append(
                {
                    "stages": s_count,
                    "largest_stage_params": biggest,
                    "fraction_of_model": round(biggest / full, 3),
                }
            )
        return rows

    rows = benchmark(measure)
    report("t5_memory", "T5b: largest-stage parameter fraction", rows)
    fracs = [r["fraction_of_model"] for r in rows]
    assert fracs[0] == 1.0
    assert all(a >= b for a, b in zip(fracs, fracs[1:]))
    # Embeddings/head skew the split; still a clear reduction by 4 stages.
    assert fracs[-1] < 0.75
