"""T5 (extension) — pipeline parallelism: bubble overhead vs microbatches.

The GPipe bubble idles (S-1)/(M+S-1) of the step. This bench drives the
``pipeline`` strategy through the registry entry point — the same path
the CLI's ``--pp`` flag takes — and checks the measured trend against
the analytic formula. The third parallel axis on top of the paper's
MoDa.
"""

from repro.hardware import laptop_machine
from repro.models import tiny_config
from repro.network import flat_network
from repro.parallel import (
    TrainingRunConfig,
    pipeline_bubble_fraction,
    run_distributed_training,
)

CFG = tiny_config(n_layers=4, aux_weight=0.0)
STAGES = 4
BATCH = 8


def _pipeline_time(num_microbatches: int) -> float:
    """Simulated per-step time of the pipeline strategy at STAGES ranks."""
    res = run_distributed_training(
        TrainingRunConfig(
            model=CFG, world_size=STAGES, pp_size=STAGES, num_steps=1,
            batch_size=BATCH, seq_len=8, num_microbatches=num_microbatches,
            strategy="pipeline",
        ),
        network=flat_network(STAGES),
        machine=laptop_machine(STAGES),
    )
    assert res.meta["strategy"] == "pipeline"
    return res.step_time


def test_t5_bubble_vs_microbatches(benchmark, report):
    def measure():
        rows = []
        base = None
        for m in (1, 2, 4, 8):
            t = _pipeline_time(m)
            if base is None:
                base = t
            rows.append(
                {
                    "microbatches": m,
                    "step_time_s": t,
                    "vs_m1": round(t / base, 3),
                    "analytic_bubble": round(pipeline_bubble_fraction(STAGES, m), 3),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("t5_pipeline", "T5: GPipe step time vs microbatch count (4 stages)", rows)

    times = [r["step_time_s"] for r in rows]
    # Shape: more microbatches shrink the bubble -> faster steps.
    assert times[-1] < times[0]
    bubbles = [r["analytic_bubble"] for r in rows]
    assert all(a > b for a, b in zip(bubbles, bubbles[1:]))


def test_t5_stage_memory_partition(benchmark, report):
    """Each stage holds ~1/S of the parameters (the memory win)."""
    from repro.parallel import PipelineStage

    def measure():
        full = sum(
            PipelineStage(CFG, 1, 0, seed=0).num_parameters() for _ in range(1)
        )
        rows = []
        for s_count in (1, 2, 4):
            biggest = max(
                PipelineStage(CFG, s_count, s, seed=0).num_parameters()
                for s in range(s_count)
            )
            rows.append(
                {
                    "stages": s_count,
                    "largest_stage_params": biggest,
                    "fraction_of_model": round(biggest / full, 3),
                }
            )
        return rows

    rows = benchmark(measure)
    report("t5_memory", "T5b: largest-stage parameter fraction", rows)
    fracs = [r["fraction_of_model"] for r in rows]
    assert fracs[0] == 1.0
    assert all(a >= b for a, b in zip(fracs, fracs[1:]))
    # Embeddings/head skew the split; still a clear reduction by 4 stages.
    assert fracs[-1] < 0.75
