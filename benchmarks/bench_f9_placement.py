"""F9 (ablation) — EP-group placement: inside vs across supernodes.

The MoDa placement rule confines each expert-parallel group to one
supernode so token alltoalls ride the fast intra links. This ablation
measures the same training program with the rank->node mapping permuted
(EP groups strided *across* supernodes) — everything else identical — and
through the analytic model at full scale.
"""

import numpy as np

from repro.models import tiny_config
from repro.network import NetworkModel, sunway_topology
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.utils import format_time

WORLD = 16
SUPERNODE = 4
EP = 4
CFG = tiny_config(num_experts=16)


def _network(strided: bool) -> NetworkModel:
    topo = sunway_topology(WORLD, supernode_size=SUPERNODE)
    if not strided:
        return NetworkModel(topology=topo)
    num_groups = WORLD // SUPERNODE

    def node_of_rank(rank: int) -> int:
        # Consecutive ranks land in *different* supernodes (round-robin),
        # so every EP group of 4 spans all 4 supernodes.
        return (rank % num_groups) * SUPERNODE + rank // num_groups

    return NetworkModel(topology=topo, node_of_rank=node_of_rank)


def _measure(strided: bool):
    return run_distributed_training(
        TrainingRunConfig(
            model=CFG, world_size=WORLD, ep_size=EP, num_steps=3,
            batch_size=2, seq_len=8,
            alltoall_algorithm="flat",  # isolate pure placement effects
            model_compute_time=False,
        ),
        network=_network(strided),
    )


def test_f9_placement_measured(benchmark, report):
    def run():
        inside = _measure(strided=False)
        across = _measure(strided=True)
        return [
            {
                "placement": "EP inside supernode (MoDa rule)",
                "comm_per_step": format_time(inside.step_time),
                "seconds": inside.step_time,
            },
            {
                "placement": "EP across supernodes (strided)",
                "comm_per_step": format_time(across.step_time),
                "seconds": across.step_time,
            },
        ], inside.losses, across.losses

    rows, l_in, l_across = benchmark.pedantic(run, rounds=1, iterations=1)
    report("f9_placement", "F9: EP-group placement ablation (16 ranks)", rows)

    # Shape: confining EP groups to supernodes is faster; numerics equal.
    assert rows[0]["seconds"] < rows[1]["seconds"]
    assert np.allclose(l_in, l_across, atol=1e-5)


def test_f9_placement_projected(benchmark, report):
    """Same ablation through the analytic model at 4096 nodes."""
    from repro.models import bagualu_14_5t
    from repro.perf import ParallelPlan, StepModel
    from repro.hardware import sunway_machine

    cfg = bagualu_14_5t()
    nodes = 4096
    topo = sunway_topology(nodes, supernode_size=256)
    machine = sunway_machine(nodes)

    def run():
        rows = []
        for label, mapping in [
            ("inside supernode", None),
            (
                "across supernodes",
                lambda r: (r % 16) * 256 + r // 16,
            ),
        ]:
            net = NetworkModel(topology=topo, node_of_rank=mapping)
            sm = StepModel(cfg, machine, net)
            plan = ParallelPlan(num_nodes=nodes, ep_size=256, micro_batch=8,
                                seq_len=2048)
            bd = sm.step_breakdown(plan)
            rows.append(
                {
                    "placement": label,
                    "alltoall": format_time(bd.alltoall),
                    "step_total": format_time(bd.total),
                    "seconds": bd.alltoall,
                }
            )
        return rows

    rows = benchmark(run)
    report("f9_projected", "F9b: projected placement effect (4096 nodes, ep=256)", rows)
    assert rows[0]["seconds"] < rows[1]["seconds"]
