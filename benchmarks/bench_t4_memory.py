"""T4 — per-node memory under MoDa vs replication, with ZeRO sharding.

Paper claim: brain-scale models only fit because experts are sharded
across the machine (replication would need ~30 TB/node against a 96 GiB
budget) and optimizer state is the next wall, addressed by sharding it
across data-parallel peers (ZeRO-1).
"""

import numpy as np

from repro.hardware import SUNWAY_NODE, sunway_machine
from repro.models import BRAIN_SCALE_CONFIGS, bagualu_14_5t
from repro.perf import ParallelPlan, node_memory
from repro.utils import format_bytes

NODES = 96_000
NODE_BUDGET = SUNWAY_NODE.memory_bytes


def test_t4_memory_breakdown(benchmark, report):
    cfg = bagualu_14_5t()
    plan = ParallelPlan(num_nodes=NODES, ep_size=NODES, micro_batch=1, seq_len=2048)

    def rows():
        out = []
        for label, replicate, zero in [
            ("replicated experts", True, 1),
            ("MoDa sharded", False, 1),
            ("MoDa + ZeRO-8", False, 8),
            ("MoDa + ZeRO-64", False, 64),
        ]:
            p = ParallelPlan(
                num_nodes=NODES, ep_size=NODES, micro_batch=1, seq_len=2048,
                zero_shards=zero,
            )
            mem = node_memory(cfg, p, replicate_experts=replicate)
            out.append(
                {
                    "layout": label,
                    "params": format_bytes(mem.params),
                    "grads": format_bytes(mem.gradients),
                    "optimizer": format_bytes(mem.optimizer_state),
                    "activations": format_bytes(mem.activations),
                    "total": format_bytes(mem.total),
                    "fits_96GiB": mem.total <= NODE_BUDGET,
                    "_total": mem.total,
                }
            )
        return out

    data = benchmark(rows)
    report("t4_memory", "T4: per-node memory at 96,000 nodes (14.5T model)", [
        {k: v for k, v in r.items() if k != "_total"} for r in data
    ])

    by = {r["layout"]: r for r in data}
    assert not by["replicated experts"]["fits_96GiB"]
    assert by["MoDa + ZeRO-64"]["fits_96GiB"]
    assert by["MoDa sharded"]["_total"] < by["replicated experts"]["_total"] / 100


def test_t4_all_brain_scale_configs_fit_with_sharding(benchmark, report):
    def rows():
        out = []
        for label, factory in BRAIN_SCALE_CONFIGS.items():
            cfg = factory()
            # Largest EP width that divides the machine and leaves no rank
            # idle (the 1.93T model has fewer expert instances than nodes).
            instances = cfg.num_moe_layers * cfg.num_experts
            ep = NODES
            while ep > instances or NODES % ep != 0:
                ep //= 2
            plan = ParallelPlan(
                num_nodes=NODES, ep_size=ep, micro_batch=1, seq_len=2048,
                zero_shards=64,
            )
            mem = node_memory(cfg, plan)
            out.append(
                {
                    "model": cfg.name,
                    "node_total": format_bytes(mem.total),
                    "fits_96GiB": mem.total <= NODE_BUDGET,
                }
            )
        return out

    data = benchmark(rows)
    report("t4_all_configs", "T4b: brain-scale configs per-node memory (MoDa+ZeRO-64)", data)
    assert all(r["fits_96GiB"] for r in data)


def test_t4_functional_zero_state_shrinks(benchmark, report):
    """Functional check: the implemented ZeRO optimizer's state really
    shrinks with the sharding degree (not just the analytic model)."""
    from repro.models import build_model, tiny_config
    from repro.parallel import ZeroAdamW
    from repro.simmpi import run_spmd

    def measure():
        def program(comm):
            model = build_model(tiny_config(), seed=0)
            opt = ZeroAdamW(model.parameters(), comm, lr=1e-3)
            return opt.optimizer_state_bytes()

        rows = []
        for ranks in (1, 2, 4, 8):
            per_rank = run_spmd(program, ranks).returns
            rows.append(
                {
                    "dp_ranks": ranks,
                    "state_bytes_per_rank(max)": max(per_rank),
                    "state_bytes_total": sum(per_rank),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("t4_functional", "T4c: measured ZeRO-1 optimizer state vs ranks", rows)

    totals = {r["dp_ranks"]: r for r in rows}
    assert totals[8]["state_bytes_per_rank(max)"] <= totals[1]["state_bytes_per_rank(max)"] // 8 + 16
    base = totals[1]["state_bytes_total"]
    assert all(abs(r["state_bytes_total"] - base) <= 8 for r in rows)
