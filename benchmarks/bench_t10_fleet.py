"""T10 (extension) — fault-tolerant serving fleet under injected faults.

Two tables on the virtual clock:

* **goodput vs MTBF** — replica counts {1, 2, 3} swept over per-replica
  mean-time-between-failures expressed as multiples of the healthy
  single-replica makespan. The acceptance bar: at every fault rate a
  fleet of >= 2 replicas beats the single replica on goodput (completed
  decode tokens per virtual second of fleet makespan), and *no request
  is ever silently lost* — each one completes or is explicitly
  evicted/shed with a reason.
* **shed fraction vs offered load** — a four-tier workload (tier 0 is the
  premium 25%) pushed past the calibrated sustainable arrival rate with
  admission control shedding/preempting tiers >= 1. The bar: at 2x the
  sustainable rate, premium (tier-0) TTFT p95 stays within 1.5x of the
  uncontended value and no premium request is lost, with the degraded
  fraction reported per class.

Run standalone as ``python benchmarks/bench_t10_fleet.py --smoke [--out F]``
for a seconds-scale CI smoke; ``--out`` writes a deterministic fleet
report (CI runs it twice and byte-compares).
"""

from repro.models import small_config
from repro.serve import FleetConfig, ServeConfig, run_fleet_serving, run_serving

CFG = small_config(vocab_size=256)
WORLD = 2
REQUESTS = 24
MAX_NEW = 16

#: MTBF grid, as multiples of the healthy single-replica makespan.
MTBF_MULTIPLES = (0.8, 1.2, 1.6)
REPLICAS = (1, 2, 3)
TTFT_DEGRADATION_CAP = 1.5

_US = 1e6  # virtual seconds -> microseconds for readable cells


def _serve_cfg(**overrides) -> ServeConfig:
    base = dict(
        model=CFG, ep_size=WORLD, num_requests=REQUESTS, prompt_len=8,
        prompt_len_max=16, max_new_tokens=MAX_NEW, max_batch_size=4, seed=0,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _fleet_cfg(scfg, replicas, mtbf):
    # Backoff on the serving timescale (the supervisor's 5 s default is a
    # training-relaunch number; a replica restart is ~a makespan).
    return FleetConfig(
        serve=scfg, replicas=replicas, mtbf=mtbf, retry_max=8,
        backoff_base=2e-4, backoff_cap=2e-3,
    )


def _accounted(fleet, n=REQUESTS) -> bool:
    """Zero silent loss: every rid terminal, with a reason if not done."""
    recs = fleet.requests
    return (
        sorted(r["rid"] for r in recs) == list(range(n))
        and all(r["state"] in ("done", "evicted", "shed") for r in recs)
        and all(r["state"] == "done" or r["reason"] for r in recs)
    )


def test_t10_fleet(benchmark, report):
    def measure():
        healthy = run_serving(_serve_cfg())
        makespan = healthy.simulated_time

        goodput_rows = []
        for mult in MTBF_MULTIPLES:
            mtbf = mult * makespan
            for replicas in REPLICAS:
                fleet = run_fleet_serving(
                    _fleet_cfg(_serve_cfg(), replicas, mtbf)
                )
                goodput_rows.append({
                    "mtbf_x_makespan": mult,
                    "replicas": replicas,
                    "completed": fleet.completed,
                    "evicted": fleet.evicted,
                    "crashes": fleet.crashes,
                    "retries": fleet.retries,
                    "makespan_us": fleet.simulated_time * _US,
                    "goodput_tok_s": fleet.goodput,
                    "accounted": _accounted(fleet),
                })

        # Offered-load regime: calibrate the sustainable arrival rate from
        # healthy throughput, then push 2x through tiered admission
        # control (tier 0 is the premium 25%; tiers 1-3 shed/preempt).
        sustainable = healthy.throughput / MAX_NEW  # requests / virtual s
        shed_rows = []
        tiered = dict(
            num_tiers=4, shed_tier=1, queue_depth=2 * 4, num_requests=48
        )
        for label, rate in (
            ("0.25x", 0.25 * sustainable),
            ("1x", sustainable),
            ("2x", 2.0 * sustainable),
        ):
            res = run_serving(_serve_cfg(arrival_rate=rate, **tiered))
            premium = [r for r in res.requests if r["tier"] == 0]
            rest = [r for r in res.requests if r["tier"] >= 1]
            ttfts = sorted(r["ttft"] for r in premium
                           if r["state"] == "done" and r["ttft"] is not None)
            p95 = (
                ttfts[min(len(ttfts) - 1, int(0.95 * len(ttfts)))]
                if ttfts else 0.0
            )
            shed_rows.append({
                "offered": label,
                "arrival_req_s": rate,
                "completed": res.completed,
                "premium_done": sum(r["state"] == "done" for r in premium),
                "premium_total": len(premium),
                "shed_frac_premium": (
                    sum(r["state"] == "shed" for r in premium)
                    / max(1, len(premium))
                ),
                "shed_frac_rest": (
                    sum(r["state"] == "shed" for r in rest)
                    / max(1, len(rest))
                ),
                "preempted": sum(r["reason"] == "preempt" for r in rest),
                "premium_ttft_p95_us": p95 * _US,
            })
        return goodput_rows, shed_rows

    goodput_rows, shed_rows = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    report(
        "t10_goodput",
        f"T10: fleet goodput vs per-replica MTBF ({REQUESTS} reqs x "
        f"{MAX_NEW} new tokens, {WORLD} EP ranks per replica)",
        goodput_rows,
    )
    report(
        "t10_shed",
        "T10: tiered admission control vs offered load (4-tier workload, "
        "premium tier 0, shed_tier=1)",
        shed_rows,
    )

    # Zero silent loss at every fault rate and fleet size.
    assert all(r["accounted"] for r in goodput_rows)
    # The acceptance bar: >= 2 replicas beat 1 at every fault rate.
    for mult in MTBF_MULTIPLES:
        rows = {r["replicas"]: r for r in goodput_rows
                if r["mtbf_x_makespan"] == mult}
        assert rows[2]["goodput_tok_s"] > rows[1]["goodput_tok_s"], mult
        assert rows[3]["goodput_tok_s"] > rows[1]["goodput_tok_s"], mult

    # Degradation only ever touches the sheddable tiers...
    assert all(r["shed_frac_premium"] == 0.0 for r in shed_rows)
    assert all(r["premium_done"] == r["premium_total"] for r in shed_rows)
    # ...bites under overload...
    assert shed_rows[-1]["shed_frac_rest"] > 0.0
    # ...and keeps premium TTFT within the degradation cap of uncontended.
    base_p95 = shed_rows[0]["premium_ttft_p95_us"]
    assert base_p95 > 0.0
    assert (
        shed_rows[-1]["premium_ttft_p95_us"]
        <= TTFT_DEGRADATION_CAP * base_p95
    )
    # The uncontended point itself sheds nothing.
    assert shed_rows[0]["shed_frac_rest"] == 0.0


def _fleet_report(fleet) -> str:
    """Deterministic one-fleet text report (CI byte-compares two runs)."""
    lines = ["# T10 fleet smoke report", ""]
    for key, value in sorted(fleet.metrics_record().items()):
        if isinstance(value, float):
            lines.append(f"{key}: {value:.9g}")
        else:
            lines.append(f"{key}: {value}")
    lines.append("")
    for rec in fleet.requests:
        lines.append(
            f"rid={rec['rid']} tier={rec['tier']} state={rec['state']} "
            f"reason={rec['reason']} attempts={rec['attempts']} "
            f"tokens={rec['tokens']}"
        )
    return "\n".join(lines) + "\n"


def _smoke(out: str | None) -> int:
    """Seconds-scale end-to-end check for CI (returns a process rc)."""
    scfg = _serve_cfg(
        num_requests=8, max_new_tokens=8, prompt_len=4, prompt_len_max=8,
    )
    base = run_serving(scfg)
    one = run_fleet_serving(FleetConfig(serve=scfg, replicas=1))
    faulty = run_fleet_serving(
        _fleet_cfg(scfg, replicas=2, mtbf=5 * base.simulated_time)
    )
    base_tokens = {r["rid"]: r["tokens"] for r in base.requests}
    fleet_tokens = {r["rid"]: r["tokens"] for r in one.requests}
    faulty_tokens = {
        r["rid"]: r["tokens"] for r in faulty.requests if r["state"] == "done"
    }
    ok = (
        fleet_tokens == base_tokens
        and one.simulated_time == base.simulated_time
        and faulty.crashes > 0
        and faulty.completed == 8
        and _accounted(faulty, n=8)
        and all(faulty_tokens[rid] == base_tokens[rid]
                for rid in faulty_tokens)
    )
    print(
        f"t10 smoke: fleet-of-1 tokens "
        f"{'match' if fleet_tokens == base_tokens else 'MISMATCH'}; "
        f"faulty fleet {faulty.completed}/8 completed, "
        f"{faulty.crashes} crashes, {faulty.retries} retries, "
        f"accounted={'yes' if _accounted(faulty, n=8) else 'NO'}"
    )
    if out:
        with open(out, "w") as fh:
            fh.write(_fleet_report(faulty))
        print(f"t10 smoke: report -> {out}")
    return 0 if ok else 1


if __name__ == "__main__":
    import argparse
    import sys

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="fast end-to-end check (CI)")
    ap.add_argument("--out", default=None,
                    help="write the smoke fleet report here")
    ns = ap.parse_args()
    if ns.smoke:
        sys.exit(_smoke(ns.out))
    # Full table without pytest: reuse the conftest formatting.
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    from conftest import OUT_DIR, format_table

    class _Bench:
        @staticmethod
        def pedantic(fn, **kw):
            return fn()

    def _report(name, title, rows):
        text = format_table(title, rows)
        print(text)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text)

    test_t10_fleet(_Bench(), _report)
