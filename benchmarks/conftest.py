"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the reconstructed
BaGuaLu evaluation (see DESIGN.md section 4). Besides pytest-benchmark's
timing, every bench emits its paper-style rows through the ``report``
fixture, which prints them and persists them under ``benchmarks/out/`` so
EXPERIMENTS.md can cite the exact numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def format_table(title: str, rows: list[dict]) -> str:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        return f"== {title} ==\n(no rows)\n"
    cols = list(rows[0].keys())
    cells = [[_fmt(r[c]) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    lines = [f"== {title} =="]
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:,.3f}"
    return str(v)


@pytest.fixture
def report():
    """Print + persist a paper-style table: ``report(name, title, rows)``."""

    def _report(name: str, title: str, rows: list[dict]) -> None:
        text = format_table(title, rows)
        print("\n" + text)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text)

    return _report
