"""F11 (design space) — how wide should expert-parallel groups be?

Wider EP groups shrink per-node expert memory (more shards) but push the
token alltoall across slower links and shrink the expert-gradient
replica count. BaGuaLu chose machine-wide EP; this sweep shows why: at
brain scale the memory constraint dominates, and the hierarchical
alltoall keeps the communication cost of width nearly flat.
"""

from repro.hardware import SUNWAY_NODE, sunway_machine
from repro.models import bagualu_14_5t
from repro.network import sunway_network
from repro.perf import ParallelPlan, StepModel, node_memory
from repro.utils import format_bytes, format_time

NODES = 16_384
CFG = bagualu_14_5t()


def test_f11_ep_width_sweep(benchmark, report):
    machine = sunway_machine(NODES)
    sm = StepModel(CFG, machine, sunway_network(NODES))

    def sweep():
        rows = []
        for ep in (256, 1024, 4096, 16_384):
            plan = ParallelPlan(
                num_nodes=NODES, ep_size=ep, micro_batch=8, seq_len=2048,
                zero_shards=64,
            )
            bd = sm.step_breakdown(plan)
            mem = node_memory(CFG, plan)
            rows.append(
                {
                    "ep_width": ep,
                    "expert_replicas": NODES // ep,
                    "alltoall": format_time(bd.alltoall),
                    "expert_allreduce": format_time(bd.expert_allreduce),
                    "step_total": format_time(bd.total),
                    "node_memory": format_bytes(mem.total),
                    "fits_96GiB": mem.total <= SUNWAY_NODE.memory_bytes,
                    "_mem": mem.total,
                    "_step": bd.total,
                }
            )
        return rows

    rows = benchmark(sweep)
    report("f11_ep_width", f"F11: EP-group width at {NODES:,} nodes (14.5T)", [
        {k: v for k, v in r.items() if not k.startswith("_")} for r in rows
    ])

    # Memory falls monotonically with EP width...
    mems = [r["_mem"] for r in rows]
    assert all(a > b for a, b in zip(mems, mems[1:]))
    # ...and only the widest configurations fit the node budget.
    assert not rows[0]["fits_96GiB"]
    assert rows[-1]["fits_96GiB"]
    # The step-time cost of going machine-wide is modest (<2x vs narrow).
    assert rows[-1]["_step"] < rows[0]["_step"] * 2.0


def test_f11_narrow_ep_needs_more_expert_sync(benchmark, report):
    """Narrow EP pays in expert-gradient allreduce volume: each shard has
    more replicas *and* more parameters per rank."""
    machine = sunway_machine(NODES)
    sm = StepModel(CFG, machine, sunway_network(NODES))

    def measure():
        rows = []
        for ep in (256, 16_384):
            plan = ParallelPlan(num_nodes=NODES, ep_size=ep, micro_batch=8,
                                seq_len=2048)
            bd = sm.step_breakdown(plan)
            rows.append({
                "ep_width": ep,
                "expert_allreduce_s": bd.expert_allreduce,
            })
        return rows

    rows = benchmark(measure)
    report("f11_expert_sync", "F11b: expert-gradient sync vs EP width", rows)
    assert rows[0]["expert_allreduce_s"] > rows[1]["expert_allreduce_s"]
