"""The supported public surface of :mod:`repro`, in one place.

``repro.api`` is the curated facade: everything a user script needs to
build models, launch measured training (plain / elastic) or serving runs,
and log the results — re-exported from its canonical home with an explicit
``__all__``. Importing this module is guaranteed warning-free (CI enforces
it); the historical root-level conveniences (``repro.FaultModel`` etc.)
still resolve but emit a :class:`DeprecationWarning` naming the path here.

Deep imports from the implementing subpackages keep working and stay the
right choice for internals (e.g. :class:`repro.parallel.ep.DistributedMoELayer`);
this module only promises the *stable* entry points::

    from repro.api import ServeConfig, run_serving, tiny_config
    result = run_serving(ServeConfig(model=tiny_config(), ep_size=4))
"""

from __future__ import annotations

# Models and configuration -------------------------------------------------
from repro.models import (
    BRAIN_SCALE_CONFIGS,
    ModelConfig,
    MoELanguageModel,
    build_model,
    generate,
    small_config,
    tiny_config,
)

# Distributed training: strategy registry + measured runner ----------------
from repro.layout import ParallelLayout
from repro.parallel import (
    TrainingRunConfig,
    TrainingRunResult,
    available_strategies,
    get_strategy,
    register_strategy,
    run_distributed_training,
)

# Elastic fault-tolerant training ------------------------------------------
from repro.resilience import (
    BackoffPolicy,
    ElasticRunConfig,
    ElasticRunResult,
    Supervisor,
    run_elastic_training,
)

# Serving: KV cache + continuous batching on EP ranks, replicated fleet -----
from repro.serve import (
    Autoscaler,
    AutoscalerConfig,
    ContinuousBatchScheduler,
    FleetConfig,
    FleetResult,
    KVCache,
    ReplicaRouter,
    Request,
    ServeConfig,
    ServeResult,
    run_fleet_serving,
    run_sequential_baseline,
    run_serving,
)

# Auto-parallelism planner: layout search + verification + reports ---------
from repro.plan import (
    PlanCandidate,
    PlannerConfig,
    PlanResult,
    build_plan_report,
    generate_plan_report,
    plan_layouts,
    search_plans,
    verify_plans,
)

# Simulated substrate -------------------------------------------------------
from repro.hardware import sunway_machine
from repro.network import CLUSTER_PRESETS, ClusterPreset, cluster_preset, sunway_network
from repro.simmpi import FaultModel, FaultPlan, FlakyLink, RunContext, run_spmd

# Metrics -------------------------------------------------------------------
from repro.train.metrics import LatencyStats, MetricsLogger, read_jsonl

# Observability: registry, profilers, flight recorder, reports --------------
from repro.obs import (
    BurnRateWindow,
    CommProfile,
    FlightRecorder,
    MetricRegistry,
    RouterTelemetry,
    SlidingWindow,
    SLOMonitor,
    SLOObjective,
    Span,
    Tracer,
    build_report,
    collect_run_records,
    generate_run_report,
    profile_comm,
    slo_report,
    span_coverage,
    to_prometheus,
    tumbling_windows,
)

__all__ = [
    # models / configs
    "BRAIN_SCALE_CONFIGS",
    "ModelConfig",
    "MoELanguageModel",
    "build_model",
    "generate",
    "small_config",
    "tiny_config",
    # training
    "ParallelLayout",
    "TrainingRunConfig",
    "TrainingRunResult",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "run_distributed_training",
    # elastic
    "BackoffPolicy",
    "ElasticRunConfig",
    "ElasticRunResult",
    "Supervisor",
    "run_elastic_training",
    # serving
    "Autoscaler",
    "AutoscalerConfig",
    "ContinuousBatchScheduler",
    "FleetConfig",
    "FleetResult",
    "KVCache",
    "ReplicaRouter",
    "Request",
    "ServeConfig",
    "ServeResult",
    "run_fleet_serving",
    "run_sequential_baseline",
    "run_serving",
    # planner
    "PlannerConfig",
    "PlanCandidate",
    "PlanResult",
    "plan_layouts",
    "search_plans",
    "verify_plans",
    "build_plan_report",
    "generate_plan_report",
    # substrate
    "CLUSTER_PRESETS",
    "ClusterPreset",
    "cluster_preset",
    "FaultModel",
    "FaultPlan",
    "FlakyLink",
    "RunContext",
    "run_spmd",
    "sunway_machine",
    "sunway_network",
    # metrics
    "LatencyStats",
    "MetricsLogger",
    "read_jsonl",
    # observability
    "BurnRateWindow",
    "CommProfile",
    "FlightRecorder",
    "MetricRegistry",
    "RouterTelemetry",
    "SlidingWindow",
    "SLOMonitor",
    "SLOObjective",
    "Span",
    "Tracer",
    "build_report",
    "collect_run_records",
    "generate_run_report",
    "profile_comm",
    "slo_report",
    "span_coverage",
    "to_prometheus",
    "tumbling_windows",
]
