"""Span-based tracing: parent-child causality on the virtual clock.

The trace stream (:mod:`repro.simmpi.trace`) answers "what did each rank
do when"; the metric registry answers "how much, in total". Neither
answers the serving question "where did *this request's* latency go" —
that needs causal, per-request structure: a root span per request whose
children cover queue wait, admission, prefill, decode, every retry
attempt, every hedge. This module supplies that structure:

- :class:`Span` — one named interval (or instant) in virtual seconds,
  with a parent link and free-form attributes;
- :class:`Tracer` — an append-only span store with deterministic integer
  ids, tree navigation, session absorption (clock-offset folding, the
  same contract as :meth:`RunContext.absorb`), a byte-stable JSON dump,
  and Chrome-trace export (``ph=X`` slices plus ``s``/``f`` flow events
  binding parents to children);
- :func:`span_coverage` — the accounting invariant: the on-path children
  of a root span partition its duration into covered seconds plus
  *explicit* gaps, so every second of request latency is attributed.

Like the metric registry, the tracer follows the null-object pattern:
an unobserved :class:`~repro.simmpi.RunContext` carries
:data:`NULL_TRACER`, whose methods are empty — instrumented code never
branches, and tracing-off runs are bit-identical to pre-span builds.

All timestamps are *virtual* seconds (the modelled machine's clock), so
span trees are reproducible bit for bit across hosts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigError

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_coverage",
]

#: Span kinds that never count toward a root's latency accounting —
#: they run *concurrently* with the critical path (a hedge races its
#: primary) rather than stacking onto it.
OFF_PATH_KINDS = frozenset({"hedge"})


@dataclass
class Span:
    """One causally-linked interval on the virtual timeline.

    ``t_end`` is None while the span is open; :meth:`Tracer.end` closes
    it. ``kind`` is a coarse category (``request`` / ``queue`` /
    ``prefill`` / ``decode`` / ``retry`` / ``hedge`` / ``autoscale`` /
    ``launch`` / ``backoff`` ...) used for filtering and for the
    latency-accounting rules; ``attrs`` carries everything else.
    """

    span_id: int
    name: str
    t_start: float
    t_end: float | None = None
    parent_id: int | None = None
    kind: str = "span"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Closed duration in virtual seconds (0.0 while still open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    @property
    def closed(self) -> bool:
        return self.t_end is not None

    @property
    def on_path(self) -> bool:
        """Does this span count toward its root's latency accounting?"""
        return self.kind not in OFF_PATH_KINDS and not self.attrs.get("off_path", False)

    def record(self) -> dict[str, Any]:
        """Flat dict for the deterministic JSON dump (sorted attrs)."""
        rec: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
        }
        for key in sorted(self.attrs):
            rec[f"attr_{key}"] = self.attrs[key]
        return rec


class Tracer:
    """Append-only span store with deterministic ids and tree navigation.

    Ids are assigned in creation order, so two same-seed runs produce
    identical dumps. The tracer is driver-side bookkeeping (no locks
    needed: spans are recorded by the single supervising thread, never
    by rank threads).
    """

    enabled = True

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._children: dict[int, list[int]] = {}

    # -- recording ------------------------------------------------------ #

    def _parent_id(self, parent: "Span | int | None") -> int | None:
        if parent is None:
            return None
        pid = parent.span_id if isinstance(parent, Span) else int(parent)
        if not 0 <= pid < len(self._spans):
            raise ConfigError(f"unknown parent span id {pid}")
        return pid

    def begin(
        self,
        name: str,
        t: float,
        parent: "Span | int | None" = None,
        kind: str = "span",
        **attrs: Any,
    ) -> Span:
        """Open a span at virtual time ``t``; close it with :meth:`end`."""
        span = Span(
            span_id=len(self._spans),
            name=name,
            t_start=float(t),
            parent_id=self._parent_id(parent),
            kind=kind,
            attrs=dict(attrs),
        )
        self._spans.append(span)
        if span.parent_id is not None:
            self._children.setdefault(span.parent_id, []).append(span.span_id)
        return span

    def end(self, span: Span, t: float, **attrs: Any) -> Span:
        """Close an open span at virtual time ``t`` (>= its start)."""
        if span.t_end is not None:
            raise ConfigError(f"span {span.span_id} ({span.name!r}) already closed")
        if t < span.t_start:
            raise ConfigError(
                f"span {span.name!r} cannot end at {t} before start {span.t_start}"
            )
        span.t_end = float(t)
        span.attrs.update(attrs)
        return span

    def add(
        self,
        name: str,
        t_start: float,
        t_end: float,
        parent: "Span | int | None" = None,
        kind: str = "span",
        **attrs: Any,
    ) -> Span:
        """Record an already-closed span (the common driver-side case)."""
        span = self.begin(name, t_start, parent=parent, kind=kind, **attrs)
        return self.end(span, t_end)

    def instant(
        self,
        name: str,
        t: float,
        parent: "Span | int | None" = None,
        kind: str = "span",
        **attrs: Any,
    ) -> Span:
        """A zero-duration marker span (admission decisions, scale events)."""
        return self.add(name, t, t, parent=parent, kind=kind, **attrs)

    # -- navigation ----------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def spans(self) -> list[Span]:
        return list(self._spans)

    def roots(self) -> list[Span]:
        """Parentless spans, in creation order."""
        return [s for s in self._spans if s.parent_id is None]

    def children(self, span: "Span | int") -> list[Span]:
        """Direct children of a span, in creation order."""
        pid = span.span_id if isinstance(span, Span) else int(span)
        return [self._spans[i] for i in self._children.get(pid, [])]

    def subtree(self, span: "Span | int") -> list[Span]:
        """The span plus every descendant, depth-first in creation order."""
        root = self._spans[span.span_id if isinstance(span, Span) else int(span)]
        out = [root]
        for child in self.children(root):
            out.extend(self.subtree(child))
        return out

    def find(self, name: str | None = None, kind: str | None = None) -> list[Span]:
        """Spans matching a name and/or kind, in creation order."""
        return [
            s for s in self._spans
            if (name is None or s.name == name) and (kind is None or s.kind == kind)
        ]

    # -- session aggregation -------------------------------------------- #

    def absorb(self, other: "Tracer | NullTracer", clock_offset: float = 0.0) -> None:
        """Fold another tracer in, shifting timestamps by ``clock_offset``.

        Span ids are re-assigned past this tracer's current tail with
        parent links preserved, so absorbed trees stay intact.
        """
        if not getattr(other, "enabled", False):
            return
        base = len(self._spans)
        for span in other._spans:  # type: ignore[union-attr]
            clone = Span(
                span_id=base + span.span_id,
                name=span.name,
                t_start=span.t_start + clock_offset,
                t_end=None if span.t_end is None else span.t_end + clock_offset,
                parent_id=(
                    None if span.parent_id is None else base + span.parent_id
                ),
                kind=span.kind,
                attrs=dict(span.attrs),
            )
            self._spans.append(clone)
            if clone.parent_id is not None:
                self._children.setdefault(clone.parent_id, []).append(clone.span_id)

    # -- export --------------------------------------------------------- #

    def records(self) -> list[dict[str, Any]]:
        """One flat dict per span, in deterministic (creation) order."""
        return [s.record() for s in self._spans]

    def write_json(self, path: str | Path) -> Path:
        """Byte-stable JSON span dump (``{"spans": [...]}``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"spans": self.records()}, sort_keys=True))
        return path

    def chrome_events(self, pid: int = 1) -> list[dict[str, Any]]:
        """Chrome-trace records: one ``ph=X`` slice per span plus flow
        events (``ph=s``/``ph=f``) binding each parent to each child.

        Each root tree gets its own ``tid`` lane (the root's span id),
        so request trees render side by side; nesting within a lane
        comes from timestamp containment, the trace viewer's native
        rule. Virtual seconds scale to microseconds.
        """
        if not self._spans:
            return []
        tid_of: dict[int, int] = {}
        for span in self._spans:
            if span.parent_id is None:
                tid_of[span.span_id] = span.span_id
            else:
                tid_of[span.span_id] = tid_of[span.parent_id]
        out: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": "spans"},
            }
        ]
        for root in self.roots():
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": root.span_id,
                    "args": {"name": f"{root.name} #{root.span_id}"},
                }
            )
        for span in self._spans:
            end = span.t_end if span.t_end is not None else span.t_start
            out.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": span.t_start * 1e6,
                    "dur": max((end - span.t_start) * 1e6, 0.001),
                    "pid": pid,
                    "tid": tid_of[span.span_id],
                    "args": {k: span.attrs[k] for k in sorted(span.attrs)},
                }
            )
            if span.parent_id is not None:
                parent = self._spans[span.parent_id]
                out.append(
                    {
                        "name": "causality",
                        "cat": span.kind,
                        "ph": "s",
                        "id": span.span_id,
                        "ts": parent.t_start * 1e6,
                        "pid": pid,
                        "tid": tid_of[parent.span_id],
                    }
                )
                out.append(
                    {
                        "name": "causality",
                        "cat": span.kind,
                        "ph": "f",
                        "bp": "e",
                        "id": span.span_id,
                        "ts": span.t_start * 1e6,
                        "pid": pid,
                        "tid": tid_of[span.span_id],
                    }
                )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer({len(self._spans)} spans, {len(self.roots())} roots)"


class NullTracer:
    """The disabled tracer: every method is a no-op (shared instance).

    Instrumented drivers call ``context.spans.add(...)`` unconditionally;
    with tracing off the call costs an attribute lookup and an empty
    method — and records nothing, so tracing-off output is bit-identical
    to builds that predate spans.
    """

    enabled = False

    _NULL_SPAN = Span(span_id=-1, name="", t_start=0.0, t_end=0.0, kind="null")

    def begin(self, name: str, t: float, parent: Any = None,
              kind: str = "span", **attrs: Any) -> Span:
        return self._NULL_SPAN

    def end(self, span: Span, t: float, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def add(self, name: str, t_start: float, t_end: float, parent: Any = None,
            kind: str = "span", **attrs: Any) -> Span:
        return self._NULL_SPAN

    def instant(self, name: str, t: float, parent: Any = None,
                kind: str = "span", **attrs: Any) -> Span:
        return self._NULL_SPAN

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())

    @property
    def spans(self) -> list[Span]:
        return []

    def roots(self) -> list[Span]:
        return []

    def children(self, span: Any) -> list[Span]:
        return []

    def subtree(self, span: Any) -> list[Span]:
        return []

    def find(self, name: str | None = None, kind: str | None = None) -> list[Span]:
        return []

    def absorb(self, other: Any, clock_offset: float = 0.0) -> None:
        pass

    def records(self) -> list[dict[str, Any]]:
        return []

    def chrome_events(self, pid: int = 1) -> list[dict[str, Any]]:
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: The process-wide disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


def span_coverage(tracer: Tracer, root: Span | int) -> dict[str, Any]:
    """Account a root span's duration to its on-path children and gaps.

    The invariant every request span tree satisfies: the root's direct
    *on-path* children (queue / prefill / decode / retry — anything but
    concurrent hedges) are non-overlapping intervals inside the root, and

        sum(child durations) + sum(gap durations) == root duration

    with every gap listed explicitly as a ``(t_start, t_end)`` interval.
    Raises :class:`~repro.errors.ConfigError` when children overlap or
    escape the root — a malformed tree, not a measurement.
    """
    root_span = tracer._spans[root.span_id if isinstance(root, Span) else int(root)]
    if root_span.t_end is None:
        raise ConfigError(f"root span {root_span.span_id} is still open")
    kids = sorted(
        (s for s in tracer.children(root_span) if s.on_path and s.closed),
        key=lambda s: (s.t_start, s.span_id),
    )
    eps = 1e-12 * max(1.0, abs(root_span.t_end))
    cursor = root_span.t_start
    covered = 0.0
    gaps: list[tuple[float, float]] = []
    for child in kids:
        if child.t_start < cursor - eps or child.t_end > root_span.t_end + eps:
            raise ConfigError(
                f"span {child.span_id} ({child.name!r}) [{child.t_start}, "
                f"{child.t_end}] overlaps a sibling or escapes root "
                f"[{root_span.t_start}, {root_span.t_end}]"
            )
        if child.t_start > cursor + eps:
            gaps.append((cursor, child.t_start))
        covered += child.duration
        cursor = max(cursor, child.t_end)
    if root_span.t_end > cursor + eps:
        gaps.append((cursor, root_span.t_end))
    gap_seconds = sum(b - a for a, b in gaps)
    return {
        "root_seconds": root_span.duration,
        "span_seconds": covered,
        "gap_seconds": gap_seconds,
        "gaps": gaps,
        "children": len(kids),
    }
