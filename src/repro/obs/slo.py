"""Declarative SLOs with multi-window burn-rate alerting on virtual time.

An SLO is a target fraction of *good* events — "95% of premium requests
see TTFT under 200 ms". The error budget is the allowed bad fraction
(1 − target); the **burn rate** over a window is how many times faster
than budget the service is consuming it::

    burn = bad_fraction(window) / (1 - target)

Burn 1.0 exactly spends the budget over the objective's horizon; burn
14.4 exhausts a 30-day budget in 2 days. Following SRE practice, each
alert pairs a *long* window (is the burn sustained?) with a *short*
window at ``short_fraction`` of its width (is it still happening?) and
fires only when **both** exceed the threshold — resistant to single
spikes yet fast to resolve once the bleeding stops.

:class:`SLOMonitor` consumes per-request measurements on the virtual
clock (fed by the fleet driver), answers burn rates mid-run (the
autoscaler reads them), and records ``slo_alert`` / ``slo_resolve``
lifecycle events into the :class:`~repro.simmpi.RunContext` when alerts
transition. Everything is deterministic arithmetic on virtual
timestamps, so :func:`slo_report` output is byte-stable across
same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError
from repro.obs.timeseries import SlidingWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.context import RunContext

__all__ = [
    "SLOObjective",
    "BurnRateWindow",
    "SLOMonitor",
    "default_burn_windows",
    "slo_report",
]


@dataclass(frozen=True)
class SLOObjective:
    """One service-level objective over a per-request measurement.

    ``metric`` names what :meth:`SLOMonitor.observe` receives (``ttft``,
    ``latency``, ...); a request is *good* when the measured value is
    <= ``threshold_s`` (and the request completed at all — callers feed
    failures as ``float('inf')``). ``tier`` restricts the objective to
    one SLO class (None = all traffic). ``target`` is the good fraction
    promised, e.g. 0.95.
    """

    name: str
    threshold_s: float
    target: float = 0.95
    metric: str = "ttft"
    tier: int | None = None

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ConfigError(
                f"SLO {self.name!r}: threshold_s must be > 0, got "
                f"{self.threshold_s}"
            )
        if not 0 < self.target < 1:
            raise ConfigError(
                f"SLO {self.name!r}: target must be in (0, 1), got {self.target}"
            )
        if self.tier is not None and self.tier < 0:
            raise ConfigError(
                f"SLO {self.name!r}: tier must be >= 0, got {self.tier}"
            )

    @property
    def budget(self) -> float:
        """Allowed bad fraction (the error budget)."""
        return 1.0 - self.target

    def good(self, value: float) -> bool:
        return value <= self.threshold_s

    def describe(self) -> str:
        scope = "all tiers" if self.tier is None else f"tier {self.tier}"
        return (
            f"{self.name}: {self.metric} <= {self.threshold_s * 1e3:g} ms "
            f"for {self.target:.0%} of {scope}"
        )


@dataclass(frozen=True)
class BurnRateWindow:
    """One long/short window pair of the multi-window alert policy."""

    window_s: float
    threshold: float
    short_fraction: float = 1.0 / 12.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigError(f"window_s must be > 0, got {self.window_s}")
        if self.threshold <= 0:
            raise ConfigError(f"burn threshold must be > 0, got {self.threshold}")
        if not 0 < self.short_fraction <= 1:
            raise ConfigError(
                f"short_fraction must be in (0, 1], got {self.short_fraction}"
            )

    @property
    def short_window_s(self) -> float:
        return self.window_s * self.short_fraction


def default_burn_windows(horizon_s: float) -> tuple[BurnRateWindow, ...]:
    """The classic three-tier policy scaled to an objective horizon.

    Mirrors the SRE workbook's 30-day ladder (1h/14.4x page, 6h/6x
    ticket, 3d/1x notice) proportionally: fast burn pages, medium burn
    tickets, slow burn notices.
    """
    if horizon_s <= 0:
        raise ConfigError(f"horizon_s must be > 0, got {horizon_s}")
    return (
        BurnRateWindow(window_s=horizon_s / 720, threshold=14.4, severity="page"),
        BurnRateWindow(window_s=horizon_s / 120, threshold=6.0, severity="ticket"),
        BurnRateWindow(window_s=horizon_s / 10, threshold=1.0, severity="notice"),
    )


class SLOMonitor:
    """Tracks one objective's burn rates and raises/resolves alerts.

    Feed measurements with :meth:`observe` (virtual-time ordered), then
    call :meth:`evaluate` at decision points; transitions append
    ``slo_alert`` / ``slo_resolve`` events to the context (when given)
    and accumulate in :attr:`alerts` for the report.
    """

    def __init__(
        self,
        objective: SLOObjective,
        windows: tuple[BurnRateWindow, ...] | None = None,
        min_samples: int = 5,
    ):
        if windows is None:
            windows = default_burn_windows(horizon_s=3600.0)
        if not windows:
            raise ConfigError("SLOMonitor needs at least one burn-rate window")
        if min_samples < 1:
            raise ConfigError(f"min_samples must be >= 1, got {min_samples}")
        self.objective = objective
        self.windows = tuple(windows)
        self.min_samples = min_samples
        # One sliding bad-indicator stream per distinct width (long +
        # short windows may coincide across policies).
        widths = {w.window_s for w in self.windows}
        widths |= {w.short_window_s for w in self.windows}
        self._streams = {w: SlidingWindow(w) for w in sorted(widths)}
        self.good_total = 0
        self.bad_total = 0
        #: Indices of currently-firing windows.
        self._active: set[int] = set()
        #: Every fire/resolve transition, in virtual-time order.
        self.alerts: list[dict[str, Any]] = []

    # -- feeding -------------------------------------------------------- #

    def observe(self, t: float, value: float, tier: int | None = None) -> bool:
        """Record one measurement; returns whether it met the objective.

        Measurements outside the objective's tier scope are ignored
        (returns True). Failed requests should be fed ``float('inf')``.
        """
        if self.objective.tier is not None and tier != self.objective.tier:
            return True
        bad = 0.0 if self.objective.good(value) else 1.0
        for stream in self._streams.values():
            stream.observe(t, bad)
        if bad:
            self.bad_total += 1
        else:
            self.good_total += 1
        return not bad

    # -- querying ------------------------------------------------------- #

    @property
    def total(self) -> int:
        return self.good_total + self.bad_total

    def bad_fraction(self, now: float, window_s: float) -> float:
        """Bad fraction over the trailing window (0.0 when empty)."""
        stream = self._streams.get(window_s)
        if stream is None:
            stream = SlidingWindow(window_s)
            self._streams[window_s] = stream
        n = stream.count(now)
        if n == 0:
            return 0.0
        return stream.sum(now) / n

    def burn_rate(self, now: float, window_s: float) -> float:
        """Budget-consumption multiple over the trailing window."""
        return self.bad_fraction(now, window_s) / self.objective.budget

    def firing(self, now: float, window: BurnRateWindow) -> bool:
        """Both the long and the short window exceed the threshold."""
        stream = self._streams[window.window_s]
        if stream.count(now) < self.min_samples:
            return False
        return (
            self.burn_rate(now, window.window_s) > window.threshold
            and self.burn_rate(now, window.short_window_s) > window.threshold
        )

    # -- alert engine --------------------------------------------------- #

    def evaluate(self, now: float, context: "RunContext | None" = None) -> list[dict]:
        """Fire/resolve alerts at virtual time ``now``; returns transitions.

        Each transition dict carries kind (``slo_alert`` / ``slo_resolve``),
        the objective name, window seconds, severity, and the measured
        burn rates. Idempotent while state is unchanged, so calling every
        dispatch round records each episode exactly once.
        """
        transitions: list[dict[str, Any]] = []
        for i, window in enumerate(self.windows):
            now_firing = self.firing(now, window)
            was_firing = i in self._active
            if now_firing == was_firing:
                continue
            kind = "slo_alert" if now_firing else "slo_resolve"
            record = {
                "kind": kind,
                "t": now,
                "slo": self.objective.name,
                "severity": window.severity,
                "window_s": window.window_s,
                "burn_long": self.burn_rate(now, window.window_s),
                "burn_short": self.burn_rate(now, window.short_window_s),
            }
            if now_firing:
                self._active.add(i)
            else:
                self._active.discard(i)
            self.alerts.append(record)
            transitions.append(record)
            if context is not None:
                fields = {k: v for k, v in record.items() if k not in ("kind", "t")}
                context.record_event(kind, t=now, **fields)
                context.spans.instant(
                    f"{kind}:{self.objective.name}", now, kind="slo", **fields
                )
        return transitions

    def summary(self) -> dict[str, Any]:
        """Deterministic flat summary (totals + alert counts)."""
        fired = sum(1 for a in self.alerts if a["kind"] == "slo_alert")
        return {
            "slo": self.objective.name,
            "objective": self.objective.describe(),
            "good": self.good_total,
            "bad": self.bad_total,
            "bad_fraction": (
                self.bad_total / self.total if self.total else 0.0
            ),
            "alerts_fired": fired,
            "alerts_resolved": len(self.alerts) - fired,
        }


def slo_report(monitors: list[SLOMonitor]) -> str:
    """Byte-stable text report over one or more monitors.

    One block per monitor (objective line, totals, every alert
    transition in time order); floats render via ``%.9g`` like the fleet
    report, so two same-seed runs compare equal with ``cmp``.
    """
    lines: list[str] = ["# SLO report"]
    for mon in monitors:
        s = mon.summary()
        lines.append("")
        lines.append(f"## {s['objective']}")
        lines.append(f"good: {s['good']}")
        lines.append(f"bad: {s['bad']}")
        lines.append(f"bad_fraction: {s['bad_fraction']:.9g}")
        lines.append(f"alerts_fired: {s['alerts_fired']}")
        lines.append(f"alerts_resolved: {s['alerts_resolved']}")
        for alert in mon.alerts:
            lines.append(
                f"{alert['kind']} t={alert['t']:.9g} severity={alert['severity']} "
                f"window_s={alert['window_s']:.9g} "
                f"burn_long={alert['burn_long']:.9g} "
                f"burn_short={alert['burn_short']:.9g}"
            )
    return "\n".join(lines) + "\n"
