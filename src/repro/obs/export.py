"""Exporters: Prometheus text exposition, JSONL records, enriched traces.

One registry, three sinks:

- :func:`to_prometheus` renders the standard text exposition format, so a
  node-local scrape target (or a file-based textfile collector) can ship
  the run's metrics into an existing dashboard stack.
- :func:`registry_records` flattens the registry into scalar-only dicts
  for :meth:`~repro.train.metrics.MetricsLogger.log_events` — the same
  JSONL stream the trainers already write, so ``report`` reads one file.
- :func:`write_enriched_trace` upgrades the plain Chrome trace with
  process/thread naming metadata, lifecycle-event instants, and — when
  the context carries spans — a second ``spans`` process of causal
  request/launch trees with flow events, so a recovery session's
  restarts and a fleet's per-request latency breakdowns are visible on
  the Perfetto timeline next to the collectives they interrupted.

All output is deterministic: series are walked in the registry's sorted
order and label sets render pre-sorted.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError
from repro.obs.registry import Histogram, MetricRegistry, NullRegistry
from repro.simmpi.trace import to_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.context import RunContext

__all__ = ["to_prometheus", "registry_records", "write_enriched_trace"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, namespace: str) -> str:
    base = _NAME_OK.sub("_", name)
    if namespace:
        base = f"{_NAME_OK.sub('_', namespace)}_{base}"
    if not base or base[0].isdigit():
        base = f"_{base}"
    return base


def _prom_labels(pairs: tuple, extra: dict[str, str] | None = None) -> str:
    items = list(pairs)
    if extra:
        items = sorted(items + list(extra.items()))
    if not items:
        return ""
    body = ",".join(
        '{}="{}"'.format(
            _NAME_OK.sub("_", k),
            str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"),
        )
        for k, v in items
    )
    return "{" + body + "}"


def to_prometheus(
    registry: "MetricRegistry | NullRegistry", namespace: str = "repro"
) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges emit one sample; histograms emit a summary-style
    family (``_count`` / ``_sum`` plus ``quantile`` samples for p50/p95).
    A disabled registry renders to an empty string.
    """
    by_name: dict[str, list] = {}
    for inst in registry.series():
        by_name.setdefault(inst.name, []).append(inst)
    lines: list[str] = []
    for name in sorted(by_name):
        family = by_name[name]
        kind = family[0].kind
        prom = _prom_name(name, namespace)
        lines.append(f"# TYPE {prom} {'summary' if kind == 'histogram' else kind}")
        for inst in family:
            if isinstance(inst, Histogram):
                s = inst.summary()
                for q, key in (("0.5", "p50"), ("0.95", "p95")):
                    lines.append(
                        f"{prom}{_prom_labels(inst.labels, {'quantile': q})} {s[key]:g}"
                    )
                lines.append(f"{prom}_count{_prom_labels(inst.labels)} {s['count']:g}")
                lines.append(f"{prom}_sum{_prom_labels(inst.labels)} {s['sum']:g}")
            else:
                lines.append(f"{prom}{_prom_labels(inst.labels)} {inst.value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def registry_records(registry: "MetricRegistry | NullRegistry") -> list[dict[str, Any]]:
    """Scalar-only per-series dicts, tagged ``record="metric"`` for the
    run JSONL (what the ``report`` subcommand reads back)."""
    return [{"record": "metric", **rec} for rec in registry.snapshot()]


def write_enriched_trace(context: "RunContext", path: str | Path) -> Path:
    """Write a Chrome trace with naming metadata and lifecycle instants.

    Adds ``process_name``/``thread_name`` metadata records (ranks sort as
    ``rank N`` lanes) and one instant (``ph=i``) per lifecycle event, so
    restarts/evictions land on the timeline. Span trees, when present,
    render as a separate ``spans`` process (pid 1) — one lane per root
    with ``ph=s``/``ph=f`` flow arrows binding parents to children.
    Raises :class:`~repro.errors.ConfigError` for an untraced context,
    same as :meth:`RunContext.write_chrome_trace`.
    """
    if context.trace_events is None:
        raise ConfigError(
            "run was not traced; launch with trace=True to export a trace"
        )
    records = to_chrome_trace(context.trace_events)
    meta: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "simulated world"},
        }
    ]
    for rank in sorted({e.rank for e in context.trace_events}):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    instants = [
        {
            "name": event["kind"],
            "ph": "i",
            "ts": event.get("t", 0.0) * 1e6,
            "pid": 0,
            "tid": 0,
            "s": "g",
            "args": {k: v for k, v in event.items() if k not in ("kind", "t")},
        }
        for event in context.events
    ]
    span_events = context.spans.chrome_events(pid=1)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"traceEvents": meta + records + instants + span_events})
    )
    return path
