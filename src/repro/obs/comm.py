"""Comm profiler: per-collective, per-rank records with model utilization.

:class:`~repro.simmpi.stats.TrafficStats` answers "how many bytes moved";
this profiler answers the next question — *how well* they moved. From the
run's trace stream it aggregates, per (op, rank): call count, payload
bytes, and recorded virtual seconds, then re-prices each collective
through the run's :class:`~repro.network.costmodel.NetworkModel` to get a
``model_seconds`` floor. ``utilization = model_seconds / seconds`` — the
recorded interval starts at the rank's *arrival* at the collective, so a
utilization below 1.0 is rendezvous wait: arrival skew, straggler
experts, pipeline bubbles. That makes the gap between the two columns the
direct, per-op measurement of BaGuaLu's load-balance story.

Without a trace the profiler degrades to the ``TrafficStats`` per-op
aggregates (calls + bytes, no timing), so ``report`` always has a comm
table to show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.costmodel import NetworkModel
    from repro.simmpi.context import RunContext

__all__ = ["CommRecord", "CommProfile", "profile_comm"]

#: Trace ops that are modelled collectives (map to a cost-model kind).
_COLLECTIVE_KINDS = {
    "barrier": "barrier",
    "bcast": "bcast",
    "scatter": "scatter",
    "gather": "gather",
    "allgather": "allgather",
    "reduce": "reduce",
    "allreduce": "allreduce",
    "reduce_scatter": "reduce_scatter",
    "alltoall": "alltoall",
    "split": "barrier",
    "split-alloc": "barrier",
    # Nonblocking variants price identically; their recorded seconds are
    # the *exposed* remainder, with the hidden part carried separately.
    "ialltoall": "alltoall",
    "iallreduce": "allreduce",
    "iallgather": "allgather",
}


@dataclass(frozen=True)
class CommRecord:
    """Aggregate of one (op, rank) pair. ``rank`` is None for the
    untraced TrafficStats fallback (per-op totals only)."""

    op: str
    rank: int | None
    calls: int
    nbytes: int
    #: Recorded virtual seconds inside the op (includes rendezvous wait).
    #: For nonblocking ops this is the *exposed* cost — what actually
    #: stalled the rank at ``wait()``.
    seconds: float
    #: Cost-model seconds for the same calls (None when unpriceable).
    model_seconds: float | None
    #: Seconds of network cost hidden behind compute (nonblocking ops).
    hidden_seconds: float = 0.0

    @property
    def bandwidth(self) -> float:
        """Achieved bytes / recorded second (0 when untimed)."""
        return self.nbytes / self.seconds if self.seconds > 0 else 0.0

    @property
    def utilization(self) -> float | None:
        """model_seconds / seconds — <1.0 means time lost to skew/wait.

        >1.0 means the calls actually ran on sub-communicators smaller
        than the assumed member set (pass the real group via
        ``profile_comm(..., members=...)`` to reprice them).
        """
        if self.model_seconds is None or self.seconds <= 0:
            return None
        return self.model_seconds / self.seconds


def _model_cost(
    network: "NetworkModel",
    op: str,
    nbytes: int,
    members: Sequence[int],
) -> float | None:
    """Cost-model seconds for one recorded call, or None if unpriceable."""
    kind = _COLLECTIVE_KINDS.get(op)
    if kind is None or len(members) < 2:
        return None
    if kind == "barrier":
        return network.barrier_time(members)
    if kind == "alltoall":
        # The trace carries total bytes leaving the rank; the cost model
        # wants the uniform per-pair payload.
        per_pair = nbytes / max(len(members) - 1, 1)
        return network.alltoall_time(per_pair, members)
    fn = getattr(network, f"{kind}_time")
    return fn(nbytes, members)


class CommProfile:
    """Deterministically ordered list of :class:`CommRecord`."""

    def __init__(self, records: list[CommRecord], traced: bool):
        self.traced = traced
        self._records = sorted(
            records, key=lambda r: (r.op, -1 if r.rank is None else r.rank)
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def per_rank(self) -> list[CommRecord]:
        return list(self._records)

    def per_op(self) -> list[CommRecord]:
        """Collapse ranks: one record per op (seconds = max over ranks,
        since ranks run concurrently; bytes/calls summed)."""
        by_op: dict[str, list[CommRecord]] = {}
        for r in self._records:
            by_op.setdefault(r.op, []).append(r)
        out = []
        for op in sorted(by_op):
            group = by_op[op]
            models = [r.model_seconds for r in group if r.model_seconds is not None]
            out.append(
                CommRecord(
                    op=op,
                    rank=None,
                    calls=max(r.calls for r in group),
                    nbytes=sum(r.nbytes for r in group),
                    seconds=max(r.seconds for r in group),
                    model_seconds=max(models) if models else None,
                    hidden_seconds=max(r.hidden_seconds for r in group),
                )
            )
        return out

    def records(self) -> list[dict[str, Any]]:
        """Flat per-(op, rank) dicts for a JSONL sink."""
        return [
            {
                "op": r.op,
                "rank": -1 if r.rank is None else r.rank,
                "calls": r.calls,
                "nbytes": r.nbytes,
                "seconds": r.seconds,
                "bandwidth": r.bandwidth,
                "model_seconds": -1.0 if r.model_seconds is None else r.model_seconds,
                "utilization": -1.0 if r.utilization is None else r.utilization,
                "hidden_seconds": r.hidden_seconds,
            }
            for r in self._records
        ]

    def emit(self, registry) -> None:
        """Write the profile into a metric registry (per-op aggregates)."""
        for r in self.per_op():
            registry.counter("comm_calls", op=r.op).inc(r.calls)
            registry.counter("comm_bytes", op=r.op).inc(r.nbytes)
            registry.gauge("comm_seconds", op=r.op).set(r.seconds)
            if r.utilization is not None:
                registry.gauge("comm_utilization", op=r.op).set(r.utilization)
            if r.hidden_seconds > 0:
                registry.gauge("comm_overlapped_seconds", op=r.op).set(r.hidden_seconds)
                registry.gauge("comm_exposed_seconds", op=r.op).set(r.seconds)

    def format_table(self) -> str:
        """Fixed-width per-op table (deterministic, report-ready)."""
        header = (
            f"{'op':<16} {'calls':>7} {'MiB':>10} {'seconds':>10} "
            f"{'GiB/s':>8} {'model_s':>10} {'util':>6} {'hidden_s':>10}"
        )
        lines = [header, "-" * len(header)]
        for r in self.per_op():
            model = f"{r.model_seconds:10.4f}" if r.model_seconds is not None else f"{'-':>10}"
            util = f"{r.utilization:6.2f}" if r.utilization is not None else f"{'-':>6}"
            lines.append(
                f"{r.op:<16} {r.calls:>7} {r.nbytes / 2**20:>10.3f} "
                f"{r.seconds:>10.4f} {r.bandwidth / 2**30:>8.3f} {model} {util} "
                f"{r.hidden_seconds:>10.4f}"
            )
        return "\n".join(lines)


def profile_comm(
    context: "RunContext",
    network: "NetworkModel | None" = None,
    members: Sequence[int] | None = None,
) -> CommProfile:
    """Build a :class:`CommProfile` from a run's context.

    With a trace, records are per (op, rank) with recorded virtual time
    and (given ``network``) cost-model utilization; ``members`` defaults
    to every rank seen in the trace — pass the actual group for
    collectives run on sub-communicators. Without a trace, falls back to
    the TrafficStats per-op aggregates.
    """
    if context.trace_events is not None:
        buckets: dict[tuple[str, int], list] = {}
        ranks = set()
        for e in context.trace_events:
            if e.op.startswith("event:"):
                continue
            ranks.add(e.rank)
            buckets.setdefault((e.op, e.rank), []).append(e)
        group = list(members) if members is not None else sorted(ranks)
        records = []
        for (op, rank), events in buckets.items():
            model: float | None = None
            if network is not None:
                costs = [_model_cost(network, op, e.nbytes, group) for e in events]
                if all(c is not None for c in costs) and costs:
                    model = float(sum(costs))
            records.append(
                CommRecord(
                    op=op,
                    rank=rank,
                    calls=len(events),
                    nbytes=sum(e.nbytes for e in events),
                    seconds=sum(e.t_end - e.t_start for e in events),
                    model_seconds=model,
                    hidden_seconds=sum(e.hidden for e in events),
                )
            )
        return CommProfile(records, traced=True)

    # Untraced fallback: per-op totals from TrafficStats.
    stats = context.stats
    records = [
        CommRecord(
            op=op,
            rank=None,
            calls=int(stats.collective_calls[op]),
            nbytes=int(stats.collective_bytes[op]),
            seconds=float(stats.exposed_seconds[op]),
            model_seconds=None,
            hidden_seconds=float(stats.overlapped_seconds[op]),
        )
        for op in sorted(stats.collective_calls)
    ]
    if stats.p2p_messages:
        records.append(
            CommRecord(
                op="p2p",
                rank=None,
                calls=stats.p2p_messages,
                nbytes=stats.p2p_bytes,
                seconds=0.0,
                model_seconds=None,
            )
        )
    return CommProfile(records, traced=False)
