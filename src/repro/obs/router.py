"""MoE router telemetry: per-layer per-step expert-load series.

BaGuaLu-style expert parallelism is only as fast as its worst-loaded
expert — the per-step imbalance (max/mean) is the synchronous step-time
multiplier, and drop/overflow rates are silent quality loss. This module
records, per MoE layer and per step, the full per-expert load histogram
plus the :func:`~repro.moe.balance.load_stats` scalars (imbalance, cv)
and the capacity drop fraction, giving the run a router timeseries the
report can render as a heatmap.

Recording is driven by the strategy trainers and the serving engine
(rank 0 of each world, with the group-allreduced loads, so numbers are
global and counted once) and only when the run observes
(``RunContext.observing``) — a disabled run never touches this path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigError

__all__ = ["RouterSample", "RouterTelemetry"]


@dataclass(frozen=True)
class RouterSample:
    """One (layer, step) observation of the router."""

    step: int
    layer: int
    #: Per-expert token counts (global over the EP group).
    loads: np.ndarray
    #: max load / mean load (1.0 = perfect balance).
    imbalance: float
    #: Coefficient of variation of the loads.
    cv: float
    #: Fraction of routed tokens dropped by capacity limits.
    drop_fraction: float


class RouterTelemetry:
    """Append-only store of :class:`RouterSample` records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: list[RouterSample] = []

    def record(
        self,
        step: int,
        layer: int,
        loads: Any,
        drop_fraction: float = 0.0,
    ) -> RouterSample:
        """Record one layer's per-expert loads for one step."""
        from repro.moe.balance import load_stats  # lazy: keeps import light

        stats = load_stats(np.asarray(loads, dtype=np.float64))
        sample = RouterSample(
            step=int(step),
            layer=int(layer),
            loads=stats.loads,
            imbalance=stats.imbalance,
            cv=stats.cv,
            drop_fraction=float(drop_fraction),
        )
        with self._lock:
            self._samples.append(sample)
        return sample

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[RouterSample]:
        return list(self._samples)

    def layers(self) -> list[int]:
        """Sorted layer ids with at least one sample."""
        return sorted({s.layer for s in self._samples})

    def series(self, layer: int) -> list[RouterSample]:
        """Every sample for one layer, in record (step) order."""
        return [s for s in self._samples if s.layer == layer]

    def load_matrix(self, layer: int) -> np.ndarray:
        """(steps, experts) load matrix for one layer."""
        rows = [s.loads for s in self.series(layer)]
        if not rows:
            raise ConfigError(f"no router samples recorded for layer {layer}")
        return np.stack(rows)

    def layer_summary(self) -> list[dict[str, Any]]:
        """One flat record per layer (deterministic order)."""
        out = []
        for layer in self.layers():
            series = self.series(layer)
            imb = np.array([s.imbalance for s in series])
            cv = np.array([s.cv for s in series])
            drop = np.array([s.drop_fraction for s in series])
            out.append(
                {
                    "layer": layer,
                    "steps": len(series),
                    "experts": int(series[0].loads.size),
                    "mean_imbalance": float(imb.mean()),
                    "max_imbalance": float(imb.max()),
                    "mean_cv": float(cv.mean()),
                    "mean_drop_fraction": float(drop.mean()),
                }
            )
        return out

    def records(self) -> list[dict[str, Any]]:
        """Per-sample flat dicts for a JSONL sink (loads as a list)."""
        return [
            {
                "step": s.step,
                "layer": s.layer,
                "loads": [float(v) for v in s.loads],
                "imbalance": s.imbalance,
                "cv": s.cv,
                "drop_fraction": s.drop_fraction,
            }
            for s in self._samples
        ]

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def emit(self, registry) -> None:
        """Write per-layer aggregates into a metric registry.

        Gauges ``router_imbalance`` / ``router_cv`` / ``router_drop_fraction``
        (labeled by layer, mean over steps) and counters
        ``router_expert_tokens`` (labeled by layer and expert).
        """
        for row in self.layer_summary():
            layer = row["layer"]
            registry.gauge("router_imbalance", layer=layer).set(row["mean_imbalance"])
            registry.gauge("router_cv", layer=layer).set(row["mean_cv"])
            registry.gauge("router_drop_fraction", layer=layer).set(
                row["mean_drop_fraction"]
            )
            totals = self.load_matrix(layer).sum(axis=0)
            for expert, tokens in enumerate(totals):
                registry.counter(
                    "router_expert_tokens", layer=layer, expert=expert
                ).inc(float(tokens))

    def heatmap(self, layer: int, ramp: str = " .:-=+*#%@") -> str:
        """ASCII heatmap of one layer: one row per step, one column per
        expert, shade = load / max load of that step (deterministic)."""
        matrix = self.load_matrix(layer)
        lines = []
        for step_row, sample in zip(matrix, self.series(layer)):
            peak = step_row.max()
            if peak <= 0:
                cells = " " * step_row.size
            else:
                idx = np.minimum(
                    (step_row / peak * (len(ramp) - 1)).astype(int), len(ramp) - 1
                )
                cells = "".join(ramp[i] for i in idx)
            lines.append(f"step {sample.step:>4} |{cells}|")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Session aggregation
    # ------------------------------------------------------------------ #

    def absorb(self, other: "RouterTelemetry") -> None:
        """Append another telemetry's samples (step ids kept as-is —
        elastic resumes continue the global step numbering)."""
        with self._lock:
            self._samples.extend(other._samples)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RouterTelemetry({len(self)} samples, layers={self.layers()})"
