"""Windowed aggregation over virtual time: rates, quantiles, sliding views.

The metric registry answers "how much, in total"; SLO enforcement needs
"how much, *lately*". This module turns the timestamped streams the
registry now records — :attr:`Histogram.stamped` ``(t, value)`` pairs and
:attr:`Counter.marks` ``(t, amount)`` increments — into windowed views:

- :func:`tumbling_windows` / :func:`tumbling_rates` — fixed-width,
  non-overlapping buckets over the virtual timeline, one
  :class:`WindowStat` per bucket (the post-hoc report view);
- :class:`SlidingWindow` — a trailing window advanced online, answering
  count / rate / mean / quantile *as of now* (what the autoscaler and
  burn-rate monitor consume mid-run);
- :class:`StreamingQuantile` — a P²-style fixed-memory quantile
  estimator for streams too long to buffer.

Everything is pure arithmetic on virtual timestamps — deterministic, no
wall clock — so windowed reports are byte-stable across same-seed runs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "WindowStat",
    "tumbling_windows",
    "tumbling_rates",
    "SlidingWindow",
    "StreamingQuantile",
]


@dataclass(frozen=True)
class WindowStat:
    """Aggregate of one time bucket ``[start, end)`` of stamped samples."""

    start: float
    end: float
    count: int
    sum: float
    mean: float
    rate: float
    p50: float
    p95: float
    max: float

    @property
    def width(self) -> float:
        return self.end - self.start


def _window_stat(start: float, end: float, values: list[float]) -> WindowStat:
    width = end - start
    if not values:
        return WindowStat(start=start, end=end, count=0, sum=0.0, mean=0.0,
                          rate=0.0, p50=0.0, p95=0.0, max=0.0)
    total = float(np.sum(values))
    return WindowStat(
        start=start,
        end=end,
        count=len(values),
        sum=total,
        mean=total / len(values),
        rate=len(values) / width if width > 0 else 0.0,
        p50=float(np.percentile(values, 50)),
        p95=float(np.percentile(values, 95)),
        max=float(max(values)),
    )


def tumbling_windows(
    stamped: list[tuple[float, float]],
    width: float,
    t0: float = 0.0,
    t_end: float | None = None,
) -> list[WindowStat]:
    """Bucket stamped ``(t, value)`` samples into fixed ``width`` windows.

    Windows tile ``[t0, t_end)`` contiguously (empty buckets included, so
    gaps are visible); ``t_end`` defaults to just past the last sample.
    Samples before ``t0`` are dropped.
    """
    if width <= 0:
        raise ConfigError(f"window width must be > 0 seconds, got {width}")
    kept = [(t, v) for t, v in stamped if t >= t0]
    if t_end is None:
        t_end = (max(t for t, _ in kept) + width) if kept else t0 + width
    if t_end <= t0:
        raise ConfigError(f"t_end {t_end} must be > t0 {t0}")
    n_windows = int(np.ceil((t_end - t0) / width))
    buckets: list[list[float]] = [[] for _ in range(n_windows)]
    for t, v in kept:
        idx = int((t - t0) / width)
        if 0 <= idx < n_windows:
            buckets[idx].append(v)
    return [
        _window_stat(t0 + i * width, t0 + (i + 1) * width, buckets[i])
        for i in range(n_windows)
    ]


def tumbling_rates(
    marks: list[tuple[float, float]],
    width: float,
    t0: float = 0.0,
    t_end: float | None = None,
) -> list[tuple[float, float, float]]:
    """Per-window increment rate from counter ``(t, amount)`` marks.

    Returns ``(start, end, amount_per_second)`` triples tiling
    ``[t0, t_end)`` — e.g. tokens/s or requests/s per bucket.
    """
    windows = tumbling_windows(marks, width, t0=t0, t_end=t_end)
    return [
        (w.start, w.end, w.sum / w.width if w.width > 0 else 0.0)
        for w in windows
    ]


class SlidingWindow:
    """A trailing window over a stamped stream, advanced online.

    ``observe(t, value)`` inserts in timestamp order (a fleet settles
    outcomes across replicas slightly out of order, so late inserts are
    tolerated — a sample older than an already-expired boundary is
    dropped); queries take ``now`` and see only samples with
    ``t > now - width``. Used by the burn-rate monitor and the
    autoscaler, which both ask "what is the p95 / rate over the last W
    virtual seconds?" many times as the run advances.
    """

    def __init__(self, width: float):
        if width <= 0:
            raise ConfigError(f"window width must be > 0 seconds, got {width}")
        self.width = width
        self._times: list[float] = []
        self._values: list[float] = []
        self._head = 0  # index of the oldest still-inside sample

    def observe(self, t: float, value: float = 1.0) -> None:
        t = float(t)
        if not self._times or t >= self._times[-1]:
            self._times.append(t)
            self._values.append(float(value))
            return
        idx = bisect.bisect_right(self._times, t)
        self._times.insert(idx, t)
        self._values.insert(idx, float(value))
        if idx < self._head:
            # Landed before the already-expired boundary: keep it expired.
            self._head += 1

    def _trim(self, now: float) -> None:
        cutoff = now - self.width
        while self._head < len(self._times) and self._times[self._head] <= cutoff:
            self._head += 1

    def window(self, now: float) -> list[float]:
        """Values inside ``(now - width, now]``, oldest first."""
        self._trim(now)
        return [
            v for t, v in zip(
                self._times[self._head:], self._values[self._head:]
            )
            if t <= now
        ]

    def count(self, now: float) -> int:
        return len(self.window(now))

    def rate(self, now: float) -> float:
        """Samples per virtual second over the trailing window."""
        return self.count(now) / self.width

    def sum(self, now: float) -> float:
        values = self.window(now)
        return float(np.sum(values)) if values else 0.0

    def mean(self, now: float) -> float:
        values = self.window(now)
        return float(np.mean(values)) if values else 0.0

    def quantile(self, q: float, now: float) -> float:
        """Percentile ``q`` (0-100) of the trailing window (0.0 if empty)."""
        if not 0 <= q <= 100:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        values = self.window(now)
        if not values:
            return 0.0
        return float(np.percentile(values, q))

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlidingWindow(width={self.width}, samples={len(self)})"


class StreamingQuantile:
    """Fixed-memory quantile estimate via the P² algorithm (Jain/Chlamtac).

    Five markers track the target quantile without buffering the stream;
    with fewer than five observations the estimate is exact. Updates are
    pure float arithmetic in observation order, hence deterministic.
    """

    def __init__(self, q: float):
        if not 0 < q < 1:
            raise ConfigError(f"streaming quantile q must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        h, pos = self._heights, self._positions
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = next(i for i in range(4) if h[i] <= value < h[i + 1])
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1 and pos[i + 1] - pos[i] > 1) or (
                d <= -1 and pos[i - 1] - pos[i] < -1
            ):
                step = 1.0 if d >= 1 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # parabolic estimate escaped: fall back to linear
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + d / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (p[j] - p[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (0.0 before any observation)."""
        if not self._heights:
            return 0.0
        if len(self._heights) < 5 or self.count < 5:
            exact = sorted(self._heights[: self.count])
            return float(np.percentile(exact, self.q * 100))
        return self._heights[2]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingQuantile(q={self.q}, count={self.count}, "
            f"value={self.value:.4g})"
        )
