"""Flight recorder: a bounded ring of recent per-rank activity.

At 96,000 nodes a failed run cannot afford full tracing, but the *last
few* operations of every rank are exactly what a post-mortem needs: who
was inside which collective when the fault hit, which rank had stopped
making progress before the deadlock, what the cache was doing when it
overflowed. The recorder keeps one fixed-size ring buffer per rank
(``collections.deque(maxlen=...)``), fed unconditionally by the engine at
every communication/compute record — appends are O(1) and the memory
bound is ``limit * ranks`` small tuples regardless of run length.

On any modelled failure the engine dumps the recorder onto the raised
exception (``exc.flight_dump``), so fault / deadlock / cache-overflow
post-mortems ship with the evidence attached. The
:class:`~repro.resilience.Supervisor` ingests these dumps into its
session recorder, shifted onto the session timeline.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any

from repro.errors import ConfigError

__all__ = ["FlightRecorder"]

#: Default ring depth per rank — enough to see a full training step's
#: collective sequence on the tiny worlds, small enough to be free.
DEFAULT_LIMIT = 64


class FlightRecorder:
    """Per-rank ring buffers of recent (op, t_start, t_end, nbytes) plus a
    ring of recent lifecycle notes (restart/backoff/evict/...)."""

    def __init__(self, limit: int = DEFAULT_LIMIT):
        if limit < 1:
            raise ConfigError(f"flight recorder limit must be >= 1, got {limit}")
        self.limit = int(limit)
        self._lock = threading.Lock()
        self._rings: dict[int, deque] = {}
        self._notes: deque = deque(maxlen=self.limit)

    # ------------------------------------------------------------------ #
    # Feeding
    # ------------------------------------------------------------------ #

    def record(self, rank: int, op: str, t_start: float, t_end: float,
               nbytes: int = 0) -> None:
        """Append one operation interval to ``rank``'s ring."""
        ring = self._rings.get(rank)
        if ring is None:
            with self._lock:
                ring = self._rings.setdefault(rank, deque(maxlen=self.limit))
        ring.append((op, float(t_start), float(t_end), int(nbytes)))

    def note(self, kind: str, t: float = 0.0, **fields: Any) -> None:
        """Append one lifecycle note (shared ring, most recent kept)."""
        self._notes.append({"kind": kind, "t": float(t), **fields})

    # ------------------------------------------------------------------ #
    # Post-mortem export
    # ------------------------------------------------------------------ #

    def dump(self, phases: dict[str, float] | None = None) -> dict[str, Any]:
        """A deterministic plain-dict snapshot for post-mortem analysis.

        ``ranks`` maps rank -> most-recent-last op records; ``last_op``
        summarizes each rank's final recorded activity (the first thing a
        human looks at after a hang).
        """
        with self._lock:
            ranks = {
                r: [
                    {"op": op, "t_start": t0, "t_end": t1, "nbytes": nb}
                    for (op, t0, t1, nb) in self._rings[r]
                ]
                for r in sorted(self._rings)
            }
        last_op = {
            r: (events[-1]["op"] if events else None)
            for r, events in ranks.items()
        }
        return {
            "limit": self.limit,
            "ranks": ranks,
            "last_op": last_op,
            "notes": list(self._notes),
            "phases": dict(phases) if phases else {},
        }

    def dump_to(self, path: str | Path,
                phases: dict[str, float] | None = None) -> Path:
        """Write :meth:`dump` as sorted-key JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.dump(phases), sort_keys=True, indent=1))
        return path

    # ------------------------------------------------------------------ #
    # Session aggregation
    # ------------------------------------------------------------------ #

    def absorb(self, other: "FlightRecorder", clock_offset: float = 0.0) -> None:
        """Fold another recorder in, timestamps shifted by ``clock_offset``."""
        self.ingest(other.dump(), clock_offset=clock_offset)

    def ingest(self, dump: dict[str, Any], clock_offset: float = 0.0) -> None:
        """Fold a :meth:`dump` dict in (e.g. ``exc.flight_dump`` from a
        crashed launch), timestamps shifted onto this recorder's timeline."""
        for rank_str, events in dump.get("ranks", {}).items():
            rank = int(rank_str)
            for e in events:
                self.record(
                    rank,
                    e["op"],
                    e["t_start"] + clock_offset,
                    e["t_end"] + clock_offset,
                    e.get("nbytes", 0),
                )
        for n in dump.get("notes", []):
            fields = {k: v for k, v in n.items() if k not in ("kind", "t")}
            self.note(n["kind"], t=n.get("t", 0.0) + clock_offset, **fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlightRecorder(limit={self.limit}, ranks={len(self._rings)}, "
            f"notes={len(self._notes)})"
        )
