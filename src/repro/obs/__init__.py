"""Unified observability: metric registry, profilers, flight recorder.

BaGuaLu's headline results are measurements — scaling efficiency,
alltoall bandwidth, expert load balance — so the reproduction needs one
measurement substrate rather than scattered counters. This package
supplies it, layered on the :class:`~repro.simmpi.RunContext` spine:

- :mod:`~repro.obs.registry` — labeled ``Counter`` / ``Gauge`` /
  ``Histogram`` series; a no-op :data:`NULL_REGISTRY` when disabled.
- :mod:`~repro.obs.comm` — per-collective, per-rank comm profile with
  achieved-vs-costmodel bandwidth utilization.
- :mod:`~repro.obs.router` — per-layer per-step MoE expert-load
  telemetry (imbalance / cv / drop timeseries, heatmaps).
- :mod:`~repro.obs.flight` — bounded per-rank flight recorder, dumped
  automatically onto fault / deadlock / overflow exceptions.
- :mod:`~repro.obs.spans` — per-request / per-launch span trees on the
  virtual clock, with causal parent links and Chrome flow export.
- :mod:`~repro.obs.timeseries` — windowed rates and quantiles over the
  registry's timestamped streams (tumbling and sliding views).
- :mod:`~repro.obs.slo` — declarative latency SLOs with a multi-window
  burn-rate alert engine.
- :mod:`~repro.obs.export` — Prometheus text exposition, JSONL records,
  enriched Chrome traces.
- :mod:`~repro.obs.report` — deterministic markdown run reports
  (the ``report`` CLI subcommand).
"""

from repro.obs.comm import CommProfile, CommRecord, profile_comm
from repro.obs.export import registry_records, to_prometheus, write_enriched_trace
from repro.obs.flight import FlightRecorder
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
)
from repro.obs.report import build_report, collect_run_records, generate_run_report
from repro.obs.router import RouterSample, RouterTelemetry
from repro.obs.slo import (
    BurnRateWindow,
    SLOMonitor,
    SLOObjective,
    default_burn_windows,
    slo_report,
)
from repro.obs.spans import NULL_TRACER, NullTracer, Span, Tracer, span_coverage
from repro.obs.timeseries import (
    SlidingWindow,
    StreamingQuantile,
    WindowStat,
    tumbling_rates,
    tumbling_windows,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "CommProfile",
    "CommRecord",
    "profile_comm",
    "RouterSample",
    "RouterTelemetry",
    "FlightRecorder",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_coverage",
    "WindowStat",
    "tumbling_windows",
    "tumbling_rates",
    "SlidingWindow",
    "StreamingQuantile",
    "SLOObjective",
    "BurnRateWindow",
    "SLOMonitor",
    "default_burn_windows",
    "slo_report",
    "to_prometheus",
    "registry_records",
    "write_enriched_trace",
    "collect_run_records",
    "build_report",
    "generate_run_report",
]
