"""Run-report generation: one markdown post-mortem per run.

``collect_run_records`` flattens everything a :class:`RunContext` spine
observed — context totals, comm profile, router telemetry, registry
snapshot — into typed JSONL records (``record`` ∈ ``context`` / ``comm``
/ ``router`` / ``metric``), written next to the per-step records the CLI
entry points already log. ``build_report`` renders those records back
into a deterministic markdown report: phase breakdown, traffic and comm
tables, router heatmap, SLO percentiles, lifecycle events. Deterministic
means *byte-stable*: all timings are virtual, floats render through one
fixed format, and every table is sorted — two same-seed runs produce
identical reports, so the report itself can be diffed in CI.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.errors import ConfigError
from repro.obs.comm import profile_comm
from repro.obs.export import registry_records

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.costmodel import NetworkModel
    from repro.simmpi.context import RunContext

__all__ = [
    "collect_run_records",
    "build_report",
    "generate_run_report",
    "fmt_scalar",
    "kv_table",
]

_HEAT_RAMP = " .:-=+*#%@"


def fmt_scalar(value: Any) -> str:
    """One fixed rendering for every scalar (byte-stable across runs).

    Shared by every deterministic markdown report (run reports here, plan
    reports in :mod:`repro.plan.report`): floats always render through one
    format so two same-seed runs produce byte-identical documents.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


_fmt = fmt_scalar


def collect_run_records(
    context: "RunContext",
    network: "NetworkModel | None" = None,
) -> list[dict[str, Any]]:
    """Flatten a context's observability state into typed JSONL records.

    Always emits one ``record="context"`` snapshot; adds ``comm`` rows
    (from :func:`~repro.obs.comm.profile_comm`), ``router`` rows,
    ``metric`` rows, and ``span`` rows when the context carries them.
    Safe on any context — an unobserved run just yields the context
    snapshot plus whatever the trace/TrafficStats can support.
    """
    records: list[dict[str, Any]] = [
        {"record": "context", **context.metrics_record()}
    ]
    profile = profile_comm(context, network=network)
    records.extend({"record": "comm", **rec} for rec in profile.records())
    router = getattr(context, "router", None)
    if router is not None:
        records.extend({"record": "router", **rec} for rec in router.records())
    metrics = getattr(context, "metrics", None)
    if metrics is not None:
        records.extend(registry_records(metrics))
    spans = getattr(context, "spans", None)
    if spans is not None and getattr(spans, "enabled", False):
        records.extend({"record": "span", **rec} for rec in spans.records())
    return records


# ---------------------------------------------------------------------- #
# Section renderers (each returns a list of markdown lines, possibly empty)
# ---------------------------------------------------------------------- #


def kv_table(rows: Iterable[tuple[str, Any]]) -> list[str]:
    """Markdown key/value table lines (scalars through :func:`fmt_scalar`)."""
    lines = ["| key | value |", "| --- | --- |"]
    lines += [f"| {k} | {_fmt(v)} |" for k, v in rows]
    return lines


_kv_table = kv_table


def _section_summary(records: list[dict]) -> list[str]:
    summaries = [r for r in records if r.get("record") == "summary"]
    if not summaries:
        return []
    lines = ["## Run summary", ""]
    for s in summaries:
        rows = [(k, s[k]) for k in sorted(s) if k != "record"]
        lines += _kv_table(rows) + [""]
    return lines


def _context_records(records: list[dict]) -> list[dict]:
    tagged = [r for r in records if r.get("record") == "context"]
    if tagged:
        return tagged
    # Older logs carry an untagged context snapshot (distributed CLI).
    return [
        r for r in records
        if "record" not in r and "total_bytes" in r and "p2p_bytes" in r
    ]


def _section_phases(records: list[dict]) -> list[str]:
    phases: dict[str, float] = {}
    for ctx in _context_records(records):
        for key, value in ctx.items():
            if key.startswith("phase_"):
                name = key[len("phase_"):]
                phases[name] = phases.get(name, 0.0) + float(value)
    if not phases:
        return []
    total = sum(phases.values())
    lines = [
        "## Phase breakdown",
        "",
        "| phase | virtual seconds | share |",
        "| --- | --- | --- |",
    ]
    for name in sorted(phases):
        share = phases[name] / total if total > 0 else 0.0
        lines.append(f"| {name} | {_fmt(phases[name])} | {share:.1%} |")
    lines.append("")
    return lines


def _section_traffic(records: list[dict]) -> list[str]:
    ctxs = _context_records(records)
    if not ctxs:
        return []
    totals: dict[str, float] = {}
    for ctx in ctxs:
        for key in ("p2p_messages", "p2p_bytes", "total_bytes", "dropped_messages"):
            if key in ctx:
                totals[key] = totals.get(key, 0.0) + float(ctx[key])
    if not totals:
        return []
    rows = [(k, int(totals[k])) for k in sorted(totals)]
    return ["## Traffic", ""] + _kv_table(rows) + [""]


def _section_comm(records: list[dict]) -> list[str]:
    comm = [r for r in records if r.get("record") == "comm"]
    if not comm:
        return []
    # Collapse ranks: bytes/seconds summed per op for the table (the JSONL
    # keeps the per-rank rows for deeper digging).
    by_op: dict[str, dict[str, float]] = {}
    for r in comm:
        agg = by_op.setdefault(
            r["op"], {"calls": 0, "nbytes": 0, "seconds": 0.0, "model_seconds": 0.0,
                      "hidden": 0.0, "modelled": True}
        )
        agg["calls"] = max(agg["calls"], r["calls"])
        agg["nbytes"] += r["nbytes"]
        agg["seconds"] = max(agg["seconds"], r["seconds"])
        agg["hidden"] = max(agg["hidden"], r.get("hidden_seconds", 0.0))
        if r.get("model_seconds", -1.0) < 0:
            agg["modelled"] = False
        else:
            agg["model_seconds"] = max(agg["model_seconds"], r["model_seconds"])
    lines = [
        "## Communication",
        "",
        "| op | calls | bytes | virtual seconds | model seconds | utilization | hidden seconds |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    for op in sorted(by_op):
        agg = by_op[op]
        if agg["modelled"] and agg["seconds"] > 0:
            model = _fmt(agg["model_seconds"])
            util = f"{agg['model_seconds'] / agg['seconds']:.2f}"
        else:
            model, util = "-", "-"
        hidden = _fmt(agg["hidden"]) if agg["hidden"] > 0 else "-"
        lines.append(
            f"| {op} | {int(agg['calls'])} | {int(agg['nbytes'])} | "
            f"{_fmt(agg['seconds'])} | {model} | {util} | {hidden} |"
        )
    lines.append("")
    return lines


def _section_router(records: list[dict]) -> list[str]:
    router = [r for r in records if r.get("record") == "router"]
    if not router:
        return []
    layers = sorted({r["layer"] for r in router})
    lines = [
        "## Router",
        "",
        "| layer | steps | experts | mean imbalance | max imbalance | mean cv | mean drop |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    for layer in layers:
        series = [r for r in router if r["layer"] == layer]
        imb = [r["imbalance"] for r in series]
        cv = [r["cv"] for r in series]
        drop = [r["drop_fraction"] for r in series]
        lines.append(
            f"| {layer} | {len(series)} | {len(series[0]['loads'])} | "
            f"{_fmt(sum(imb) / len(imb))} | {_fmt(max(imb))} | "
            f"{_fmt(sum(cv) / len(cv))} | {_fmt(sum(drop) / len(drop))} |"
        )
    lines.append("")
    # Heatmap of the first layer: rows = steps, columns = experts.
    layer = layers[0]
    series = [r for r in router if r["layer"] == layer]
    lines += [f"Expert-load heatmap, layer {layer} "
              "(rows = steps, columns = experts):", "", "```"]
    for r in series:
        loads = r["loads"]
        peak = max(loads) if loads else 0.0
        if peak <= 0:
            cells = " " * len(loads)
        else:
            cells = "".join(
                _HEAT_RAMP[min(int(v / peak * (len(_HEAT_RAMP) - 1)),
                               len(_HEAT_RAMP) - 1)]
                for v in loads
            )
        lines.append(f"step {r['step']:>4} |{cells}|")
    lines += ["```", ""]
    return lines


def _section_metrics(records: list[dict]) -> list[str]:
    metrics = [r for r in records if r.get("record") == "metric"]
    if not metrics:
        return []
    lines = [
        "## Metrics",
        "",
        "| metric | type | labels | value |",
        "| --- | --- | --- | --- |",
    ]
    for r in sorted(metrics, key=lambda r: (r["metric"], r.get("labels", ""))):
        if r["type"] == "histogram":
            value = (f"count={_fmt(r['count'])} mean={_fmt(r['mean'])} "
                     f"p50={_fmt(r['p50'])} p95={_fmt(r['p95'])} "
                     f"max={_fmt(r['max'])}")
        else:
            value = _fmt(r["value"])
        lines.append(
            f"| {r['metric']} | {r['type']} | {r.get('labels', '') or '-'} | {value} |"
        )
    lines.append("")
    return lines


def _section_slo(records: list[dict]) -> list[str]:
    rows = []
    for s in records:
        if s.get("record") != "summary":
            continue
        for prefix, label in (("ttft_", "ttft"), ("token_", "token latency")):
            if s.get(f"{prefix}count"):
                rows.append(
                    (label, s[f"{prefix}count"], s[f"{prefix}p50"],
                     s[f"{prefix}p95"], s[f"{prefix}max"])
                )
    if not rows:
        return []
    lines = [
        "## Serving SLO",
        "",
        "| latency | count | p50 (s) | p95 (s) | max (s) |",
        "| --- | --- | --- | --- | --- |",
    ]
    for label, count, p50, p95, mx in rows:
        lines.append(
            f"| {label} | {int(count)} | {_fmt(p50)} | {_fmt(p95)} | {_fmt(mx)} |"
        )
    lines.append("")
    return lines


def _section_spans(records: list[dict]) -> list[str]:
    spans = [r for r in records if r.get("record") == "span"]
    if not spans:
        return []
    roots = [s for s in spans if s.get("parent_id") is None]
    by_kind: dict[str, list[float]] = {}
    for s in spans:
        by_kind.setdefault(s.get("kind", "span"), []).append(
            float(s.get("duration") or 0.0)
        )
    lines = [
        "## Spans",
        "",
        f"{len(spans)} spans in {len(roots)} trees.",
        "",
        "| kind | spans | total virtual s | mean virtual s |",
        "| --- | --- | --- | --- |",
    ]
    for kind in sorted(by_kind):
        durs = by_kind[kind]
        total = sum(durs)
        lines.append(
            f"| {kind} | {len(durs)} | {_fmt(total)} | "
            f"{_fmt(total / len(durs))} |"
        )
    lines.append("")
    return lines


def _section_losses(records: list[dict]) -> list[str]:
    steps = [
        r for r in records
        if "step" in r and "loss" in r and r.get("record") in (None, "step")
    ]
    if not steps:
        return []
    steps = sorted(steps, key=lambda r: r["step"])
    first, last = steps[0], steps[-1]
    lines = [
        "## Training loss",
        "",
        f"{len(steps)} steps; loss {_fmt(first['loss'])} "
        f"(step {first['step']}) -> {_fmt(last['loss'])} (step {last['step']}).",
        "",
    ]
    return lines


def _section_events(records: list[dict]) -> list[str]:
    events = [r for r in records if r.get("record") == "event" and "kind" in r]
    if not events:
        return []
    lines = [
        "## Lifecycle events",
        "",
        "| t (virtual s) | kind | detail |",
        "| --- | --- | --- |",
    ]
    for e in events:
        detail = " ".join(
            f"{k}={_fmt(e[k])}" for k in sorted(e)
            if k not in ("record", "kind", "t")
        )
        lines.append(f"| {_fmt(e.get('t', 0.0))} | {e['kind']} | {detail or '-'} |")
    lines.append("")
    return lines


def build_report(
    records: Sequence[Mapping[str, Any]], title: str = "Run report"
) -> str:
    """Render typed run records into one deterministic markdown report.

    Sections render only when their records are present, so the same
    function serves ``distributed``, ``resilient``, and ``serve`` output.
    """
    records = [dict(r) for r in records]
    lines = [f"# {title}", "", f"{len(records)} records.", ""]
    for section in (
        _section_summary,
        _section_phases,
        _section_traffic,
        _section_comm,
        _section_router,
        _section_metrics,
        _section_slo,
        _section_spans,
        _section_losses,
        _section_events,
    ):
        lines += section(records)
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"


def generate_run_report(
    metrics_path: str | Path,
    out_path: str | Path | None = None,
    title: str | None = None,
) -> str:
    """Read a run's JSONL metrics file and render its markdown report.

    Returns the report text; also writes it to ``out_path`` when given.
    """
    from repro.train.metrics import read_jsonl

    metrics_path = Path(metrics_path)
    if metrics_path.suffix.lower() != ".jsonl":
        raise ConfigError(
            f"run reports need a .jsonl metrics file, got {metrics_path.name!r}"
        )
    records = read_jsonl(metrics_path)
    report = build_report(records, title=title or f"Run report: {metrics_path.name}")
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(report)
    return report
