"""Labeled metric registry: Counter / Gauge / Histogram with tag sets.

This is the substrate every entry point (strategy trainers, the elastic
:class:`~repro.resilience.Supervisor`, the serving engine) emits into, via
the :class:`~repro.simmpi.RunContext` spine that owns one registry per
run. Design constraints, in order:

1. **Near-zero cost when disabled.** A run launched without
   ``observe=True`` carries :data:`NULL_REGISTRY`: every factory call
   returns a shared no-op instrument whose ``inc``/``set``/``observe``
   bodies are empty, so instrumented hot paths pay one attribute lookup
   and one no-op call. Verified by a micro-timing test and by a
   loss-trajectory-equality test (observability must never perturb
   numerics).
2. **Deterministic export.** Series are keyed by ``(name, sorted labels)``
   and every snapshot/exposition walks them in sorted order, so two runs
   with the same seed serialize byte-identically.
3. **Thread safety under the engine's model.** One Python thread per
   simulated rank may hit the same counter concurrently; creation and
   mutation are lock-guarded so concurrent increments sum exactly.

Values are plain floats on the *virtual* timeline — sample timestamps,
where present, are simulated-machine seconds.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: Canonical label encoding: a tuple of (key, str(value)) pairs sorted by
#: key — hashable, order-independent at the call site, sorted on export.
LabelSet = tuple  # tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Common shape of one metric series (name + frozen label set)."""

    kind = "metric"
    __slots__ = ("name", "labels", "_lock")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tags = ", ".join(f"{k}={v}" for k, v in self.labels)
        return f"{type(self).__name__}({self.name}{{{tags}}})"


class Counter(_Instrument):
    """Monotonically increasing total (steps, bytes, tokens, restarts).

    Passing ``t`` (virtual seconds) to :meth:`inc` additionally records a
    ``(t, amount)`` mark, which :mod:`repro.obs.timeseries` turns into
    windowed rates; untimed increments stay exactly as cheap as before.
    """

    kind = "counter"
    __slots__ = ("value", "_marks")

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.value = 0.0
        self._marks: list[tuple[float, float]] = []

    def inc(self, amount: float = 1.0, t: float | None = None) -> None:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self.value += amount
            if t is not None:
                self._marks.append((float(t), float(amount)))

    @property
    def marks(self) -> list[tuple[float, float]]:
        """Timestamped ``(t, amount)`` increments, in record order."""
        return list(self._marks)


class Gauge(_Instrument):
    """Last-written value (loss, imbalance, world size)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += float(amount)


class Histogram(_Instrument):
    """Sample distribution with percentile summaries (latencies, loads).

    Samples are stored raw (runs here are small worlds on a simulator);
    summaries flatten to count/sum/mean/p50/p95/max like
    :class:`~repro.train.metrics.LatencyStats`. Passing ``t`` (virtual
    seconds) to :meth:`observe` additionally records a ``(t, value)``
    pair for the windowed views in :mod:`repro.obs.timeseries`.
    """

    kind = "histogram"
    __slots__ = ("_samples", "_stamps")

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self._samples: list[float] = []
        self._stamps: list[tuple[float, float]] = []

    def observe(self, value: float, t: float | None = None) -> None:
        with self._lock:
            self._samples.append(float(value))
            if t is not None:
                self._stamps.append((float(t), float(value)))

    def observe_many(self, values: Iterable[float]) -> None:
        with self._lock:
            self._samples.extend(float(v) for v in values)

    @property
    def stamped(self) -> list[tuple[float, float]]:
        """Timestamped ``(t, value)`` observations, in record order."""
        return list(self._stamps)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        return float(np.sum(self._samples)) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    def summary(self) -> dict[str, float]:
        if not self._samples:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": float(max(self._samples)),
        }


class MetricRegistry:
    """Get-or-create store of labeled instruments, one per run.

    ``registry.counter("comm_bytes", op="alltoall").inc(n)`` — the first
    call with a given (name, labels) pair creates the series, later calls
    return the same object. Asking for an existing name with a different
    instrument kind raises :class:`~repro.errors.ConfigError` (one name,
    one type — the Prometheus rule).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple[str, LabelSet], _Instrument] = {}

    # -- factories ------------------------------------------------------ #

    def _get(self, cls: type, name: str, labels: dict[str, Any]) -> Any:
        if not name:
            raise ConfigError("metric name must be non-empty")
        key = (name, _label_key(labels))
        with self._lock:
            found = self._series.get(key)
            if found is None:
                found = cls(name, key[1])
                self._series[key] = found
            elif not isinstance(found, cls):
                raise ConfigError(
                    f"metric {name!r} already registered as {found.kind}, "
                    f"cannot re-register as {cls.kind}"
                )
            return found

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- introspection / export ---------------------------------------- #

    def __len__(self) -> int:
        return len(self._series)

    def series(self) -> list[_Instrument]:
        """Every instrument, sorted by (name, labels) — deterministic."""
        with self._lock:
            return [self._series[k] for k in sorted(self._series)]

    def snapshot(self) -> list[dict[str, Any]]:
        """One plain dict per series, in deterministic order.

        Counters and gauges carry ``value``; histograms carry the summary
        fields (count/sum/mean/p50/p95/max). Labels flatten to a sorted
        ``k=v,...`` string so records are scalar-only (CSV/JSONL safe).
        """
        out = []
        for inst in self.series():
            rec: dict[str, Any] = {
                "metric": inst.name,
                "type": inst.kind,
                "labels": ",".join(f"{k}={v}" for k, v in inst.labels),
            }
            if isinstance(inst, Histogram):
                rec.update(inst.summary())
            else:
                rec["value"] = inst.value
            out.append(rec)
        return out

    def merge(self, other: "MetricRegistry | NullRegistry") -> None:
        """Fold another registry in (session aggregation across launches).

        Counters add, gauges take the absorbed value (the later launch
        wins), histograms concatenate samples.
        """
        if not getattr(other, "enabled", False):
            return
        for inst in other.series():
            labels = inst.label_dict
            if isinstance(inst, Counter):
                mine = self.counter(inst.name, **labels)
                mine.inc(inst.value)
                mine._marks.extend(inst._marks)
            elif isinstance(inst, Gauge):
                self.gauge(inst.name, **labels).set(inst.value)
            elif isinstance(inst, Histogram):
                mine = self.histogram(inst.name, **labels)
                mine.observe_many(inst._samples)
                mine._stamps.extend(inst._stamps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricRegistry({len(self)} series)"


class _NullInstrument:
    """Shared do-nothing instrument returned by :class:`NullRegistry`."""

    kind = "null"
    name = ""
    labels: LabelSet = ()
    label_dict: dict[str, str] = {}
    value = 0.0
    count = 0
    sum = 0.0
    marks: list = []
    stamped: list = []

    def inc(self, amount: float = 1.0, t: float | None = None) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float, t: float | None = None) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {"count": 0, "sum": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "max": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every factory returns one shared no-op.

    Instrumented code never branches on whether observability is on — it
    calls ``context.metrics.counter(...).inc()`` unconditionally and the
    null path costs two attribute lookups and an empty call. Hot loops
    that build label dicts per call can still guard on
    ``registry.enabled`` to skip even that.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> Any:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> Any:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> Any:
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def series(self) -> list:
        return []

    def snapshot(self) -> list:
        return []

    def merge(self, other: Any) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullRegistry()"


#: The process-wide disabled registry (stateless, safe to share).
NULL_REGISTRY = NullRegistry()
