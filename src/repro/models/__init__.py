"""Model zoo: modules, layers, attention, MoE layer, transformer LM."""

from repro.models.module import Module, Parameter
from repro.models.layers import MLP, Dropout, Embedding, LayerNorm, Linear
from repro.models.attention import CausalSelfAttention
from repro.models.moe_layer import MoELayer
from repro.models.generate import generate
from repro.models.transformer import MoELanguageModel, TransformerBlock, build_model
from repro.models.configs import (
    BRAIN_SCALE_CONFIGS,
    ModelConfig,
    bagualu_1_93t,
    bagualu_14_5t,
    bagualu_174t,
    small_config,
    tiny_config,
)

__all__ = [
    "Module",
    "Parameter",
    "MLP",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "CausalSelfAttention",
    "MoELayer",
    "MoELanguageModel",
    "TransformerBlock",
    "build_model",
    "generate",
    "BRAIN_SCALE_CONFIGS",
    "ModelConfig",
    "bagualu_1_93t",
    "bagualu_14_5t",
    "bagualu_174t",
    "small_config",
    "tiny_config",
]
