"""Autoregressive sampling from a trained language model."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.transformer import MoELanguageModel
from repro.tensor import no_grad

__all__ = ["generate"]


def generate(
    model: MoELanguageModel,
    prompt: np.ndarray,
    max_new_tokens: int,
    temperature: float = 1.0,
    top_k: int | None = None,
    rng: np.random.Generator | None = None,
    greedy: bool = False,
) -> np.ndarray:
    """Sample a continuation of ``prompt`` token by token.

    Parameters
    ----------
    model:
        The language model (switched to eval mode for the duration).
    prompt:
        Integer array (B, T0) of prompt tokens; T0 >= 1.
    max_new_tokens:
        How many tokens to append.
    temperature:
        Softmax temperature (> 0); lower is sharper.
    top_k:
        Keep only the k most likely tokens before sampling.
    rng:
        Generator for sampling (defaults to a fresh seed-0 generator).
    greedy:
        Take the argmax instead of sampling (ignores temperature/top_k
        randomness but still applies the top_k mask for consistency).

    Returns
    -------
    np.ndarray
        (B, T0 + max_new_tokens) tokens, with the prompt as prefix.
    """
    prompt = np.asarray(prompt)
    if prompt.ndim != 2 or prompt.shape[1] < 1:
        raise ConfigError(f"prompt must be (B, T>=1), got shape {prompt.shape}")
    if max_new_tokens < 1:
        raise ConfigError(f"max_new_tokens must be >= 1, got {max_new_tokens}")
    if temperature <= 0:
        raise ConfigError(f"temperature must be > 0, got {temperature}")
    vocab = model.config.vocab_size
    if top_k is not None and not 1 <= top_k <= vocab:
        raise ConfigError(f"top_k must be in [1, {vocab}], got {top_k}")
    rng = rng or np.random.default_rng(0)

    was_training = model.training
    model.eval()
    tokens = prompt.astype(np.int64)
    try:
        with no_grad():
            for _ in range(max_new_tokens):
                window = tokens[:, -model.config.max_seq_len:]
                logits = model(window).data[:, -1, :]  # (B, V)
                logits = logits / temperature
                if top_k is not None and top_k < vocab:
                    kth = np.partition(logits, -top_k, axis=-1)[:, -top_k][:, None]
                    logits = np.where(logits < kth, -np.inf, logits)
                if greedy:
                    nxt = logits.argmax(axis=-1)
                else:
                    shifted = logits - logits.max(axis=-1, keepdims=True)
                    probs = np.exp(shifted)
                    probs /= probs.sum(axis=-1, keepdims=True)
                    nxt = np.array(
                        [rng.choice(vocab, p=p) for p in probs], dtype=np.int64
                    )
                tokens = np.concatenate([tokens, nxt[:, None]], axis=1)
    finally:
        if was_training:
            model.train()
    return tokens
