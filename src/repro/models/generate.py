"""Autoregressive sampling from a trained language model."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.transformer import MoELanguageModel
from repro.serve.kvcache import KVCache
from repro.tensor import no_grad

__all__ = ["generate"]


def generate(
    model: MoELanguageModel,
    prompt: np.ndarray,
    max_new_tokens: int,
    temperature: float = 1.0,
    top_k: int | None = None,
    rng: np.random.Generator | None = None,
    greedy: bool = False,
    use_cache: bool = True,
) -> np.ndarray:
    """Sample a continuation of ``prompt`` token by token.

    Parameters
    ----------
    model:
        The language model (switched to eval mode for the duration).
    prompt:
        Integer array (B, T0) of prompt tokens; T0 >= 1.
    max_new_tokens:
        How many tokens to append.
    temperature:
        Softmax temperature (> 0); lower is sharper.
    top_k:
        Keep only the k most likely tokens before sampling.
    rng:
        Generator for sampling (defaults to a fresh seed-0 generator when
        sampling; unused — and not constructed — when ``greedy``).
    greedy:
        Take the argmax instead of sampling (ignores temperature/top_k
        randomness but still applies the top_k mask for consistency).
    use_cache:
        Decode through a :class:`~repro.serve.kvcache.KVCache`: prefill
        the prompt once, then O(1) work per token. Past ``max_seq_len``
        the sliding window re-prefills (positions shift), matching the
        uncached path's numerics exactly. ``False`` re-runs the full
        window every token (the sequential baseline).

    Returns
    -------
    np.ndarray
        (B, T0 + max_new_tokens) tokens, with the prompt as prefix.
    """
    prompt = np.asarray(prompt)
    if prompt.ndim != 2 or prompt.shape[1] < 1:
        raise ConfigError(f"prompt must be (B, T>=1), got shape {prompt.shape}")
    if not np.issubdtype(prompt.dtype, np.integer):
        raise ConfigError(
            f"prompt must be an integer token array, got dtype {prompt.dtype}"
        )
    if max_new_tokens < 1:
        raise ConfigError(f"max_new_tokens must be >= 1, got {max_new_tokens}")
    if temperature <= 0:
        raise ConfigError(f"temperature must be > 0, got {temperature}")
    vocab = model.config.vocab_size
    if top_k is not None and not 1 <= top_k <= vocab:
        raise ConfigError(f"top_k must be in [1, {vocab}], got {top_k}")
    if not greedy and rng is None:
        rng = np.random.default_rng(0)

    was_training = model.training
    model.eval()
    tokens = prompt.astype(np.int64)
    window_len = model.config.max_seq_len
    cache = (
        KVCache.for_model(model, batch_size=tokens.shape[0], capacity=window_len)
        if use_cache
        else None
    )
    try:
        with no_grad():
            for _ in range(max_new_tokens):
                window = tokens[:, -window_len:]
                if cache is None:
                    logits = model(window).data[:, -1, :]  # (B, V)
                elif cache.max_length == window.shape[1] - 1:
                    # Steady state: only the newest token is uncached.
                    logits = model(tokens[:, -1:], kv_cache=cache).data[:, -1, :]
                else:
                    # First step — or the window slid past max_seq_len, so
                    # every cached position's embedding changed: re-prefill.
                    cache.reset()
                    logits = model(window, kv_cache=cache).data[:, -1, :]
                logits = logits / temperature
                if top_k is not None and top_k < vocab:
                    kth = np.partition(logits, -top_k, axis=-1)[:, -top_k][:, None]
                    logits = np.where(logits < kth, -np.inf, logits)
                if greedy:
                    nxt = logits.argmax(axis=-1)
                else:
                    shifted = logits - logits.max(axis=-1, keepdims=True)
                    probs = np.exp(shifted)
                    probs /= probs.sum(axis=-1, keepdims=True)
                    nxt = np.array(
                        [rng.choice(vocab, p=p) for p in probs], dtype=np.int64
                    )
                tokens = np.concatenate([tokens, nxt[:, None]], axis=1)
    finally:
        if was_training:
            model.train()
    return tokens
