"""Transformer blocks and the MoE language model."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.attention import CausalSelfAttention
from repro.models.configs import ModelConfig
from repro.models.layers import MLP, Dropout, Embedding, LayerNorm, Linear
from repro.models.module import Module
from repro.models.moe_layer import MoELayer
from repro.tensor import Tensor, cross_entropy
from repro.tensor.checkpoint import checkpoint
from repro.utils.seeding import derive_seed

__all__ = ["TransformerBlock", "MoELanguageModel", "build_model"]


class TransformerBlock(Module):
    """Pre-norm block: ``x + attn(ln(x))`` then ``x + ffn(ln(x))``.

    The FFN is either a dense :class:`MLP` or a :class:`MoELayer`.
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        ffn: Module,
        rng: np.random.Generator,
        dropout_p: float = 0.0,
        dtype: str = "fp32",
        recompute: bool = False,
    ):
        super().__init__()
        self.ln_attn = LayerNorm(d_model, dtype=dtype)
        self.attn = CausalSelfAttention(d_model, n_heads, rng, dropout_p=dropout_p, dtype=dtype)
        self.ln_ffn = LayerNorm(d_model, dtype=dtype)
        self.ffn = ffn
        self.drop = Dropout(dropout_p, rng) if dropout_p > 0 else None
        #: Recompute the attention sublayer (and dense FFN) in backward.
        #: MoE sublayers are never checkpointed: their aux loss and
        #: collectives must run exactly once per step.
        self.recompute = recompute

    def _attn_sublayer(self, x: Tensor, kv=None, valid=None) -> Tensor:
        return self.attn(self.ln_attn(x), kv=kv, valid=valid)

    def _ffn_sublayer(self, x: Tensor) -> Tensor:
        return self.ffn(self.ln_ffn(x))

    def forward(self, x: Tensor, kv=None, valid=None) -> Tensor:
        use_ckpt = (
            self.recompute and self.training and self.drop is None and kv is None
        )
        if use_ckpt:
            h = checkpoint(self._attn_sublayer, x)
        else:
            h = self._attn_sublayer(x, kv=kv, valid=valid)
        if self.drop is not None:
            h = self.drop(h)
        x = x + h
        if use_ckpt and not self.is_moe:
            h = checkpoint(self._ffn_sublayer, x)
        else:
            h = self._ffn_sublayer(x)
        if self.drop is not None:
            h = self.drop(h)
        return x + h

    @property
    def is_moe(self) -> bool:
        return isinstance(self.ffn, MoELayer)


class MoELanguageModel(Module):
    """GPT-style causal LM whose FFN layers may be Mixture-of-Experts.

    Build from a :class:`~repro.models.configs.ModelConfig`; blocks at
    positions where ``(i + 1) % moe_every == 0`` get an MoE FFN, others a
    dense MLP (``moe_every=1`` makes every block MoE, the BaGuaLu layout).
    """

    def __init__(self, config: ModelConfig, seed: int = 0, moe_factory=None,
                 mlp_factory=None):
        """``moe_factory(layer_idx, rng) -> Module`` overrides how MoE FFNs
        are built — the hook :mod:`repro.parallel.moda` uses to substitute
        :class:`~repro.parallel.ep.DistributedMoELayer`. ``mlp_factory``
        does the same for the *dense* FFN blocks (positions not on the
        ``moe_every`` grid), which is how tensor parallelism swaps in
        :class:`~repro.parallel.tp.TensorParallelMLP`. Both factories must
        consume the shared per-block rng exactly like the layer they
        replace, so replicated weights stay bit-identical across ranks."""
        super().__init__()
        self.config = config
        # Every component draws from its own derived seed, so any *slice*
        # of the model (e.g. one pipeline stage) can be constructed
        # independently with identical weights.
        base = derive_seed(seed, "model", config.name)
        dt = config.dtype

        emb_rng = np.random.default_rng(derive_seed(base, "emb"))
        self.tok_emb = Embedding(config.vocab_size, config.d_model, emb_rng, dtype=dt)
        self.pos_emb = Embedding(config.max_seq_len, config.d_model, emb_rng, dtype=dt)
        self.emb_drop = Dropout(config.dropout, emb_rng) if config.dropout > 0 else None

        blocks = []
        for i in range(config.n_layers):
            rng = np.random.default_rng(derive_seed(base, "block", i))
            if (i + 1) % config.moe_every == 0:
                if moe_factory is not None:
                    ffn: Module = moe_factory(i, rng)
                else:
                    ffn = MoELayer(
                        config.d_model,
                        config.d_ff,
                        config.num_experts,
                        rng,
                        gate=config.gate,
                        top_k=config.top_k,
                        capacity_factor=config.capacity_factor,
                        aux_weight=config.aux_weight,
                        z_weight=config.z_weight,
                        dtype=dt,
                    )
            elif mlp_factory is not None:
                ffn = mlp_factory(i, rng)
            else:
                ffn = MLP(config.d_model, config.d_ff, rng, dtype=dt)
            blocks.append(
                TransformerBlock(
                    config.d_model, config.n_heads, ffn, rng,
                    dropout_p=config.dropout, dtype=dt,
                    recompute=config.recompute,
                )
            )
        self.register_module_list("blocks", blocks)
        head_rng = np.random.default_rng(derive_seed(base, "head"))
        self.ln_f = LayerNorm(config.d_model, dtype=dt)
        self.lm_head = Linear(config.d_model, config.vocab_size, head_rng, dtype=dt)

    # ------------------------------------------------------------------ #
    # Forward / loss
    # ------------------------------------------------------------------ #

    def forward(
        self,
        tokens: np.ndarray,
        kv_cache=None,
        rows: np.ndarray | None = None,
        valid: np.ndarray | None = None,
    ) -> Tensor:
        """Logits (B, T, V) for integer token ids (B, T).

        With ``kv_cache`` (a :class:`~repro.serve.kvcache.KVCache`) the
        input holds only the *new* tokens per row; attention reads cached
        history, positions continue from each row's committed length, and
        the cache is committed once after all blocks ran. ``rows`` maps
        batch entries to cache rows (default 0..B-1) and ``valid[b]``
        bounds the real (non-padding) tokens of row b — the incremental
        path continuous batching uses for ragged prefill + decode.
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ConfigError(f"tokens must be (B, T), got shape {tokens.shape}")
        b, t = tokens.shape
        if kv_cache is None:
            if t > self.config.max_seq_len:
                raise ConfigError(
                    f"sequence length {t} exceeds max_seq_len={self.config.max_seq_len}"
                )
            pos = np.arange(t)
            x = self.tok_emb(tokens) + self.pos_emb(pos)
            if self.emb_drop is not None:
                x = self.emb_drop(x)
            for block in self.blocks:
                x = block(x)
            x = self.ln_f(x)
            return self.lm_head(x)

        rows = np.arange(b) if rows is None else np.asarray(rows, dtype=np.int64)
        if rows.shape != (b,):
            raise ConfigError(f"rows must be (B,)={b}, got shape {rows.shape}")
        if valid is None:
            valid = np.full(b, t, dtype=np.int64)
        else:
            valid = np.asarray(valid, dtype=np.int64)
            if valid.shape != (b,) or (valid < 1).any() or (valid > t).any():
                raise ConfigError(f"valid must be (B,) in [1, {t}], got {valid}")
        ctx = kv_cache.lengths[rows]
        if int((ctx + valid).max()) > self.config.max_seq_len:
            raise ConfigError(
                f"cached decode to length {int((ctx + valid).max())} exceeds "
                f"max_seq_len={self.config.max_seq_len}; reset() the row and "
                "re-prefill a window"
            )
        # Positions continue where each row's cache left off; padding
        # positions are clamped into the embedding table (their outputs
        # are discarded by the caller).
        pos = np.minimum(
            ctx[:, None] + np.arange(t)[None, :], self.config.max_seq_len - 1
        )
        x = self.tok_emb(tokens) + self.pos_emb(pos)
        if self.emb_drop is not None:
            x = self.emb_drop(x)
        for i, block in enumerate(self.blocks):
            x = block(x, kv=kv_cache.layer(i, rows), valid=valid)
        x = self.ln_f(x)
        logits = self.lm_head(x)
        kv_cache.commit(rows, valid)
        return logits

    def moe_layers(self) -> list[MoELayer]:
        """All MoE FFN layers in depth order (local or distributed —
        anything exposing the MoE bookkeeping attributes)."""
        return [b.ffn for b in self.blocks if hasattr(b.ffn, "last_aux_loss")]

    def aux_loss(self) -> Tensor | None:
        """Sum of the auxiliary losses from the most recent forward."""
        losses = [m.last_aux_loss for m in self.moe_layers() if m.last_aux_loss is not None]
        if not losses:
            return None
        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        return total

    def loss(self, tokens: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean cross-entropy over (B, T) targets plus auxiliary losses."""
        logits = self.forward(tokens)
        b, t, v = logits.shape
        ce = cross_entropy(logits.reshape(b * t, v), np.asarray(targets).reshape(-1))
        aux = self.aux_loss()
        return ce if aux is None else ce + aux

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def expert_load(self) -> np.ndarray | None:
        """Summed per-expert loads from the most recent forward."""
        layers = self.moe_layers()
        if not layers or layers[0].last_load is None:
            return None
        total = np.zeros(self.config.num_experts, dtype=np.int64)
        for m in layers:
            if m.last_load is not None:
                total += m.last_load
        return total


def build_model(config: ModelConfig, seed: int = 0) -> MoELanguageModel:
    """Factory mirroring the config presets."""
    return MoELanguageModel(config, seed=seed)
