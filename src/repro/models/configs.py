"""Model configurations, including the brain-scale presets.

The paper's headline models (1.93 T, 14.5 T, 174 T parameters) cannot be
instantiated in memory; their configs exist for the analytic performance
model (:mod:`repro.perf`) and the config table (experiment T1). Exact layer
dimensions were not published in a form available to this reproduction, so
the presets are *reconstructed*: GPT-style backbone dimensions with the
expert count chosen to hit the headline parameter totals (the quantity that
drives every scaling result).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

__all__ = [
    "ModelConfig",
    "tiny_config",
    "small_config",
    "bagualu_1_93t",
    "bagualu_14_5t",
    "bagualu_174t",
    "BRAIN_SCALE_CONFIGS",
]


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of an MoE transformer language model."""

    vocab_size: int = 32000
    max_seq_len: int = 1024
    d_model: int = 1024
    n_layers: int = 24
    n_heads: int = 16
    d_ff: int = 4096
    num_experts: int = 32
    top_k: int = 1
    #: Every ``moe_every``-th block uses an MoE FFN (1 = all blocks).
    moe_every: int = 1
    gate: str = "topk"
    capacity_factor: float | None = None
    aux_weight: float = 1e-2
    z_weight: float = 0.0
    dropout: float = 0.0
    #: Recompute block activations in backward (activation checkpointing).
    #: Requires dropout == 0 (segments must replay deterministically).
    recompute: bool = False
    dtype: str = "fp32"
    name: str = "custom"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ConfigError(
                f"d_model={self.d_model} not divisible by n_heads={self.n_heads}"
            )
        if self.moe_every < 1:
            raise ConfigError(f"moe_every must be >= 1, got {self.moe_every}")
        if not 1 <= self.top_k <= self.num_experts:
            raise ConfigError(
                f"top_k={self.top_k} must be in [1, num_experts={self.num_experts}]"
            )
        if self.recompute and self.dropout > 0:
            raise ConfigError(
                "recompute requires dropout == 0 (checkpointed segments "
                "must replay deterministically)"
            )

    # ------------------------------------------------------------------ #
    # Analytic parameter counts (exact for the models we can instantiate;
    # they're validated against Module.num_parameters in tests)
    # ------------------------------------------------------------------ #

    @property
    def num_moe_layers(self) -> int:
        return len([i for i in range(self.n_layers) if (i + 1) % self.moe_every == 0])

    @property
    def num_dense_ffn_layers(self) -> int:
        return self.n_layers - self.num_moe_layers

    @property
    def attention_params(self) -> int:
        # qkv (D x 3D + 3D) + proj (D x D + D)
        per_layer = self.d_model * 3 * self.d_model + 3 * self.d_model
        per_layer += self.d_model * self.d_model + self.d_model
        return self.n_layers * per_layer

    @property
    def ffn_expert_params(self) -> int:
        """Parameters of a single expert MLP."""
        return (
            self.d_model * self.d_ff + self.d_ff
            + self.d_ff * self.d_model + self.d_model
        )

    @property
    def moe_params(self) -> int:
        """All expert + router parameters across MoE layers."""
        router = self.d_model * self.num_experts
        return self.num_moe_layers * (self.num_experts * self.ffn_expert_params + router)

    @property
    def dense_ffn_params(self) -> int:
        return self.num_dense_ffn_layers * self.ffn_expert_params

    @property
    def layernorm_params(self) -> int:
        # Two LN per block + final LN, each with weight + bias.
        return (2 * self.n_layers + 1) * 2 * self.d_model

    @property
    def embedding_params(self) -> int:
        # Token embedding + learned positions + untied LM head.
        return (
            self.vocab_size * self.d_model
            + self.max_seq_len * self.d_model
            + self.d_model * self.vocab_size + self.vocab_size
        )

    @property
    def total_params(self) -> int:
        """Total parameter count (dense + experts)."""
        return (
            self.attention_params
            + self.moe_params
            + self.dense_ffn_params
            + self.layernorm_params
            + self.embedding_params
        )

    @property
    def active_params_per_token(self) -> int:
        """Parameters touched by one token (dense + top_k experts)."""
        dense = (
            self.attention_params
            + self.dense_ffn_params
            + self.layernorm_params
            + self.embedding_params
        )
        router = self.num_moe_layers * self.d_model * self.num_experts
        active_experts = self.num_moe_layers * self.top_k * self.ffn_expert_params
        return dense + router + active_experts

    def scaled(self, **changes) -> "ModelConfig":
        """Copy with fields replaced."""
        return replace(self, **changes)


def tiny_config(**overrides) -> ModelConfig:
    """Laptop/test scale: trains in seconds on CPU."""
    base = ModelConfig(
        vocab_size=128,
        max_seq_len=32,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        num_experts=4,
        top_k=1,
        name="tiny",
    )
    return base.scaled(**overrides) if overrides else base


def small_config(**overrides) -> ModelConfig:
    """A few-minute CPU config for convergence experiments."""
    base = ModelConfig(
        vocab_size=512,
        max_seq_len=64,
        d_model=64,
        n_layers=4,
        n_heads=4,
        d_ff=256,
        num_experts=8,
        top_k=2,
        name="small",
    )
    return base.scaled(**overrides) if overrides else base


def _brain_scale(name: str, d_model: int, d_ff: int, n_layers: int, n_heads: int, num_experts: int) -> ModelConfig:
    return ModelConfig(
        vocab_size=151_851,  # CPM-style multimodal vocabulary size class
        max_seq_len=2048,
        d_model=d_model,
        n_layers=n_layers,
        n_heads=n_heads,
        d_ff=d_ff,
        num_experts=num_experts,
        top_k=1,
        moe_every=1,
        gate="balanced",
        dtype="fp16",
        name=name,
    )


def bagualu_1_93t() -> ModelConfig:
    """~1.93 T parameters (reconstructed dims; total matches headline)."""
    return _brain_scale("bagualu-1.93T", d_model=4096, d_ff=16384, n_layers=24, n_heads=32, num_experts=600)


def bagualu_14_5t() -> ModelConfig:
    """~14.5 T parameters — the paper's main trained model class."""
    return _brain_scale("bagualu-14.5T", d_model=4096, d_ff=16384, n_layers=48, n_heads=32, num_experts=2250)


def bagualu_174t() -> ModelConfig:
    """~174 T parameters — the brain-scale (synapse-count) configuration."""
    return _brain_scale("bagualu-174T", d_model=4096, d_ff=16384, n_layers=96, n_heads=32, num_experts=13500)


BRAIN_SCALE_CONFIGS = {
    "1.93T": bagualu_1_93t,
    "14.5T": bagualu_14_5t,
    "174T": bagualu_174t,
}
