"""Module system: parameter registration, state dicts, traversal.

A deliberately small fraction of the torch.nn.Module surface — enough for
optimizers, checkpointing, and parallel wrappers to treat models uniformly.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.errors import CheckpointError
from repro.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable leaf tensor (always ``requires_grad=True``).

    ``is_expert`` marks parameters that belong to a (sharded) MoE expert
    and ``is_tp`` those sharded over a tensor-parallel group; parallel
    wrappers use the flags to pick the right gradient-sync communicator
    (expert-data-parallel / same-TP-shard group vs the full world).
    """

    __slots__ = ("is_expert", "is_tp")

    def __init__(self, data: Any, dtype: str = "fp32", name: str | None = None):
        super().__init__(data, requires_grad=True, dtype=dtype, name=name)
        self.is_expert = False
        self.is_tp = False


class Module:
    """Base class for all model components."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Registration (automatic via attribute assignment)
    # ------------------------------------------------------------------ #

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            if value.name is None:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module_list(self, name: str, modules: list["Module"]) -> list["Module"]:
        """Register a list of submodules (e.g. transformer blocks, experts)."""
        for i, m in enumerate(modules):
            self._modules[f"{name}.{i}"] = m
        object.__setattr__(self, name, modules)
        return modules

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted-name, parameter) pairs in registration order."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters in registration order."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield self and every descendant module."""
        yield self
        for m in self._modules.values():
            yield from m.modules()

    def num_parameters(self) -> int:
        """Total trainable parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Train / eval and gradients
    # ------------------------------------------------------------------ #

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout etc.)."""
        for m in self.modules():
            object.__setattr__(m, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        With ``strict=True`` (default) the key sets and shapes must match
        exactly; otherwise missing keys are skipped.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise CheckpointError(
                    f"state dict mismatch: missing={missing[:5]}..., "
                    f"unexpected={unexpected[:5]}..."
                    if len(missing) > 5 or len(unexpected) > 5
                    else f"state dict mismatch: missing={missing}, unexpected={unexpected}"
                )
        for name, p in own.items():
            if name not in state:
                continue
            arr = np.asarray(state[name])
            if arr.shape != p.shape:
                raise CheckpointError(
                    f"shape mismatch for {name!r}: checkpoint {arr.shape}, model {p.shape}"
                )
            p.data = arr.astype(p.data.dtype).copy()

    # ------------------------------------------------------------------ #
    # Callable protocol
    # ------------------------------------------------------------------ #

    def forward(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)
