"""Multi-head causal self-attention."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.layers import Dropout, Linear
from repro.models.module import Module
from repro.tensor import Tensor, softmax

__all__ = ["CausalSelfAttention"]


class CausalSelfAttention(Module):
    """GPT-style masked multi-head self-attention.

    Input/output shape (B, T, D). Scores are masked with a lower-triangular
    causal mask; attention probabilities use the numerically-stable softmax.
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        rng: np.random.Generator,
        dropout_p: float = 0.0,
        init_std: float = 0.02,
        dtype: str = "fp32",
    ):
        super().__init__()
        if d_model % n_heads != 0:
            raise ConfigError(
                f"d_model={d_model} must be divisible by n_heads={n_heads}"
            )
        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        self.qkv = Linear(d_model, 3 * d_model, rng, init_std=init_std, dtype=dtype)
        self.proj = Linear(d_model, d_model, rng, init_std=init_std, dtype=dtype)
        self.drop = Dropout(dropout_p, rng) if dropout_p > 0 else None
        self._scale = 1.0 / np.sqrt(self.head_dim)

    def forward(self, x: Tensor) -> Tensor:
        b, t, d = x.shape
        if d != self.d_model:
            raise ConfigError(f"expected last dim {self.d_model}, got {d}")
        h, hd = self.n_heads, self.head_dim

        qkv = self.qkv(x)  # (B, T, 3D)
        qkv = qkv.reshape(b, t, 3, h, hd).transpose(2, 0, 3, 1, 4)  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = (q @ k.transpose(0, 1, 3, 2)) * self._scale  # (B, H, T, T)
        causal = np.triu(np.full((t, t), -1e9, dtype=np.float32), k=1)
        scores = scores + causal  # broadcast over (B, H)
        attn = softmax(scores, axis=-1)
        if self.drop is not None:
            attn = self.drop(attn)

        out = attn @ v  # (B, H, T, hd)
        out = out.transpose(0, 2, 1, 3).reshape(b, t, d)
        return self.proj(out)

    def flops_per_token(self, seq_len: int) -> int:
        """Forward FLOPs per token: projections + two score matmuls."""
        proj = 2 * self.d_model * 4 * self.d_model  # qkv + output proj
        scores = 2 * 2 * seq_len * self.d_model  # QK^T and attn @ V
        return proj + scores
