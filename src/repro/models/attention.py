"""Multi-head causal self-attention."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.layers import Dropout, Linear
from repro.models.module import Module
from repro.tensor import Tensor, is_grad_enabled, softmax

__all__ = ["CausalSelfAttention"]


class CausalSelfAttention(Module):
    """GPT-style masked multi-head self-attention.

    Input/output shape (B, T, D). Scores are masked with a lower-triangular
    causal mask; attention probabilities use the numerically-stable softmax.
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        rng: np.random.Generator,
        dropout_p: float = 0.0,
        init_std: float = 0.02,
        dtype: str = "fp32",
    ):
        super().__init__()
        if d_model % n_heads != 0:
            raise ConfigError(
                f"d_model={d_model} must be divisible by n_heads={n_heads}"
            )
        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        self.qkv = Linear(d_model, 3 * d_model, rng, init_std=init_std, dtype=dtype)
        self.proj = Linear(d_model, d_model, rng, init_std=init_std, dtype=dtype)
        self.drop = Dropout(dropout_p, rng) if dropout_p > 0 else None
        self._scale = 1.0 / np.sqrt(self.head_dim)

    def forward(self, x: Tensor, kv=None, valid: np.ndarray | None = None) -> Tensor:
        """Attend over ``x`` (and, with ``kv``, over cached history).

        ``kv`` is a :class:`~repro.serve.kvcache.KVLayerView`: the new
        tokens' keys/values are appended to it and queries attend over the
        full cached prefix, so a decode step is O(new tokens) instead of
        O(window). ``valid[b]`` marks how many of the ``t`` input positions
        of row b are real (the rest are batch padding and neither attend
        correctly nor enter the cache). The uncached path is untouched.
        """
        b, t, d = x.shape
        if d != self.d_model:
            raise ConfigError(f"expected last dim {self.d_model}, got {d}")
        h, hd = self.n_heads, self.head_dim

        qkv = self.qkv(x)  # (B, T, 3D)
        qkv = qkv.reshape(b, t, 3, h, hd).transpose(2, 0, 3, 1, 4)  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        if kv is None:
            scores = (q @ k.transpose(0, 1, 3, 2)) * self._scale  # (B, H, T, T)
            causal = np.triu(np.full((t, t), -1e9, dtype=np.float32), k=1)
            scores = scores + causal  # broadcast over (B, H)
            attn = softmax(scores, axis=-1)
            if self.drop is not None:
                attn = self.drop(attn)
            out = attn @ v  # (B, H, T, hd)
        else:
            if is_grad_enabled():
                raise ConfigError(
                    "kv_cache decoding is inference-only; wrap the forward "
                    "in no_grad()"
                )
            if valid is None:
                valid = np.full(b, t, dtype=np.int64)
            k_all, v_all, ctx = kv.append(k.data, v.data, valid)
            total = ctx + valid  # (B,) cached + new length per row
            tmax = k_all.shape[2]
            scores = (q @ Tensor(k_all).transpose(0, 1, 3, 2)) * self._scale
            # Causal over absolute positions: new token i of row b sits at
            # position ctx[b]+i and may see keys j <= that position (and
            # only real keys, j < total[b]). With ctx=0, valid=t this is
            # exactly the triangular mask of the uncached path.
            j = np.arange(tmax)
            pos = ctx[:, None] + np.arange(t)[None, :]  # (B, t)
            allowed = (j[None, None, :] <= pos[:, :, None]) & (
                j[None, None, :] < total[:, None, None]
            )
            mask = np.where(allowed, np.float32(0.0), np.float32(-1e9))
            scores = scores + mask[:, None, :, :]  # broadcast over heads
            attn = softmax(scores, axis=-1)
            if self.drop is not None:
                attn = self.drop(attn)
            out = attn @ Tensor(v_all)  # (B, H, T, hd)

        out = out.transpose(0, 2, 1, 3).reshape(b, t, d)
        return self.proj(out)

    def flops_per_token(self, seq_len: int) -> int:
        """Forward FLOPs per token: projections + two score matmuls."""
        proj = 2 * self.d_model * 4 * self.d_model  # qkv + output proj
        scores = 2 * 2 * seq_len * self.d_model  # QK^T and attn @ V
        return proj + scores
