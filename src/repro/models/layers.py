"""Basic layers: Linear, Embedding, LayerNorm, Dropout, MLP."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor, dropout as F_dropout, embedding as F_embedding, gelu, layer_norm
from repro.models.module import Module, Parameter

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "MLP"]


class Linear(Module):
    """Affine map ``y = x W + b`` with GPT-style init (normal, std=0.02)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        init_std: float = 0.02,
        dtype: str = "fp32",
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ConfigError("Linear features must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            rng.normal(0.0, init_std, size=(in_features, out_features)), dtype=dtype
        )
        self.bias = Parameter(np.zeros(out_features), dtype=dtype) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    @property
    def flops_per_token(self) -> int:
        """Forward multiply-add FLOPs per input row (2 * in * out)."""
        return 2 * self.in_features * self.out_features


class Embedding(Module):
    """Token embedding table (V, D)."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        init_std: float = 0.02,
        dtype: str = "fp32",
    ):
        super().__init__()
        if num_embeddings < 1 or embedding_dim < 1:
            raise ConfigError("Embedding sizes must be >= 1")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, init_std, size=(num_embeddings, embedding_dim)), dtype=dtype
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return F_embedding(self.weight, ids)


class LayerNorm(Module):
    """Learned layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5, dtype: str = "fp32"):
        super().__init__()
        if dim < 1:
            raise ConfigError("LayerNorm dim must be >= 1")
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim), dtype=dtype)
        self.bias = Parameter(np.zeros(dim), dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit RNG."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F_dropout(x, self.p, self._rng, training=self.training)


class MLP(Module):
    """Transformer feed-forward block: Linear -> GELU -> Linear.

    Also serves as a single MoE *expert* (BaGuaLu's experts are exactly
    this shape).
    """

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        rng: np.random.Generator,
        init_std: float = 0.02,
        dtype: str = "fp32",
    ):
        super().__init__()
        self.d_model = d_model
        self.d_ff = d_ff
        self.fc_in = Linear(d_model, d_ff, rng, init_std=init_std, dtype=dtype)
        self.fc_out = Linear(d_ff, d_model, rng, init_std=init_std, dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc_out(gelu(self.fc_in(x)))

    @property
    def flops_per_token(self) -> int:
        """Forward FLOPs per token (two matmuls)."""
        return self.fc_in.flops_per_token + self.fc_out.flops_per_token
