"""The (single-process) Mixture-of-Experts feed-forward layer.

This is the *functional reference* for the parallel implementation in
:mod:`repro.parallel.ep`: route tokens with a gate, run each expert on its
bucket, combine with differentiable weights, and expose the auxiliary
balance loss. The parallel version must produce exactly these numerics
(tested by equivalence tests), only distributing the expert compute.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.layers import MLP, Linear
from repro.models.module import Module
from repro.moe.balance import load_balance_loss, router_z_loss
from repro.moe.capacity import apply_capacity
from repro.moe.dispatch import build_dispatch, inference_keep_mask
from repro.moe.gates import Gate, make_gate
from repro.tensor import Tensor
from repro.tensor import ops as T
from repro.tensor.functional import gather_rows, scatter_rows

__all__ = ["MoELayer"]


class MoELayer(Module):
    """Sparsely-activated feed-forward layer with ``num_experts`` MLPs.

    Parameters
    ----------
    d_model / d_ff:
        Expert MLP dimensions.
    num_experts:
        Total experts in the layer.
    rng:
        RNG for parameter init and stochastic gates.
    gate:
        A :class:`~repro.moe.Gate` instance or strategy name
        ("topk", "noisy-topk", "balanced", "random").
    top_k:
        Experts per token (when ``gate`` is a name).
    capacity_factor:
        When set, enforce per-expert buffer capacity and drop overflow
        slots (Switch-style). ``None`` disables dropping.
    aux_weight / z_weight:
        Coefficients of the balance and router-z auxiliary losses,
        accumulated into :attr:`last_aux_loss` each forward.
    """

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        num_experts: int,
        rng: np.random.Generator,
        gate: Gate | str = "topk",
        top_k: int = 1,
        capacity_factor: float | None = None,
        aux_weight: float = 1e-2,
        z_weight: float = 0.0,
        init_std: float = 0.02,
        dtype: str = "fp32",
    ):
        super().__init__()
        if num_experts < 1:
            raise ConfigError(f"num_experts must be >= 1, got {num_experts}")
        self.d_model = d_model
        self.d_ff = d_ff
        self.num_experts = num_experts
        self.capacity_factor = capacity_factor
        self.aux_weight = aux_weight
        self.z_weight = z_weight
        self._rng = rng
        self.router = Linear(d_model, num_experts, rng, bias=False, init_std=init_std, dtype=dtype)
        self.register_module_list(
            "experts",
            [MLP(d_model, d_ff, rng, init_std=init_std, dtype=dtype) for _ in range(num_experts)],
        )
        for expert in self.experts:
            for p in expert.parameters():
                p.is_expert = True
        self.gate: Gate = (
            gate if isinstance(gate, Gate) else make_gate(gate, num_experts, top_k)
        )
        #: Auxiliary loss Tensor from the most recent forward.
        self.last_aux_loss: Tensor | None = None
        #: Per-expert token counts from the most recent forward.
        self.last_load: np.ndarray | None = None
        #: Fraction of (token, slot) pairs dropped by capacity last forward.
        self.last_drop_fraction: float = 0.0
        #: Eval-only absolute per-expert slot bound (serving engines set
        #: this; ``None`` disables it). See
        #: :func:`repro.moe.dispatch.inference_keep_mask`.
        self.inference_capacity: int | None = None

    def forward(self, x: Tensor) -> Tensor:
        orig_shape = x.shape
        if x.ndim == 3:
            b, t, d = x.shape
            x = x.reshape(b * t, d)
        elif x.ndim != 2:
            raise ConfigError(f"MoELayer expects (N, D) or (B, T, D), got {x.shape}")
        n, d = x.shape
        if d != self.d_model:
            raise ConfigError(f"expected last dim {self.d_model}, got {d}")

        logits = self.router(x)  # (N, E)
        gate_out = self.gate(logits, self._rng)
        self.last_load = gate_out.load

        if self.capacity_factor is not None:
            cap = apply_capacity(gate_out.indices, self.num_experts, self.capacity_factor)
            keep = cap.keep_mask
            self.last_drop_fraction = cap.drop_fraction
        else:
            keep = None
            self.last_drop_fraction = 0.0
        if not self.training and self.inference_capacity is not None:
            icap = inference_keep_mask(
                gate_out.indices, self.num_experts, self.inference_capacity
            )
            keep = icap if keep is None else keep & icap
            self.last_drop_fraction = float(1.0 - keep.mean())

        plan = build_dispatch(gate_out.indices, self.num_experts, keep)

        xs = gather_rows(x, plan.token_idx)  # (M, D)
        outs = []
        for e in range(self.num_experts):
            seg = plan.segment(e)
            if seg.stop == seg.start:
                continue
            outs.append((seg, self.experts[e](xs[seg])))
        if outs:
            ys = T.concat([y for _, y in outs], axis=0)  # (M, D), expert-sorted
        else:
            ys = xs * 0.0

        # Combine weights per dispatched slot, differentiable through the
        # router softmax.
        w = gate_out.combine_weights[plan.token_idx, plan.slot_idx]  # (M,)
        ys = ys * w.reshape(-1, 1)
        out = scatter_rows(ys, plan.token_idx, n)

        aux = load_balance_loss(gate_out.probs, gate_out.indices, self.num_experts)
        aux = aux * self.aux_weight
        if self.z_weight > 0:
            aux = aux + router_z_loss(logits) * self.z_weight
        self.last_aux_loss = aux

        if len(orig_shape) == 3:
            out = out.reshape(*orig_shape)
        return out

    @property
    def flops_per_token(self) -> int:
        """Forward FLOPs per token: router + top_k active experts."""
        router = 2 * self.d_model * self.num_experts
        expert = self.experts[0].flops_per_token if self.experts else 0
        return router + self.gate.top_k * expert
