"""repro: a laptop-scale reproduction of BaGuaLu (PPoPP'22).

BaGuaLu trains brain-scale Mixture-of-Experts pretrained models on the New
Generation Sunway supercomputer. This package reproduces the system in pure
Python over a simulated substrate:

* :mod:`repro.simmpi` — thread-per-rank simulated MPI with virtual clocks;
* :mod:`repro.network` — hierarchical topology + collective cost models;
* :mod:`repro.hardware` — SW26010-Pro-like machine specs and rooflines;
* :mod:`repro.tensor` — NumPy autograd with fp16/bf16 emulation;
* :mod:`repro.models` — transformer/MoE model zoo with brain-scale configs;
* :mod:`repro.moe` — gating, capacity, dispatch/combine, load balancing;
* :mod:`repro.parallel` — MoDa hybrid data x expert parallelism + baselines;
* :mod:`repro.amp` — mixed precision (master weights, dynamic loss scaling);
* :mod:`repro.train` — optimizers, schedules, trainer, checkpoints;
* :mod:`repro.data` — synthetic Zipf corpus and sharded dataloaders;
* :mod:`repro.perf` — analytic per-step time/FLOPS model up to 37 M cores;
* :mod:`repro.resilience` — stochastic fault models, a recovery
  supervisor with backoff, and elastic shrink-and-reshard restarts.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.1.0"

from repro.layout import ParallelLayout
from repro.resilience import (
    ElasticRunConfig,
    ElasticRunResult,
    Supervisor,
    run_elastic_training,
)
from repro.simmpi import FaultModel, FaultPlan, FlakyLink

__all__ = [
    "__version__",
    "ParallelLayout",
    "ElasticRunConfig",
    "ElasticRunResult",
    "FaultModel",
    "FaultPlan",
    "FlakyLink",
    "Supervisor",
    "run_elastic_training",
]
