"""repro: a laptop-scale reproduction of BaGuaLu (PPoPP'22).

BaGuaLu trains brain-scale Mixture-of-Experts pretrained models on the New
Generation Sunway supercomputer. This package reproduces the system in pure
Python over a simulated substrate:

* :mod:`repro.simmpi` — thread-per-rank simulated MPI with virtual clocks;
* :mod:`repro.network` — hierarchical topology + collective cost models;
* :mod:`repro.hardware` — SW26010-Pro-like machine specs and rooflines;
* :mod:`repro.tensor` — NumPy autograd with fp16/bf16 emulation;
* :mod:`repro.models` — transformer/MoE model zoo with brain-scale configs;
* :mod:`repro.moe` — gating, capacity, dispatch/combine, load balancing;
* :mod:`repro.parallel` — MoDa hybrid data x expert parallelism + baselines;
* :mod:`repro.amp` — mixed precision (master weights, dynamic loss scaling);
* :mod:`repro.train` — optimizers, schedules, trainer, checkpoints;
* :mod:`repro.data` — synthetic Zipf corpus and sharded dataloaders;
* :mod:`repro.perf` — analytic per-step time/FLOPS model up to 37 M cores;
* :mod:`repro.resilience` — stochastic fault models, a recovery
  supervisor with backoff, and elastic shrink-and-reshard restarts;
* :mod:`repro.serve` — KV-cached continuous-batching inference on EP ranks.

The *supported* public surface is the curated facade :mod:`repro.api`;
import entry points from there. The historical root-level re-exports below
still resolve, but lazily and with a :class:`DeprecationWarning` naming
the facade path.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

import warnings

__version__ = "1.2.0"

#: Root conveniences kept alive as deprecation shims -> repro.api.
_DEPRECATED_ROOT_EXPORTS = (
    "ParallelLayout",
    "ElasticRunConfig",
    "ElasticRunResult",
    "FaultModel",
    "FaultPlan",
    "FlakyLink",
    "Supervisor",
    "run_elastic_training",
)

__all__ = ["__version__", *_DEPRECATED_ROOT_EXPORTS]


def __getattr__(name):
    if name in _DEPRECATED_ROOT_EXPORTS:
        warnings.warn(
            f"importing {name!r} from the 'repro' root is deprecated; "
            f"use 'from repro.api import {name}'",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
