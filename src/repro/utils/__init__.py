"""Small shared utilities: seeding, humanized units, math helpers."""

from repro.utils.seeding import derive_seed, rng_for_rank
from repro.utils.units import (
    format_bytes,
    format_count,
    format_flops,
    format_time,
    parse_bytes,
)
from repro.utils.mathx import ceil_div, is_power_of_two, next_power_of_two, prod

__all__ = [
    "derive_seed",
    "rng_for_rank",
    "format_bytes",
    "format_count",
    "format_flops",
    "format_time",
    "parse_bytes",
    "ceil_div",
    "is_power_of_two",
    "next_power_of_two",
    "prod",
]
