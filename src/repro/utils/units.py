"""Humanized units for bytes, FLOP/s, counts, and durations.

The benchmark harnesses print paper-style tables, so consistent unit
formatting lives in one place.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = [
    "format_bytes",
    "format_count",
    "format_flops",
    "format_time",
    "parse_bytes",
]

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"]
_SI_UNITS = ["", "K", "M", "G", "T", "P", "E"]

_PARSE_SUFFIXES = {
    "b": 1,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
    "tb": 10**12,
    "kib": 2**10,
    "mib": 2**20,
    "gib": 2**30,
    "tib": 2**40,
}


def format_bytes(n: float, precision: int = 2) -> str:
    """Format a byte count with binary (1024-based) units: ``1536 -> '1.50 KiB'``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit in _BYTE_UNITS:
        if n < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{sign}{n:.0f} B"
            return f"{sign}{n:.{precision}f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def format_count(n: float, precision: int = 2) -> str:
    """Format a count with SI (1000-based) suffixes: ``14.5e12 -> '14.50T'``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit in _SI_UNITS:
        if n < 1000.0 or unit == _SI_UNITS[-1]:
            if unit == "":
                # Small integers print without a decimal point.
                return f"{sign}{n:.0f}" if n == int(n) else f"{sign}{n:.{precision}f}"
            return f"{sign}{n:.{precision}f}{unit}"
        n /= 1000.0
    raise AssertionError("unreachable")


def format_flops(n: float, precision: int = 2) -> str:
    """Format a FLOP/s figure: ``1.18e18 -> '1.18 EFLOPS'``."""
    return f"{format_count(n, precision)}FLOPS"


def format_time(seconds: float, precision: int = 2) -> str:
    """Format a duration choosing ns/us/ms/s/min/h automatically."""
    s = float(seconds)
    sign = "-" if s < 0 else ""
    s = abs(s)
    if s == 0.0:
        return "0 s"
    if s < 1e-6:
        return f"{sign}{s * 1e9:.{precision}f} ns"
    if s < 1e-3:
        return f"{sign}{s * 1e6:.{precision}f} us"
    if s < 1.0:
        return f"{sign}{s * 1e3:.{precision}f} ms"
    if s < 120.0:
        return f"{sign}{s:.{precision}f} s"
    if s < 7200.0:
        return f"{sign}{s / 60.0:.{precision}f} min"
    return f"{sign}{s / 3600.0:.{precision}f} h"


def parse_bytes(text: str) -> int:
    """Parse a human byte string (``'4 MiB'``, ``'1gb'``, ``'512'``) to bytes."""
    raw = text.strip().lower().replace(" ", "")
    if not raw:
        raise ConfigError("empty byte-size string")
    idx = len(raw)
    while idx > 0 and not raw[idx - 1].isdigit() and raw[idx - 1] != ".":
        idx -= 1
    number, suffix = raw[:idx], raw[idx:]
    if not number:
        raise ConfigError(f"no numeric part in byte-size string {text!r}")
    if suffix and suffix not in _PARSE_SUFFIXES:
        raise ConfigError(f"unknown byte-size suffix {suffix!r} in {text!r}")
    scale = _PARSE_SUFFIXES.get(suffix, 1)
    value = float(number) * scale
    if value < 0:
        raise ConfigError(f"negative byte size {text!r}")
    return int(value)
