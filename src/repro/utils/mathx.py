"""Tiny integer-math helpers used throughout the library."""

from __future__ import annotations

from typing import Iterable

__all__ = ["ceil_div", "is_power_of_two", "next_power_of_two", "prod"]


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; ``b`` must be positive."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def prod(items: Iterable[int]) -> int:
    """Product of an iterable of ints (1 for empty input)."""
    out = 1
    for x in items:
        out *= int(x)
    return out
