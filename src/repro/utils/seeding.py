"""Deterministic seed derivation.

Every stochastic component in the library (rank-local RNGs, data shuffling,
gate noise, parameter init) derives its seed from a single user seed plus a
stable string *stream* name, so that runs are reproducible regardless of
thread scheduling and of how many other components consumed randomness.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "rng_for_rank"]

_MASK64 = (1 << 64) - 1


def derive_seed(base_seed: int, *streams: object) -> int:
    """Derive a 64-bit seed from ``base_seed`` and a tuple of stream labels.

    The derivation is a SHA-256 hash of the textual representation, so it is
    stable across processes and Python versions (unlike ``hash()``).

    Parameters
    ----------
    base_seed:
        The user-facing experiment seed.
    streams:
        Arbitrary labels (strings, ints) identifying the consumer, e.g.
        ``derive_seed(seed, "dataloader", epoch, rank)``.
    """
    text = repr((int(base_seed),) + tuple(streams))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _MASK64


def rng_for_rank(base_seed: int, rank: int, stream: str = "rank") -> np.random.Generator:
    """Return a NumPy Generator unique to ``(base_seed, stream, rank)``."""
    return np.random.default_rng(derive_seed(base_seed, stream, rank))
