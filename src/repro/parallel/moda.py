"""MoDa: the hybrid data x expert parallel training strategy.

This module wires everything together for one rank of an SPMD program:

* :func:`build_moda_model` — an :class:`~repro.models.MoELanguageModel`
  whose MoE FFNs are :class:`~repro.parallel.ep.DistributedMoELayer`
  sharded over the rank's EP group; replicated parameters are
  bit-identical across ranks by construction (shared RNG streams).
* :class:`MoDaTrainer` — the distributed step: local forward/backward,
  dense-gradient allreduce over the world, expert-gradient allreduce over
  the expert-data-parallel group, globally-agreed loss-scale handling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.amp import DynamicLossScaler, grads_have_overflow
from repro.data.loader import Batch
from repro.errors import ConfigError
from repro.models.configs import ModelConfig
from repro.models.module import Module, Parameter
from repro.models.transformer import MoELanguageModel
from repro.parallel.dp import (
    allreduce_gradients,
    broadcast_parameters,
    iallreduce_gradients,
)
from repro.parallel.ep import DistributedMoELayer
from repro.parallel.groups import MoDaGroups
from repro.simmpi import MAX
from repro.train.clip import clip_grad_norm, global_grad_norm
from repro.train.optim import Optimizer
from repro.train.schedules import ConstantLR, LRSchedule

__all__ = ["build_moda_model", "split_params", "MoDaTrainer", "MoDaStepResult"]


def build_moda_model(
    config: ModelConfig,
    groups: MoDaGroups,
    seed: int = 0,
    alltoall_algorithm: str | None = None,
    compute_hook: Callable[[int], None] | None = None,
    overlap_chunks: int = 1,
) -> MoELanguageModel:
    """Construct the per-rank model for MoDa training.

    Dense/router parameters come from RNG streams consumed identically on
    every rank; expert parameters are seeded per global expert id, so the
    *model* (the union of all shards) is independent of the layout.
    """
    if config.num_experts % groups.grid.ep_size != 0:
        raise ConfigError(
            f"ep_size={groups.grid.ep_size} must divide "
            f"num_experts={config.num_experts}"
        )

    def moe_factory(layer_idx: int, rng: np.random.Generator) -> Module:
        return DistributedMoELayer(
            config.d_model,
            config.d_ff,
            config.num_experts,
            groups.ep,
            shared_rng=rng,
            seed=seed,
            layer_id=layer_idx,
            gate=config.gate,
            top_k=config.top_k,
            capacity_factor=config.capacity_factor,
            aux_weight=config.aux_weight,
            z_weight=config.z_weight,
            alltoall_algorithm=alltoall_algorithm,
            dtype=config.dtype,
            compute_hook=compute_hook,
            overlap_chunks=overlap_chunks,
        )

    return MoELanguageModel(config, seed=seed, moe_factory=moe_factory)


def split_params(model: Module) -> tuple[list[Parameter], list[Parameter]]:
    """(dense_params, expert_params) partition of a model's parameters."""
    dense, expert = [], []
    for p in model.parameters():
        (expert if getattr(p, "is_expert", False) else dense).append(p)
    return dense, expert


@dataclass
class MoDaStepResult:
    """Per-rank metrics from one distributed step."""

    step: int
    loss: float
    global_loss: float
    lr: float
    grad_norm: float
    skipped: bool
    loss_scale: float
    dense_sync_bytes: int
    expert_sync_bytes: int
    extras: dict[str, float] = field(default_factory=dict)


class MoDaTrainer:
    """One rank's view of synchronous MoDa training.

    The step anatomy (matching the single-process
    :class:`~repro.train.Trainer` plus communication):

    1. local forward + scaled backward;
    2. allreduce dense gradients over ``groups.world`` (average);
    3. allreduce expert gradients over ``groups.edp`` (average);
    4. *global* overflow agreement (max-allreduce of the local flag) so
       every rank skips or steps together;
    5. optimizer step with the scaler's inverse scale.
    """

    def __init__(
        self,
        model: MoELanguageModel,
        optimizer: Optimizer,
        groups: MoDaGroups,
        schedule: LRSchedule | None = None,
        scaler: DynamicLossScaler | None = None,
        grad_clip: float | None = None,
        allreduce_algorithm: str | None = None,
        sync_initial_params: bool = True,
        overlap_grad_sync: bool = False,
        grad_sync_buckets: int = 1,
        backward_compute_hook: Callable[[], None] | None = None,
    ):
        if grad_sync_buckets < 1:
            raise ConfigError(
                f"grad_sync_buckets must be >= 1, got {grad_sync_buckets}"
            )
        self.model = model
        self.optimizer = optimizer
        self.groups = groups
        self.schedule = schedule or ConstantLR(optimizer.lr)
        self.scaler = scaler
        self.grad_clip = grad_clip
        self.allreduce_algorithm = allreduce_algorithm
        #: When set, gradient sync issues nonblocking bucketed allreduces
        #: for every sync group, runs ``backward_compute_hook`` (which the
        #: strategy layer uses to advance the modelled backward compute on
        #: the virtual clock), then waits — hiding sync behind backward.
        #: Gradient values are numerically identical to the blocking path.
        self.overlap_grad_sync = overlap_grad_sync
        self.grad_sync_buckets = grad_sync_buckets
        self.backward_compute_hook = backward_compute_hook
        self.step_count = 0
        self.history: list[MoDaStepResult] = []
        self.dense_params, self.expert_params = split_params(model)
        #: ``(label, params, comm)`` triples describing how gradients are
        #: averaged; subclasses override :meth:`_build_sync_groups` to add
        #: axes (e.g. TP-sharded params over the same-shard group).
        self.sync_groups = self._build_sync_groups()
        if sync_initial_params:
            # Belt and braces: construction already makes replicas equal,
            # but an explicit broadcast pins the invariant.
            for _, params, comm in self.sync_groups:
                broadcast_parameters(comm, params, root=0)

    def _build_sync_groups(self):
        """Gradient-sync plan: dense over the world, experts over EDP."""
        return [
            ("dense", self.dense_params, self.groups.world),
            ("expert", self.expert_params, self.groups.edp),
        ]

    def _sync_gradients(self) -> dict[str, int]:
        """Average each sync group's gradients; bytes moved per label."""
        return {
            label: allreduce_gradients(
                comm, params, average=True, algorithm=self.allreduce_algorithm
            )
            for label, params, comm in self.sync_groups
        }

    def _sync_gradients_overlapped(self) -> dict[str, int]:
        """Overlapped variant: issue every group's bucketed nonblocking
        allreduce, advance the modelled backward compute, then wait.

        Each bucket is a contiguous slice of the flat fp32 gradient, so
        the element-wise sums are bit-identical to the single-bucket
        blocking allreduce.
        """
        pending = [
            (label, iallreduce_gradients(
                comm, params, average=True,
                algorithm=self.allreduce_algorithm,
                num_buckets=self.grad_sync_buckets,
            ))
            for label, params, comm in self.sync_groups
        ]
        if self.backward_compute_hook is not None:
            self.backward_compute_hook()
        return {label: handle.wait() for label, handle in pending}

    def evaluate(self, loader, num_steps: int, start_step: int = 0) -> dict[str, float]:
        """Distributed held-out evaluation: every rank scores its own data
        shard and the mean loss/perplexity is allreduced over the world.

        Collective call — all ranks must participate with the same
        arguments. Gradients and step counters are untouched.
        """
        if num_steps < 1:
            raise ConfigError(f"num_steps must be >= 1, got {num_steps}")
        from repro.tensor import no_grad

        was_training = self.model.training
        self.model.eval()
        total, count = 0.0, 0
        try:
            with no_grad():
                for batch in loader.iter_batches(num_steps, start_step=start_step):
                    loss = self.model.loss(batch.tokens, batch.targets)
                    total += float(loss.item())
                    count += 1
        finally:
            if was_training:
                self.model.train()
        local_mean = total / count
        global_mean = (
            float(self.groups.world.allreduce(local_mean)) / self.groups.world.size
        )
        return {
            "loss": global_mean,
            "perplexity": float(np.exp(min(global_mean, 50.0))),
        }

    def train_step(self, batch: Batch) -> MoDaStepResult:
        """Run one synchronous distributed step on this rank's batch."""
        groups = self.groups
        lr = self.schedule(self.step_count)
        self.optimizer.lr = lr
        self.model.zero_grad()

        # Virtual-clock phase breakdown (seconds of simulated time).
        t0 = groups.world.clock
        loss = self.model.loss(batch.tokens, batch.targets)
        loss_value = float(loss.item())
        t_forward = groups.world.clock - t0

        scale = self.scaler.scale if self.scaler is not None else 1.0
        t1 = groups.world.clock
        loss.backward(np.asarray(scale, dtype=loss.data.dtype))
        t_backward = groups.world.clock - t1

        t2 = groups.world.clock
        if self.overlap_grad_sync:
            sync_bytes = self._sync_gradients_overlapped()
        else:
            sync_bytes = self._sync_gradients()
        t_grad_sync = groups.world.clock - t2

        local_overflow = (
            1.0
            if self.scaler is not None and grads_have_overflow(self.optimizer.params)
            else 0.0
        )
        # All ranks must agree on the skip decision (expert shards differ).
        overflow = bool(groups.world.allreduce(local_overflow, op=MAX) > 0)

        inv = 1.0 / scale
        skipped = False
        if self.scaler is not None and overflow:
            skipped = True
            grad_norm = float("inf")
            self.scaler.update(found_overflow=True)
        else:
            if self.grad_clip is not None:
                grad_norm = clip_grad_norm(self.optimizer.params, self.grad_clip, grad_scale=inv)
            else:
                grad_norm = global_grad_norm(self.optimizer.params, grad_scale=inv)
            self.optimizer.step(grad_scale=inv)
            if self.scaler is not None:
                self.scaler.update(found_overflow=False)

        global_loss = float(groups.world.allreduce(loss_value)) / groups.world.size

        # Report the phase breakdown into the run's instrumentation spine
        # (only rank 0 of the world group, so totals aren't multiplied by
        # the world size).
        context = groups.world.context
        if groups.world.rank == 0:
            context.add_phase("forward", t_forward)
            context.add_phase("backward", t_backward)
            context.add_phase("grad_sync", t_grad_sync)

        extras: dict[str, float] = {
            "t_forward": t_forward,
            "t_backward": t_backward,
            "t_grad_sync": t_grad_sync,
        }
        for label, nbytes in sync_bytes.items():
            if label not in ("dense", "expert"):
                extras[f"{label}_sync_bytes"] = float(nbytes)
        result = MoDaStepResult(
            step=self.step_count,
            loss=loss_value,
            global_loss=global_loss,
            lr=lr,
            grad_norm=grad_norm,
            skipped=skipped,
            loss_scale=scale,
            dense_sync_bytes=sync_bytes.get("dense", 0),
            expert_sync_bytes=sync_bytes.get("expert", 0),
            extras=extras,
        )
        self.step_count += 1
        self.history.append(result)
        return result
