"""Parallel training strategies: MoDa hybrid, expert/data parallelism, ZeRO.

Every strategy — and every composite of them — is reachable through the
registry in :mod:`repro.parallel.strategy`; the measured runner
(:func:`run_distributed_training`) dispatches through it.
"""

from repro.layout import ParallelLayout
from repro.parallel.collective_ops import allreduce_sum, alltoall_rows, copy_to_tp_region
from repro.parallel.dp import (
    allreduce_gradients,
    broadcast_parameters,
    flatten_grads,
    unflatten_grads,
)
from repro.parallel.dist_checkpoint import (
    dense_state,
    global_expert_state,
    latest_snapshot,
    load_distributed,
    load_named_optimizer_state,
    named_optimizer_state,
    save_distributed,
    verify_snapshot,
)
from repro.parallel.ep import DistributedMoELayer
from repro.parallel.grid3d import Grid3D, Groups3D, Step3DResult, Trainer3D, build_groups3d
from repro.parallel.groups import MoDaGrid, MoDaGroups, build_groups
from repro.parallel.moda import MoDaStepResult, MoDaTrainer, build_moda_model, split_params
from repro.parallel.pipeline import (
    GPipeRunner,
    PipelineStage,
    pipeline_bubble_fraction,
    stage_bounds,
)
from repro.parallel.resilient import ResilientRunConfig, ResilientRunResult, run_resilient_training
from repro.parallel.tp import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLP,
    shard_linear_weights,
)
from repro.parallel.strategy import (
    HybridGroups,
    HybridTrainer,
    ParallelStrategy,
    RankTrainer,
    StepOutcome,
    available_strategies,
    build_hybrid_groups,
    build_hybrid_model,
    get_strategy,
    register_strategy,
    strategy_for_layout,
)
from repro.parallel.runner import TrainingRunConfig, TrainingRunResult, run_distributed_training
from repro.parallel.zero import ZeroAdamW, shard_bounds

__all__ = [
    "ParallelLayout",
    "ParallelStrategy",
    "RankTrainer",
    "StepOutcome",
    "HybridGroups",
    "HybridTrainer",
    "available_strategies",
    "build_hybrid_groups",
    "build_hybrid_model",
    "get_strategy",
    "register_strategy",
    "strategy_for_layout",
    "dense_state",
    "global_expert_state",
    "latest_snapshot",
    "load_distributed",
    "load_named_optimizer_state",
    "named_optimizer_state",
    "save_distributed",
    "verify_snapshot",
    "GPipeRunner",
    "Grid3D",
    "Groups3D",
    "Step3DResult",
    "Trainer3D",
    "build_groups3d",
    "PipelineStage",
    "pipeline_bubble_fraction",
    "stage_bounds",
    "copy_to_tp_region",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelMLP",
    "shard_linear_weights",
    "ResilientRunConfig",
    "ResilientRunResult",
    "run_resilient_training",
    "TrainingRunConfig",
    "TrainingRunResult",
    "run_distributed_training",
    "ZeroAdamW",
    "shard_bounds",
    "allreduce_sum",
    "alltoall_rows",
    "allreduce_gradients",
    "broadcast_parameters",
    "flatten_grads",
    "unflatten_grads",
    "DistributedMoELayer",
    "MoDaGrid",
    "MoDaGroups",
    "build_groups",
    "MoDaStepResult",
    "MoDaTrainer",
    "build_moda_model",
    "split_params",
]
