"""Process-group topology for MoDa hybrid parallelism.

BaGuaLu's MoDa strategy combines **Mo**E expert parallelism with **Da**ta
parallelism:

* the world of P ranks is tiled into expert-parallel (EP) groups of size
  ``ep_size``; the experts of every MoE layer are sharded across one EP
  group (tokens travel by alltoall within the group);
* the ``P / ep_size`` EP groups replicate the experts, forming the
  expert-data-parallel (EDP) axis: expert gradients are allreduced across
  ranks with the same EP position;
* dense (attention/backbone/router) parameters are replicated everywhere
  and allreduced over the full world.

Placing each EP group inside one supernode keeps the latency-critical
alltoall on fast links while the bulk-bandwidth allreduce crosses
supernodes — the communication split the paper's design exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simmpi import Comm

__all__ = ["MoDaGrid", "MoDaGroups", "build_groups"]


@dataclass(frozen=True)
class MoDaGrid:
    """Static description of the parallel decomposition."""

    world_size: int
    ep_size: int

    def __post_init__(self) -> None:
        if self.world_size < 1 or self.ep_size < 1:
            raise ConfigError("world_size and ep_size must be >= 1")
        if self.world_size % self.ep_size != 0:
            raise ConfigError(
                f"ep_size={self.ep_size} must divide world_size={self.world_size}"
            )

    @property
    def num_ep_groups(self) -> int:
        """Number of expert replicas (the EDP width)."""
        return self.world_size // self.ep_size

    def ep_group_of(self, rank: int) -> int:
        return rank // self.ep_size

    def ep_rank_of(self, rank: int) -> int:
        return rank % self.ep_size

    def local_experts(self, num_experts: int, rank: int) -> range:
        """Experts owned by ``rank`` (blocked over its EP group)."""
        if num_experts % self.ep_size != 0:
            raise ConfigError(
                f"ep_size={self.ep_size} must divide num_experts={num_experts}"
            )
        per = num_experts // self.ep_size
        ep_rank = self.ep_rank_of(rank)
        return range(ep_rank * per, (ep_rank + 1) * per)


@dataclass
class MoDaGroups:
    """Live communicators for one rank of a MoDa program."""

    grid: MoDaGrid
    #: Full world (dense-parameter data parallelism).
    world: Comm
    #: This rank's expert-parallel group (token alltoall).
    ep: Comm
    #: Ranks sharing this rank's EP position (expert-gradient allreduce).
    edp: Comm

    @property
    def rank(self) -> int:
        return self.world.rank

    @property
    def ep_rank(self) -> int:
        return self.ep.rank

    @property
    def edp_rank(self) -> int:
        return self.edp.rank


def build_groups(world: Comm, ep_size: int) -> MoDaGroups:
    """Split ``world`` into the MoDa communicators (collective call).

    Every rank of ``world`` must call this with the same ``ep_size``.
    """
    grid = MoDaGrid(world_size=world.size, ep_size=ep_size)
    r = world.rank
    ep = world.Split(color=grid.ep_group_of(r), key=grid.ep_rank_of(r))
    edp = world.Split(color=grid.ep_rank_of(r), key=grid.ep_group_of(r))
    assert ep is not None and edp is not None
    if ep.size != ep_size or edp.size != grid.num_ep_groups:
        raise ConfigError(
            f"group split mismatch: ep={ep.size} (want {ep_size}), "
            f"edp={edp.size} (want {grid.num_ep_groups})"
        )
    return MoDaGroups(grid=grid, world=world, ep=ep, edp=edp)
