"""Expert parallelism: the distributed Mixture-of-Experts layer.

Experts of each MoE layer are sharded across an expert-parallel (EP)
communicator; tokens travel to their experts by alltoall and return by the
transposed alltoall (both differentiable, see
:mod:`repro.parallel.collective_ops`). This reproduces the FastMoE-style
data path BaGuaLu builds on, with the alltoall algorithm (flat vs
hierarchical) exposed as the knob experiment F3 measures.

Numerics match the single-process :class:`~repro.models.MoELayer` exactly
for deterministic gates (verified by equivalence tests): only the *place*
where each expert's matmuls run changes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.models.layers import MLP, Linear
from repro.models.module import Module
from repro.moe.balance import load_balance_loss, router_z_loss
from repro.moe.capacity import apply_capacity
from repro.moe.dispatch import build_dispatch, experts_of_rank, inference_keep_mask
from repro.moe.gates import Gate, make_gate
from repro.parallel.collective_ops import alltoall_rows, ialltoall_rows, place_rows
from repro.simmpi import Comm
from repro.tensor import Tensor
from repro.tensor import ops as T
from repro.tensor.functional import gather_rows, scatter_rows
from repro.utils.seeding import derive_seed

__all__ = ["DistributedMoELayer"]


class DistributedMoELayer(Module):
    """MoE feed-forward layer sharded over an EP communicator.

    Parameters
    ----------
    d_model / d_ff / num_experts:
        Layer dimensions; ``num_experts`` must be divisible by
        ``ep_comm.size``.
    ep_comm:
        The expert-parallel communicator (each member holds
        ``num_experts / size`` experts, blocked placement).
    shared_rng:
        RNG consumed identically on every EP rank (router init, gate
        noise) — keeps replicated parameters bit-identical.
    seed / layer_id:
        Expert parameters are seeded per *global* expert id from
        ``derive_seed(seed, "expert", layer_id, gid)``, so the set of
        expert weights is independent of the EP layout.
    alltoall_algorithm:
        Timing-model algorithm for the token exchange
        ("flat" / "hierarchical" / None = policy default).
    compute_hook:
        Optional callable ``(num_rows) -> None`` invoked with the number of
        expert rows processed locally; runners use it to advance the
        virtual clock by modelled expert-compute time. The chunked path
        calls it once per chunk (so the advanced compute can overlap the
        in-flight exchanges); the unchunked path calls it once.
    overlap_chunks:
        Split dispatch/combine into this many chunks of local experts and
        pipeline chunk *k*'s combine (and chunk *k+1*'s dispatch) against
        chunk *k*'s expert matmuls via nonblocking alltoalls. Output is
        bit-identical to the unchunked path; only the virtual timeline
        changes. Clamped to the number of local experts; 1 = blocking.
    """

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        num_experts: int,
        ep_comm: Comm,
        shared_rng: np.random.Generator,
        seed: int = 0,
        layer_id: int = 0,
        gate: Gate | str = "topk",
        top_k: int = 1,
        capacity_factor: float | None = None,
        aux_weight: float = 1e-2,
        z_weight: float = 0.0,
        alltoall_algorithm: str | None = None,
        init_std: float = 0.02,
        dtype: str = "fp32",
        compute_hook: Callable[[int], None] | None = None,
        overlap_chunks: int = 1,
    ):
        super().__init__()
        if num_experts % ep_comm.size != 0:
            raise ConfigError(
                f"ep size {ep_comm.size} must divide num_experts={num_experts}"
            )
        if overlap_chunks < 1:
            raise ConfigError(f"overlap_chunks must be >= 1, got {overlap_chunks}")
        self.d_model = d_model
        self.d_ff = d_ff
        self.num_experts = num_experts
        self.ep_comm = ep_comm
        self.num_local_experts = num_experts // ep_comm.size
        self.global_expert_ids = experts_of_rank(ep_comm.rank, num_experts, ep_comm.size)
        self.capacity_factor = capacity_factor
        self.aux_weight = aux_weight
        self.z_weight = z_weight
        self.alltoall_algorithm = alltoall_algorithm
        self.compute_hook = compute_hook
        self.overlap_chunks = overlap_chunks
        self._rng = shared_rng

        self.router = Linear(
            d_model, num_experts, shared_rng, bias=False, init_std=init_std, dtype=dtype
        )
        local = []
        for gid in self.global_expert_ids:
            erng = np.random.default_rng(derive_seed(seed, "expert", layer_id, gid))
            local.append(MLP(d_model, d_ff, erng, init_std=init_std, dtype=dtype))
        self.register_module_list("experts", local)
        for expert in local:
            for p in expert.parameters():
                p.is_expert = True

        self.gate: Gate = (
            gate if isinstance(gate, Gate) else make_gate(gate, num_experts, top_k)
        )
        self.last_aux_loss: Tensor | None = None
        #: Local routing load over *global* experts (this rank's tokens).
        self.last_load: np.ndarray | None = None
        #: Group-wide load (allreduced over the EP group).
        self.last_global_load: np.ndarray | None = None
        self.last_drop_fraction: float = 0.0
        #: Rows this rank's experts processed in the last forward.
        self.last_local_rows: int = 0
        #: Eval-only absolute per-expert slot bound over *this rank's*
        #: tokens (serving engines set this; ``None`` disables it).
        self.inference_capacity: int | None = None

    # ------------------------------------------------------------------ #

    def forward(self, x: Tensor) -> Tensor:
        orig_shape = x.shape
        if x.ndim == 3:
            b, t, d = x.shape
            x = x.reshape(b * t, d)
        elif x.ndim != 2:
            raise ConfigError(
                f"DistributedMoELayer expects (N, D) or (B, T, D), got {x.shape}"
            )
        n, d = x.shape
        comm = self.ep_comm
        p = comm.size
        per_rank = self.num_local_experts

        # 1. Route locally.
        logits = self.router(x)
        gate_out = self.gate(logits, self._rng)
        self.last_load = gate_out.load
        self.last_global_load = comm.allreduce(gate_out.load)

        if self.capacity_factor is not None:
            cap = apply_capacity(gate_out.indices, self.num_experts, self.capacity_factor)
            keep = cap.keep_mask
            self.last_drop_fraction = cap.drop_fraction
        else:
            keep = None
            self.last_drop_fraction = 0.0
        if not self.training and self.inference_capacity is not None:
            icap = inference_keep_mask(
                gate_out.indices, self.num_experts, self.inference_capacity
            )
            keep = icap if keep is None else keep & icap
            self.last_drop_fraction = float(1.0 - keep.mean())

        plan = build_dispatch(gate_out.indices, self.num_experts, keep)
        xs = gather_rows(x, plan.token_idx)  # (M, D), global-expert-sorted

        # 2. Exchange metadata: how many rows for each of the destination's
        #    local experts am I sending?
        counts_by_dst = [
            plan.counts[r * per_rank: (r + 1) * per_rank].copy() for r in range(p)
        ]
        recv_expert_counts = comm.alltoall(counts_by_dst)  # per src: (per_rank,)

        chunks = min(self.overlap_chunks, per_rank)
        if chunks > 1:
            # 3-6 (pipelined): chunked nonblocking dispatch/combine.
            back_rows = self._dispatch_chunked(
                xs, plan, recv_expert_counts, chunks
            )
        else:
            # 3. Token alltoall (differentiable).
            send_counts = [int(c.sum()) for c in counts_by_dst]
            recv_rows, recv_counts = alltoall_rows(
                xs, send_counts, comm, algorithm=self.alltoall_algorithm
            )

            # 4. Regroup received rows by local expert (they arrive blocked
            #    by source, sorted by expert within each block).
            expert_of_row = np.concatenate(
                [np.repeat(np.arange(per_rank), c) for c in recv_expert_counts]
            ) if recv_expert_counts else np.zeros(0, dtype=np.int64)
            order = np.argsort(expert_of_row, kind="stable")
            xr = gather_rows(recv_rows, order)
            rows_per_expert = np.bincount(expert_of_row, minlength=per_rank)
            self.last_local_rows = int(rows_per_expert.sum())
            if self.compute_hook is not None:
                self.compute_hook(self.last_local_rows)

            # 5. Run local experts on contiguous segments.
            outs = []
            lo = 0
            for e in range(per_rank):
                hi = lo + int(rows_per_expert[e])
                if hi > lo:
                    outs.append(self.experts[e](xr[lo:hi]))
                lo = hi
            ys_sorted = T.concat(outs, axis=0) if outs else xr * 0.0

            # 6. Undo the regrouping and send results home.
            inv_order = np.argsort(order, kind="stable")
            ys = gather_rows(ys_sorted, inv_order)
            back_rows, back_counts = alltoall_rows(
                ys, recv_counts, comm, algorithm=self.alltoall_algorithm
            )
            assert back_counts == send_counts, "alltoall transpose mismatch"

        # 7. Combine at the source with differentiable gate weights.
        w = gate_out.combine_weights[plan.token_idx, plan.slot_idx]
        combined = back_rows * w.reshape(-1, 1)
        out = scatter_rows(combined, plan.token_idx, n)

        aux = load_balance_loss(gate_out.probs, gate_out.indices, self.num_experts)
        aux = aux * self.aux_weight
        if self.z_weight > 0:
            aux = aux + router_z_loss(logits) * self.z_weight
        self.last_aux_loss = aux

        if len(orig_shape) == 3:
            out = out.reshape(*orig_shape)
        return out

    def _dispatch_chunked(
        self,
        xs: Tensor,
        plan,
        recv_expert_counts: list[np.ndarray],
        chunks: int,
    ) -> Tensor:
        """Pipelined dispatch -> experts -> combine over local-expert chunks.

        Chunk ``c`` covers local experts ``[edges[c], edges[c+1])`` on
        every rank. Each expert still sees its full canonical row block in
        canonical (expert, source) order, and the combined rows are
        reassembled into ``xs`` order (pure placement, see
        :func:`place_rows`) before the single combine-weight multiply —
        so the output is bit-identical to the blocking path. The
        nonblocking exchanges let chunk ``c``'s expert matmuls (charged
        through ``compute_hook``) overlap chunk ``c+1``'s dispatch and
        chunk ``c-1``'s combine on the virtual clock.
        """
        comm = self.ep_comm
        p = comm.size
        per_rank = self.num_local_experts
        algorithm = self.alltoall_algorithm
        edges = [(per_rank * c) // chunks for c in range(chunks + 1)]
        goff = np.concatenate([[0], np.cumsum(plan.counts)])

        # Row indices of each chunk's (dest-major) slices in expert-sorted xs.
        idx_lists: list[np.ndarray] = []
        send_counts_list: list[list[int]] = []
        for c in range(chunks):
            lo_e, hi_e = edges[c], edges[c + 1]
            pieces, counts = [], []
            for r in range(p):
                lo = int(goff[r * per_rank + lo_e])
                hi = int(goff[r * per_rank + hi_e])
                pieces.append(np.arange(lo, hi, dtype=np.int64))
                counts.append(hi - lo)
            idx_lists.append(np.concatenate(pieces))
            send_counts_list.append(counts)

        pending: list = [None] * chunks
        combines: list = [None] * chunks
        pending[0] = ialltoall_rows(
            gather_rows(xs, idx_lists[0]), send_counts_list[0], comm,
            algorithm=algorithm,
        )
        total_rows = 0
        for c in range(chunks):
            if c + 1 < chunks:
                pending[c + 1] = ialltoall_rows(
                    gather_rows(xs, idx_lists[c + 1]), send_counts_list[c + 1],
                    comm, algorithm=algorithm,
                )
            recv_rows, recv_counts = pending[c].wait()
            lo_e, hi_e = edges[c], edges[c + 1]
            expert_of_row = np.concatenate(
                [np.repeat(np.arange(lo_e, hi_e), src[lo_e:hi_e])
                 for src in recv_expert_counts]
            ) if recv_expert_counts else np.zeros(0, dtype=np.int64)
            order = np.argsort(expert_of_row, kind="stable")
            xr = gather_rows(recv_rows, order)
            rows_per_expert = np.bincount(
                expert_of_row - lo_e, minlength=hi_e - lo_e
            )
            chunk_rows = int(rows_per_expert.sum())
            total_rows += chunk_rows
            if self.compute_hook is not None:
                self.compute_hook(chunk_rows)

            outs = []
            lo = 0
            for i, e in enumerate(range(lo_e, hi_e)):
                hi = lo + int(rows_per_expert[i])
                if hi > lo:
                    outs.append(self.experts[e](xr[lo:hi]))
                lo = hi
            ys_sorted = T.concat(outs, axis=0) if outs else xr * 0.0
            inv_order = np.argsort(order, kind="stable")
            ys = gather_rows(ys_sorted, inv_order)
            combines[c] = ialltoall_rows(ys, recv_counts, comm, algorithm=algorithm)

        back_chunks = []
        for c in range(chunks):
            back_c, back_counts = combines[c].wait()
            assert back_counts == send_counts_list[c], "alltoall transpose mismatch"
            back_chunks.append(back_c)
        self.last_local_rows = total_rows
        return place_rows(back_chunks, idx_lists, int(xs.shape[0]))

    @property
    def flops_per_token(self) -> int:
        """Forward FLOPs per token: router + top_k expert MLPs."""
        router = 2 * self.d_model * self.num_experts
        expert = self.experts[0].flops_per_token if self.experts else 0
        return router + self.gate.top_k * expert
