"""Distributed checkpoints with expert resharding.

A 14.5 T-parameter model cannot be checkpointed through one rank; BaGuaLu-
class systems write shards in parallel. Layout used here (a directory):

* ``dense.npz``    — replicated parameters, written by world rank 0;
* ``experts_<ep_rank>of<ep_size>.npz`` — each EP position's expert
  parameters, written by that position's expert-data-parallel leader,
  keyed by **global** parameter names (``blocks.3.ffn.experts.17.fc_in.weight``).

Because expert keys are global, loading is *layout-independent*: a
checkpoint saved at ``ep_size=4`` restores into a model sharded at
``ep_size=2`` (or 1) — the resharding path real systems need when the
allocation changes between runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.models.transformer import MoELanguageModel
from repro.parallel.ep import DistributedMoELayer
from repro.parallel.groups import MoDaGroups

__all__ = ["save_distributed", "load_distributed", "global_expert_state", "dense_state"]

_META = "meta.json"


def _expert_layers(model: MoELanguageModel) -> list[tuple[int, DistributedMoELayer]]:
    out = []
    for i, block in enumerate(model.blocks):
        if isinstance(block.ffn, DistributedMoELayer):
            out.append((i, block.ffn))
    return out


def global_expert_state(model: MoELanguageModel) -> dict[str, np.ndarray]:
    """This rank's expert parameters under global (layout-free) names."""
    state: dict[str, np.ndarray] = {}
    for layer_idx, layer in _expert_layers(model):
        for local_idx, gid in enumerate(layer.global_expert_ids):
            for pname, p in layer.experts[local_idx].named_parameters():
                state[f"blocks.{layer_idx}.ffn.experts.{gid}.{pname}"] = p.data.copy()
    return state


def dense_state(model: MoELanguageModel) -> dict[str, np.ndarray]:
    """Replicated (non-expert) parameters by their model names."""
    return {
        name: p.data.copy()
        for name, p in model.named_parameters()
        if not getattr(p, "is_expert", False)
    }


def save_distributed(
    directory: str | Path,
    model: MoELanguageModel,
    groups: MoDaGroups,
    step: int = 0,
    optimizer=None,
) -> Path:
    """Write this rank's contribution to a sharded checkpoint.

    Collective over ``groups.world`` (a barrier orders the metadata write
    after every shard). When ``optimizer`` is given, each world rank also
    writes its optimizer state (``optim_<rank>of<world>.npz``); optimizer
    restore requires the same world layout (parameter order is per-rank).
    Returns the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    ep_size = groups.grid.ep_size

    if groups.world.rank == 0:
        np.savez(directory / "dense.npz", **dense_state(model))
    if groups.edp.rank == 0:
        shard = global_expert_state(model)
        if shard:
            np.savez(
                directory / f"experts_{groups.ep_rank}of{ep_size}.npz", **shard
            )
    if optimizer is not None:
        state = {k: np.asarray(v) for k, v in optimizer.state_dict().items()}
        np.savez(
            directory / f"optim_{groups.world.rank}of{groups.world.size}.npz",
            **state,
        )
    groups.world.barrier()
    if groups.world.rank == 0:
        meta = {
            "step": int(step),
            "ep_size": ep_size,
            "world_size": groups.world.size,
            "model": model.config.name,
        }
        (directory / _META).write_text(json.dumps(meta))
    groups.world.barrier()
    return directory


def load_distributed(
    directory: str | Path,
    model: MoELanguageModel,
    strict: bool = True,
    optimizer=None,
    world_rank: int | None = None,
    world_size: int | None = None,
) -> dict:
    """Restore a sharded checkpoint into ``model`` (any EP layout).

    Per-rank local operation: each rank reads ``dense.npz`` plus whichever
    expert shards contain its local experts. When ``optimizer`` is given
    (with this rank's ``world_rank``/``world_size``), the rank's optimizer
    state is restored too — this path requires the saving layout.
    Returns the metadata dict.
    """
    directory = Path(directory)
    meta_path = directory / _META
    if not meta_path.exists():
        raise CheckpointError(f"not a distributed checkpoint: {directory}")
    meta = json.loads(meta_path.read_text())

    dense_path = directory / "dense.npz"
    if not dense_path.exists():
        raise CheckpointError(f"missing dense shard in {directory}")
    dense = np.load(dense_path)
    for name, p in model.named_parameters():
        if getattr(p, "is_expert", False):
            continue
        if name not in dense.files:
            if strict:
                raise CheckpointError(f"dense parameter {name!r} missing from checkpoint")
            continue
        arr = dense[name]
        if arr.shape != p.shape:
            raise CheckpointError(
                f"shape mismatch for {name!r}: checkpoint {arr.shape}, model {p.shape}"
            )
        p.data = arr.astype(p.data.dtype).copy()

    # Index every expert key across all shard files (lazy per-file load).
    shard_files = sorted(directory.glob("experts_*.npz"))
    key_to_file: dict[str, Path] = {}
    for f in shard_files:
        with np.load(f) as blob:
            for key in blob.files:
                key_to_file[key] = f
    cache: dict[Path, dict[str, np.ndarray]] = {}

    def fetch(key: str) -> np.ndarray:
        f = key_to_file.get(key)
        if f is None:
            raise CheckpointError(f"expert parameter {key!r} not found in any shard")
        if f not in cache:
            with np.load(f) as blob:
                cache[f] = {k: blob[k] for k in blob.files}
        return cache[f][key]

    for layer_idx, layer in _expert_layers(model):
        for local_idx, gid in enumerate(layer.global_expert_ids):
            for pname, p in layer.experts[local_idx].named_parameters():
                key = f"blocks.{layer_idx}.ffn.experts.{gid}.{pname}"
                arr = fetch(key)
                if arr.shape != p.shape:
                    raise CheckpointError(
                        f"shape mismatch for {key!r}: checkpoint {arr.shape}, "
                        f"model {p.shape}"
                    )
                p.data = arr.astype(p.data.dtype).copy()

    if optimizer is not None:
        if world_rank is None or world_size is None:
            raise CheckpointError(
                "optimizer restore needs world_rank and world_size"
            )
        if world_size != meta.get("world_size"):
            raise CheckpointError(
                f"optimizer state was saved at world_size={meta.get('world_size')}, "
                f"cannot restore at world_size={world_size}"
            )
        opt_path = directory / f"optim_{world_rank}of{world_size}.npz"
        if not opt_path.exists():
            raise CheckpointError(f"missing optimizer shard {opt_path.name}")
        with np.load(opt_path) as blob:
            optimizer.load_state_dict(
                {
                    k: (float(blob[k]) if blob[k].ndim == 0 else blob[k])
                    for k in blob.files
                }
            )
    return meta
