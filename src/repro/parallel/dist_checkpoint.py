"""Distributed checkpoints with expert resharding.

A 14.5 T-parameter model cannot be checkpointed through one rank; BaGuaLu-
class systems write shards in parallel. Layout used here (a directory):

* ``dense.npz``    — replicated parameters, written by world rank 0;
* ``experts_<ep_rank>of<ep_size>.npz`` — each EP position's expert
  parameters, written by that position's expert-data-parallel leader,
  keyed by **global** parameter names (``blocks.3.ffn.experts.17.fc_in.weight``);
* ``optim_dense.npz`` / ``optim_experts_<ep_rank>of<ep_size>.npz`` —
  optimizer state (Adam moments, SGD velocity, fp16 masters) under the
  same global names (``m::<param name>`` etc.), written by the same
  leaders (replicated state is identical across replicas by the gradient
  sync invariant, so one writer per shard suffices);
* ``meta.json``    — step/layout metadata plus the manifest of every
  shard file, written last (after the shards synchronize), so its
  presence marks a snapshot as complete and :func:`verify_snapshot` can
  reject snapshots that lost or truncated a shard afterwards.

Because every key is global, loading is *layout-independent*: a
checkpoint saved at ``ep_size=4`` restores — parameters **and** optimizer
state — into a model sharded at ``ep_size=2`` (or 1) on any world size.
This is the resharding path real systems need when the allocation changes
between runs, and what lets the resilience supervisor shrink the world
around a dead node and resume exactly.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.models.transformer import MoELanguageModel
from repro.parallel.ep import DistributedMoELayer
from repro.parallel.groups import MoDaGroups

__all__ = [
    "save_distributed",
    "load_distributed",
    "global_expert_state",
    "dense_state",
    "named_optimizer_state",
    "load_named_optimizer_state",
    "verify_snapshot",
    "latest_snapshot",
]

_META = "meta.json"
#: Separator between an optimizer-state kind ("m", "v", ...) and the
#: global parameter name in optimizer shard keys.
_OPT_SEP = "::"


def _expert_layers(model: MoELanguageModel) -> list[tuple[int, DistributedMoELayer]]:
    out = []
    for i, block in enumerate(model.blocks):
        if isinstance(block.ffn, DistributedMoELayer):
            out.append((i, block.ffn))
    return out


def global_expert_state(model: MoELanguageModel) -> dict[str, np.ndarray]:
    """This rank's expert parameters under global (layout-free) names."""
    state: dict[str, np.ndarray] = {}
    for layer_idx, layer in _expert_layers(model):
        for local_idx, gid in enumerate(layer.global_expert_ids):
            for pname, p in layer.experts[local_idx].named_parameters():
                state[f"blocks.{layer_idx}.ffn.experts.{gid}.{pname}"] = p.data.copy()
    return state


def dense_state(model: MoELanguageModel) -> dict[str, np.ndarray]:
    """Replicated (non-expert) parameters by their model names."""
    return {
        name: p.data.copy()
        for name, p in model.named_parameters()
        if not getattr(p, "is_expert", False)
    }


def _global_param_names(model: MoELanguageModel) -> dict[int, str]:
    """id(param) -> global (layout-free) name, dense and expert alike."""
    names: dict[int, str] = {}
    for name, p in model.named_parameters():
        if not getattr(p, "is_expert", False):
            names[id(p)] = name
    for layer_idx, layer in _expert_layers(model):
        for local_idx, gid in enumerate(layer.global_expert_ids):
            for pname, p in layer.experts[local_idx].named_parameters():
                names[id(p)] = f"blocks.{layer_idx}.ffn.experts.{gid}.{pname}"
    return names


def named_optimizer_state(model: MoELanguageModel, optimizer) -> dict[str, np.ndarray]:
    """Optimizer state re-keyed by global parameter names.

    :meth:`~repro.train.optim.Optimizer.state_dict` keys state by the
    parameter's *position* in the optimizer's list (``m.3``), which is a
    property of one rank's layout. This maps each entry to
    ``<kind>::<global param name>`` (``m::blocks.0.ffn.experts.5.fc_in.weight``),
    making the state restorable under any world size / EP width.
    """
    names = _global_param_names(model)
    out: dict[str, np.ndarray] = {}
    for key, value in optimizer.state_dict().items():
        if key == "step_count":
            out[key] = np.asarray(value)
            continue
        kind, _, idx = key.rpartition(".")
        param = optimizer.params[int(idx)]
        name = names.get(id(param))
        if name is None:
            raise CheckpointError(
                f"optimizer entry {key!r} refers to a parameter the model "
                "does not own; cannot key it globally"
            )
        out[f"{kind}{_OPT_SEP}{name}"] = np.asarray(value)
    return out


def load_named_optimizer_state(
    model: MoELanguageModel, optimizer, state: dict[str, np.ndarray]
) -> None:
    """Restore globally-named optimizer ``state`` into ``optimizer``.

    Entries for parameters this rank does not hold (other ranks' experts)
    are skipped — each rank picks its own slice out of the union of the
    optimizer shard files, mirroring the parameter restore path.
    """
    names = _global_param_names(model)
    index_of: dict[str, int] = {}
    for i, p in enumerate(optimizer.params):
        name = names.get(id(p))
        if name is not None:
            index_of[name] = i
    if "step_count" not in state:
        raise CheckpointError("optimizer state is missing 'step_count'")
    converted: dict[str, np.ndarray | float] = {
        "step_count": float(state["step_count"])
    }
    for key, value in state.items():
        if key == "step_count":
            continue
        kind, sep, name = key.partition(_OPT_SEP)
        if not sep:
            raise CheckpointError(f"unrecognized optimizer state key {key!r}")
        idx = index_of.get(name)
        if idx is None:
            continue  # another rank's expert shard
        converted[f"{kind}.{idx}"] = value
    optimizer.load_state_dict(converted)


def save_distributed(
    directory: str | Path,
    model: MoELanguageModel,
    groups: MoDaGroups,
    step: int = 0,
    optimizer=None,
) -> Path:
    """Write this rank's contribution to a sharded checkpoint.

    Collective over ``groups.world``: shard writers report their file
    names through a gather, and rank 0 writes ``meta.json`` (with the
    manifest) only after every shard landed — so a complete ``meta.json``
    certifies a complete snapshot. When ``optimizer`` is given
    (:class:`~repro.train.optim.Optimizer` family), its state is saved
    under global parameter names and restores under any layout. Returns
    the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    ep_size = groups.grid.ep_size
    written: list[str] = []

    if groups.world.rank == 0:
        np.savez(directory / "dense.npz", **dense_state(model))
        written.append("dense.npz")
    if groups.edp.rank == 0:
        shard = global_expert_state(model)
        if shard:
            fname = f"experts_{groups.ep_rank}of{ep_size}.npz"
            np.savez(directory / fname, **shard)
            written.append(fname)
    if optimizer is not None:
        state = named_optimizer_state(model, optimizer)
        dense_names = {
            name
            for name, p in model.named_parameters()
            if not getattr(p, "is_expert", False)
        }
        dense_entries: dict[str, np.ndarray] = {}
        expert_entries: dict[str, np.ndarray] = {}
        for key, value in state.items():
            if key == "step_count":
                dense_entries[key] = value
                expert_entries[key] = value
                continue
            _, _, name = key.partition(_OPT_SEP)
            target = dense_entries if name in dense_names else expert_entries
            target[key] = value
        if groups.world.rank == 0:
            np.savez(directory / "optim_dense.npz", **dense_entries)
            written.append("optim_dense.npz")
        if groups.edp.rank == 0 and len(expert_entries) > 1:
            fname = f"optim_experts_{groups.ep_rank}of{ep_size}.npz"
            np.savez(directory / fname, **expert_entries)
            written.append(fname)

    # The gather doubles as the pre-metadata barrier: every rank blocks
    # until all shard writes above have happened.
    listed = groups.world.gather(written, root=0)
    if groups.world.rank == 0:
        assert listed is not None
        manifest = sorted({name for sub in listed for name in sub})
        meta = {
            "step": int(step),
            "ep_size": ep_size,
            "world_size": groups.world.size,
            "model": model.config.name,
            "files": manifest,
            "format": 2,
        }
        (directory / _META).write_text(json.dumps(meta))
    groups.world.barrier()
    return directory


def verify_snapshot(directory: str | Path) -> dict:
    """Check a snapshot directory against its manifest; return the meta.

    Raises :class:`~repro.errors.CheckpointError` when ``meta.json`` is
    absent/corrupt, or any manifest file is missing or fails to open as a
    zip archive (truncated write, bit rot). Snapshots from before the
    manifest existed (no ``files`` key) fall back to the old
    meta.json-presence-only contract.
    """
    directory = Path(directory)
    meta_path = directory / _META
    if not meta_path.exists():
        raise CheckpointError(f"not a distributed checkpoint: {directory}")
    try:
        meta = json.loads(meta_path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        raise CheckpointError(f"corrupt metadata in {directory}: {exc}") from exc
    for fname in meta.get("files", []):
        path = directory / fname
        if not path.exists():
            raise CheckpointError(
                f"incomplete snapshot {directory}: missing shard {fname!r} "
                "listed in the manifest"
            )
        if path.suffix == ".npz":
            try:
                with np.load(path) as blob:
                    _ = blob.files
            except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
                raise CheckpointError(
                    f"truncated or corrupt shard {fname!r} in {directory}: {exc}"
                ) from exc
    return meta


def latest_snapshot(root: str | Path) -> tuple[Path | None, int]:
    """Newest *verified* ``step-<n>/`` snapshot under ``root``.

    Snapshots that fail :func:`verify_snapshot` (missing/truncated shards
    — e.g. debris from a crash, or a file lost after the save) are
    skipped, so recovery falls back to the newest snapshot that can
    actually restore. Returns ``(None, 0)`` when nothing usable exists.
    """
    best: tuple[Path | None, int] = (None, 0)
    root = Path(root)
    if not root.exists():
        return best
    for sub in root.glob("step-*"):
        try:
            step = int(sub.name.split("-")[1])
        except (IndexError, ValueError):
            continue
        if step <= best[1]:
            continue
        try:
            verify_snapshot(sub)
        except CheckpointError:
            continue
        best = (sub, step)
    return best


def load_distributed(
    directory: str | Path,
    model: MoELanguageModel,
    strict: bool = True,
    optimizer=None,
    world_rank: int | None = None,
    world_size: int | None = None,
) -> dict:
    """Restore a sharded checkpoint into ``model`` (any EP layout).

    Per-rank local operation: each rank reads ``dense.npz`` plus whichever
    expert shards contain its local experts. When ``optimizer`` is given,
    its state is restored from the globally-named optimizer shards —
    layout-independent, so the saving and loading world sizes / EP widths
    may differ (the elastic-restart path). ``world_rank``/``world_size``
    are accepted for backwards compatibility and ignored. Returns the
    metadata dict.
    """
    directory = Path(directory)
    meta_path = directory / _META
    if not meta_path.exists():
        raise CheckpointError(f"not a distributed checkpoint: {directory}")
    meta = json.loads(meta_path.read_text())

    dense_path = directory / "dense.npz"
    if not dense_path.exists():
        raise CheckpointError(f"missing dense shard in {directory}")
    dense = np.load(dense_path)
    for name, p in model.named_parameters():
        if getattr(p, "is_expert", False):
            continue
        if name not in dense.files:
            if strict:
                raise CheckpointError(f"dense parameter {name!r} missing from checkpoint")
            continue
        arr = dense[name]
        if arr.shape != p.shape:
            raise CheckpointError(
                f"shape mismatch for {name!r}: checkpoint {arr.shape}, model {p.shape}"
            )
        p.data = arr.astype(p.data.dtype).copy()

    # Index every expert key across all shard files (lazy per-file load).
    shard_files = sorted(directory.glob("experts_*.npz"))
    key_to_file: dict[str, Path] = {}
    for f in shard_files:
        with np.load(f) as blob:
            for key in blob.files:
                key_to_file[key] = f
    cache: dict[Path, dict[str, np.ndarray]] = {}

    def fetch(key: str) -> np.ndarray:
        f = key_to_file.get(key)
        if f is None:
            raise CheckpointError(f"expert parameter {key!r} not found in any shard")
        if f not in cache:
            with np.load(f) as blob:
                cache[f] = {k: blob[k] for k in blob.files}
        return cache[f][key]

    for layer_idx, layer in _expert_layers(model):
        for local_idx, gid in enumerate(layer.global_expert_ids):
            for pname, p in layer.experts[local_idx].named_parameters():
                key = f"blocks.{layer_idx}.ffn.experts.{gid}.{pname}"
                arr = fetch(key)
                if arr.shape != p.shape:
                    raise CheckpointError(
                        f"shape mismatch for {key!r}: checkpoint {arr.shape}, "
                        f"model {p.shape}"
                    )
                p.data = arr.astype(p.data.dtype).copy()

    if optimizer is not None:
        opt_files = sorted(directory.glob("optim_*.npz"))
        if not opt_files:
            raise CheckpointError(
                f"checkpoint {directory} holds no optimizer state "
                "(saved without optimizer=...)"
            )
        state: dict[str, np.ndarray] = {}
        for f in opt_files:
            with np.load(f) as blob:
                for k in blob.files:
                    state[k] = blob[k]
        load_named_optimizer_state(model, optimizer, state)
    return meta
