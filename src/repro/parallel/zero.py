"""ZeRO-1 style optimizer-state sharding.

Each data-parallel rank keeps Adam moments and fp32 masters for only a
contiguous 1/P shard of the flattened parameter vector; after the
(already-synchronized) gradients arrive, the rank updates its shard and an
allgather redistributes the fresh parameters. Optimizer memory per rank
drops from 12 bytes/param to 12/P + parameter storage — the knob that lets
brain-scale models fit (experiment T4 quantifies it).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.simmpi import Comm
from repro.tensor import Tensor, quantize

__all__ = ["ZeroAdamW", "shard_bounds"]


def shard_bounds(total: int, size: int, rank: int) -> tuple[int, int]:
    """Contiguous, balanced [lo, hi) bounds of ``rank``'s shard."""
    if size < 1 or not 0 <= rank < size:
        raise ConfigError(f"invalid shard coordinates rank={rank} size={size}")
    base = total // size
    extra = total % size
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


class ZeroAdamW(object):
    """AdamW with optimizer state sharded over a communicator.

    API-compatible with :class:`repro.train.optim.Optimizer` (``lr``,
    ``params``, ``step(grad_scale)``, ``zero_grad``), so it drops into
    :class:`~repro.parallel.moda.MoDaTrainer`.

    Requirements: every rank of ``comm`` holds the same parameter list
    (same shapes, same values) with *synchronized gradients* before
    ``step`` — exactly the state after a data-parallel allreduce.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        comm: Comm,
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params: list[Tensor] = list(params)
        if not self.params:
            raise ConfigError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigError(f"lr must be > 0, got {lr}")
        self.comm = comm
        self.lr = float(lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ConfigError(f"betas must be in [0,1), got {betas}")
        self.beta1, self.beta2 = float(b1), float(b2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.step_count = 0

        self._total = sum(p.size for p in self.params)
        self._lo, self._hi = shard_bounds(self._total, comm.size, comm.rank)
        shard_len = self._hi - self._lo
        # fp32 master + moments for the local shard only.
        self._master = self._flat_params()[self._lo: self._hi].copy()
        self._m = np.zeros(shard_len, dtype=np.float32)
        self._v = np.zeros(shard_len, dtype=np.float32)

    # ------------------------------------------------------------------ #

    def _flat_params(self) -> np.ndarray:
        return np.concatenate(
            [p.data.astype(np.float32).reshape(-1) for p in self.params]
        ) if self.params else np.zeros(0, dtype=np.float32)

    def _flat_grads(self, grad_scale: float) -> np.ndarray:
        chunks = []
        for p in self.params:
            if p.grad is None:
                chunks.append(np.zeros(p.size, dtype=np.float32))
            else:
                chunks.append(p.grad.astype(np.float32).reshape(-1) * grad_scale)
        return np.concatenate(chunks)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    @property
    def shard_size(self) -> int:
        """Number of scalar parameters this rank's optimizer state covers."""
        return self._hi - self._lo

    def optimizer_state_bytes(self) -> int:
        """Bytes of fp32 optimizer state held locally (master + m + v)."""
        return 3 * 4 * self.shard_size

    # ------------------------------------------------------------------ #

    def step(self, grad_scale: float = 1.0) -> None:
        """Update the local shard, then allgather fresh parameters."""
        self.step_count += 1
        t = self.step_count
        g = self._flat_grads(grad_scale)[self._lo: self._hi]

        self._m = self.beta1 * self._m + (1 - self.beta1) * g
        self._v = self.beta2 * self._v + (1 - self.beta2) * g * g
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        update = (self._m / bc1) / (np.sqrt(self._v / bc2) + self.eps)
        if self.weight_decay:
            update = update + self.weight_decay * self._master
        self._master = self._master - self.lr * update

        shards = self.comm.allgather(self._master)
        flat = np.concatenate(shards) if shards else np.zeros(0, dtype=np.float32)
        if flat.shape != (self._total,):
            raise ConfigError(
                f"allgathered parameter vector has {flat.shape[0]} entries, "
                f"expected {self._total}"
            )
        offset = 0
        for p in self.params:
            n = p.size
            p.data = quantize(flat[offset: offset + n].reshape(p.shape), p.dtype)
            offset += n

    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict[str, np.ndarray | float]:
        return {
            "step_count": float(self.step_count),
            "master": self._master.copy(),
            "m": self._m.copy(),
            "v": self._v.copy(),
        }

    def load_state_dict(self, state) -> None:
        self.step_count = int(state["step_count"])
        self._master = np.asarray(state["master"], dtype=np.float32).copy()
        self._m = np.asarray(state["m"], dtype=np.float32).copy()
        self._v = np.asarray(state["v"], dtype=np.float32).copy()
