"""Pipeline parallelism (GPipe-style) over the simulated MPI.

Layers are split into contiguous *stages*, one per rank of a pipe
communicator; a global batch is split into M microbatches that stream
through the stages (all forwards, then all backwards), with activations
travelling forward and activation-gradients backward via point-to-point
messages. The pipeline *bubble* — stages idle while the pipe fills and
drains — costs a fraction ``(S-1)/(M+S-1)`` of the step, which is the
quantity the T5 ablation sweeps.

BaGuaLu itself runs MoDa (data x expert); pipeline parallelism is the
natural third axis (Megatron-style) and the paper-adjacent extension this
module contributes. Numerics are exact: gradients equal the single-process
model's (equivalence-tested), because stage boundaries are plain
activation tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.models.configs import ModelConfig
from repro.models.module import Module
from repro.models.transformer import MoELanguageModel
from repro.simmpi import Comm
from repro.tensor import Tensor, cross_entropy

__all__ = ["PipelineStage", "GPipeRunner", "pipeline_bubble_fraction", "stage_bounds"]


def pipeline_bubble_fraction(num_stages: int, num_microbatches: int) -> float:
    """Idle fraction of a GPipe schedule: (S-1) / (M + S - 1)."""
    if num_stages < 1 or num_microbatches < 1:
        raise ConfigError("stages and microbatches must be >= 1")
    return (num_stages - 1) / (num_microbatches + num_stages - 1)


def stage_bounds(n_layers: int, num_stages: int, stage: int) -> tuple[int, int]:
    """Contiguous, balanced [lo, hi) block range of ``stage``."""
    if num_stages < 1 or not 0 <= stage < num_stages:
        raise ConfigError(f"invalid stage {stage} of {num_stages}")
    if n_layers < num_stages:
        raise ConfigError(
            f"cannot split {n_layers} layers into {num_stages} stages"
        )
    base = n_layers // num_stages
    extra = n_layers % num_stages
    lo = stage * base + min(stage, extra)
    hi = lo + base + (1 if stage < extra else 0)
    return lo, hi


class PipelineStage(Module):
    """One rank's slice of an :class:`MoELanguageModel`.

    Stage 0 owns the embeddings; the last stage owns the final LayerNorm
    and LM head; every stage owns a contiguous block range. Because model
    components are seeded independently (see
    :class:`~repro.models.MoELanguageModel`), a stage's weights are
    *identical* to the corresponding slice of the full single-process
    model built with the same seed.
    """

    def __init__(
        self,
        config: ModelConfig,
        num_stages: int,
        stage: int,
        seed: int = 0,
        moe_factory=None,
    ):
        super().__init__()
        self.config = config
        self.num_stages = num_stages
        self.stage = stage
        self.lo, self.hi = stage_bounds(config.n_layers, num_stages, stage)
        # Build the full model structure, then keep only the local pieces.
        # (Component-wise seeding makes the kept pieces bit-identical to a
        # full build; the discarded ones are freed immediately.)
        # ``moe_factory`` flows through to MoELanguageModel so the stage's
        # MoE layers can be expert-parallel (3D parallelism).
        full = MoELanguageModel(config, seed=seed, moe_factory=moe_factory)
        self.is_first = stage == 0
        self.is_last = stage == num_stages - 1
        if self.is_first:
            self.tok_emb = full.tok_emb
            self.pos_emb = full.pos_emb
        self.register_module_list("blocks", full.blocks[self.lo: self.hi])
        if self.is_last:
            self.ln_f = full.ln_f
            self.lm_head = full.lm_head

    def embed(self, tokens: np.ndarray) -> Tensor:
        if not self.is_first:
            raise ConfigError("only stage 0 embeds tokens")
        tokens = np.asarray(tokens)
        pos = np.arange(tokens.shape[1])
        return self.tok_emb(tokens) + self.pos_emb(pos)

    def forward(self, x: Tensor) -> Tensor:
        """Run the local blocks (plus final LN/head on the last stage)."""
        for block in self.blocks:
            x = block(x)
        if self.is_last:
            x = self.lm_head(self.ln_f(x))
        return x

    def aux_loss(self) -> Tensor | None:
        losses = [
            b.ffn.last_aux_loss
            for b in self.blocks
            if hasattr(b.ffn, "last_aux_loss") and b.ffn.last_aux_loss is not None
        ]
        if not losses:
            return None
        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        return total


@dataclass
class _MicrobatchState:
    input_leaf: Tensor | None  # None on stage 0
    output: Tensor  # activation sent onward (logits on the last stage)
    #: Scalar to backprop on this stage: CE(+aux) on the last stage, the
    #: stage-local auxiliary loss elsewhere (None when no MoE aux).
    back_loss: Tensor | None = None
    #: Reported contributions (plain floats).
    ce_value: float = 0.0
    aux_value: float = 0.0


class GPipeRunner:
    """Executes GPipe training steps for one pipeline rank.

    All ranks of ``pipe_comm`` call :meth:`train_step` with the same
    ``tokens``/``targets`` (only stage 0 reads tokens, only the last stage
    reads targets — passing both everywhere keeps the API symmetric).
    """

    #: message tags
    _FWD = 101
    _BWD = 102
    _LOSS = 103

    def __init__(
        self,
        config: ModelConfig,
        pipe_comm: Comm,
        num_microbatches: int,
        seed: int = 0,
        moe_factory=None,
    ):
        if num_microbatches < 1:
            raise ConfigError("num_microbatches must be >= 1")
        self.config = config
        self.comm = pipe_comm
        self.num_microbatches = num_microbatches
        self.stage = PipelineStage(
            config, pipe_comm.size, pipe_comm.rank, seed=seed, moe_factory=moe_factory
        )

    @property
    def is_first(self) -> bool:
        return self.stage.is_first

    @property
    def is_last(self) -> bool:
        return self.stage.is_last

    def _split(self, arr: np.ndarray) -> list[np.ndarray]:
        b = arr.shape[0]
        m = self.num_microbatches
        if b % m != 0:
            raise ConfigError(
                f"batch size {b} must be divisible by num_microbatches={m}"
            )
        size = b // m
        return [arr[i * size: (i + 1) * size] for i in range(m)]

    def train_step(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """One GPipe step: returns the mean loss (identical on all stages).

        Gradients accumulate into the stage's parameters; the caller owns
        ``zero_grad`` and the optimizer step (and any data-parallel
        gradient sync around this call).
        """
        comm = self.comm
        rank = comm.rank
        micro_tokens = self._split(np.asarray(tokens))
        micro_targets = self._split(np.asarray(targets))
        states: list[_MicrobatchState] = []

        # ---------------- forward wave ---------------- #
        for m in range(self.num_microbatches):
            if self.is_first:
                x = self.stage.embed(micro_tokens[m])
                leaf = None
            else:
                data = comm.recv(source=rank - 1, tag=self._FWD)
                leaf = Tensor(data, requires_grad=True, dtype=self.config.dtype)
                x = leaf
            out = self.stage(x)
            aux = self.stage.aux_loss()  # this microbatch's MoE aux (or None)
            st = _MicrobatchState(input_leaf=leaf, output=out)
            if aux is not None:
                st.aux_value = float(aux.item())
            if self.is_last:
                b, t, v = out.shape
                ce = cross_entropy(out.reshape(b * t, v), micro_targets[m].reshape(-1))
                st.ce_value = float(ce.item())
                st.back_loss = ce + aux if aux is not None else ce
            else:
                comm.send(out.data, dest=rank + 1, tag=self._FWD)
                st.back_loss = aux  # stage-local term only
            states.append(st)

        # ---------------- backward wave ---------------- #
        inv_m = 1.0 / self.num_microbatches
        for m in reversed(range(self.num_microbatches)):
            st = states[m]
            if self.is_last:
                st.back_loss.backward(np.asarray(inv_m, dtype=st.back_loss.data.dtype))
            else:
                grad = comm.recv(source=rank + 1, tag=self._BWD)
                st.output.backward(grad)
                if st.back_loss is not None:
                    st.back_loss.backward(
                        np.asarray(inv_m, dtype=st.back_loss.data.dtype)
                    )
            if not self.is_first:
                comm.send(st.input_leaf.grad, dest=rank - 1, tag=self._BWD)

        # Every stage contributes its own aux; the last adds the CE. The
        # allreduce also reports an identical mean loss everywhere.
        local = sum(s.aux_value for s in states)
        if self.is_last:
            local += sum(s.ce_value for s in states)
        return float(comm.allreduce(local) * inv_m)
