"""Fault-tolerant training: periodic checkpoints + restart-on-failure.

At 96,000 nodes, hardware faults are routine; BaGuaLu-class runs survive
them by checkpointing and restarting from the last snapshot. This driver
reproduces that loop on the simulated machine:

* the SPMD program checkpoints (sharded, see
  :mod:`repro.parallel.dist_checkpoint`) every ``checkpoint_every`` steps;
* when a run dies (e.g. a :class:`~repro.errors.FaultInjected` rank kill
  or a deadlock from a dropped message), the driver relaunches the world,
  restores the latest checkpoint, and resumes;
* training is deterministic, so a faulted-and-recovered run reproduces
  the loss trajectory of an undisturbed one exactly — which is how the
  recovery path is tested.

This driver always relaunches at full width. :mod:`repro.resilience`
generalizes the loop: stochastic fault models, failure classification,
capped exponential backoff, and elastic shrink-and-reshard restarts that
finish the schedule on a narrower world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.data import ShardedLoader, SyntheticCorpus
from repro.errors import CommunicatorError, ConfigError, ReproError
from repro.models.configs import ModelConfig
from repro.parallel.dist_checkpoint import (
    latest_snapshot,
    load_distributed,
    save_distributed,
)
from repro.parallel.groups import build_groups
from repro.parallel.moda import MoDaTrainer, build_moda_model
from repro.simmpi import FaultPlan, run_spmd
from repro.train.optim import Adam

__all__ = ["ResilientRunConfig", "ResilientRunResult", "run_resilient_training"]


@dataclass(frozen=True)
class ResilientRunConfig:
    """Setup for a checkpoint-restart training run."""

    model: ModelConfig
    world_size: int
    ep_size: int
    total_steps: int
    checkpoint_every: int
    checkpoint_dir: str | Path
    batch_size: int = 4
    seq_len: int = 8
    lr: float = 1e-3
    seed: int = 0
    max_restarts: int = 5
    timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.total_steps < 1 or self.checkpoint_every < 1:
            raise ConfigError("total_steps and checkpoint_every must be >= 1")
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")


@dataclass
class ResilientRunResult:
    """Outcome of a (possibly multiply-restarted) training run.

    Losses computed by an attempt that later crashed are lost with it
    (exactly as on a real machine), so ``losses`` covers the contiguous
    step range ``[first_step, total_steps)`` executed by surviving
    segments. ``first_step`` is 0 for a healthy run and the restored
    checkpoint step of the earliest surviving segment otherwise.
    """

    #: Global loss for steps ``first_step .. total_steps - 1``.
    losses: list[float]
    #: Step index of ``losses[0]``.
    first_step: int
    #: How many times the world was relaunched after a failure.
    restarts: int
    #: Step indices at which checkpoints were written.
    checkpoint_steps: list[int]
    meta: dict[str, Any] = field(default_factory=dict)


def _latest_checkpoint(ckpt_dir: Path) -> tuple[Path | None, int]:
    """Newest *verified* per-step snapshot, or ``(None, 0)``.

    Snapshots live in ``step-<n>/`` subdirectories. The metadata file is
    written last (after the shard-manifest gather), so a directory with
    ``meta.json`` was complete at save time; on top of that,
    :func:`~repro.parallel.dist_checkpoint.latest_snapshot` re-checks the
    manifest on every restart, so a shard lost or truncated *after* the
    save (disk trouble, manual deletion) disqualifies the snapshot and
    recovery falls back to an older one instead of crashing mid-restore.
    """
    return latest_snapshot(ckpt_dir)


def _segment_program(comm, cfg: ResilientRunConfig, start_step: int, resume_dir: str | None):
    """Run from ``start_step`` to completion (or death), checkpointing."""
    groups = build_groups(comm, cfg.ep_size)
    model = build_moda_model(cfg.model, groups, seed=cfg.seed)
    optimizer = Adam(model.parameters(), lr=cfg.lr)
    if resume_dir is not None:
        load_distributed(
            Path(resume_dir), model, optimizer=optimizer,
            world_rank=comm.rank, world_size=comm.size,
        )
    trainer = MoDaTrainer(model, optimizer, groups)
    trainer.step_count = start_step
    corpus = SyntheticCorpus(
        vocab_size=cfg.model.vocab_size, predictability=0.9, seed=cfg.seed
    )
    loader = ShardedLoader(
        corpus, cfg.batch_size, cfg.seq_len, dp_rank=comm.rank, dp_size=comm.size
    )
    losses: list[float] = []
    ckpts: list[int] = []
    for step in range(start_step, cfg.total_steps):
        result = trainer.train_step(loader.get_batch(step))
        losses.append(result.global_loss)
        done = step + 1
        if done % cfg.checkpoint_every == 0 or done == cfg.total_steps:
            save_distributed(
                Path(cfg.checkpoint_dir) / f"step-{done:06d}", model, groups,
                step=done, optimizer=optimizer,
            )
            ckpts.append(done)
    return {"losses": losses, "ckpts": ckpts}


def run_resilient_training(
    cfg: ResilientRunConfig,
    network: Any | None = None,
    fault_plans: list[FaultPlan | None] | None = None,
) -> ResilientRunResult:
    """Drive training to ``total_steps``, restarting on failures.

    ``fault_plans[i]`` is injected into the i-th launch (None = healthy);
    the list is how tests script failures deterministically. Raises after
    ``max_restarts`` consecutive failed launches.
    """
    ckpt_dir = Path(cfg.checkpoint_dir)
    loss_by_step: dict[int, float] = {}
    all_ckpts: set[int] = set()
    restarts = 0
    attempt = 0
    done = False

    while not done:
        if attempt > cfg.max_restarts:
            raise CommunicatorError(
                f"training failed {attempt} times; giving up"
            )
        plan = None
        if fault_plans is not None and attempt < len(fault_plans):
            plan = fault_plans[attempt]
        resume_dir, start = _latest_checkpoint(ckpt_dir)
        try:
            res = run_spmd(
                _segment_program,
                cfg.world_size,
                network=network,
                timeout=cfg.timeout,
                faults=plan,
                args=(cfg, start, str(resume_dir) if resume_dir else None),
            )
        except ReproError:
            # A modelled failure (fault kill, deadlock, overflow) -> roll
            # back to the last checkpoint; partial results died with the
            # world. Programming errors (TypeError etc.) propagate — per
            # the repro.errors contract they must never look like a
            # recoverable hardware fault.
            restarts += 1
            attempt += 1
            continue
        attempt += 1
        seg = res.returns[0]
        for i, v in enumerate(seg["losses"]):
            loss_by_step[start + i] = v
        all_ckpts.update(seg["ckpts"])
        done = True

    covered = sorted(loss_by_step)
    return ResilientRunResult(
        losses=[loss_by_step[s] for s in covered],
        first_step=covered[0] if covered else 0,
        restarts=restarts,
        checkpoint_steps=sorted(all_ckpts),
        meta={"world_size": cfg.world_size, "ep_size": cfg.ep_size},
    )
