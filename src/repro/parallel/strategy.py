"""Composable parallel strategies behind one registry.

Every way this repo knows how to distribute training — data parallelism,
expert parallelism, the MoDa hybrid, tensor parallelism, GPipe pipelines,
ZeRO optimizer sharding, and their composites — is expressed as a
:class:`ParallelStrategy`: an object that validates a
:class:`~repro.layout.ParallelLayout`, builds the process groups and the
wrapped per-rank model, and exposes one distributed :meth:`train_step`.
The runner (:func:`~repro.parallel.runner.run_distributed_training`)
dispatches through :func:`get_strategy` / :func:`strategy_for_layout`, so
layouts that previously had no launch path (TP x EP, PP x MoDa) run
through the same entry point as plain MoDa.

Registered names: ``dp``, ``ep``, ``moda``, ``tp``, ``zero``,
``pipeline``, and the composites ``tp_ep``, ``pp_dp``, ``pp_moda``.

Rank geometry for the in-plane (non-pipeline) strategies follows
:class:`~repro.layout.ParallelLayout`: EP innermost (consecutive ranks,
alltoalls on the tightest links), TP in the middle, replicas outermost.
Ranks of one TP group consume the *same* data shard, so replicated
gradients averaged over the world and TP-sharded gradients averaged over
the same-shard group are both exact. Pipeline strategies reuse the
:mod:`~repro.parallel.grid3d` machinery (pipe x data x expert).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.amp import DynamicLossScaler, cast_model
from repro.data import ShardedLoader, SyntheticCorpus
from repro.errors import ConfigError
from repro.layout import ParallelLayout, validate_layout_for_model
from repro.models.configs import ModelConfig
from repro.models.transformer import MoELanguageModel
from repro.parallel.ep import DistributedMoELayer
from repro.parallel.grid3d import Trainer3D, build_groups3d
from repro.parallel.groups import MoDaGroups, build_groups
from repro.parallel.moda import MoDaTrainer, split_params
from repro.parallel.tp import TensorParallelMLP
from repro.parallel.zero import ZeroAdamW
from repro.perf.stepmodel import ComputeTimer
from repro.simmpi import Comm
from repro.train.optim import Adam
from repro.train.schedules import ConstantLR

if TYPE_CHECKING:  # pragma: no cover - circular at runtime, typing only
    from repro.hardware.specs import MachineSpec
    from repro.parallel.runner import TrainingRunConfig

__all__ = [
    "StepOutcome",
    "RankTrainer",
    "ParallelStrategy",
    "HybridGroups",
    "build_hybrid_groups",
    "build_hybrid_model",
    "HybridTrainer",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "strategy_for_layout",
]


# ---------------------------------------------------------------------- #
# Step protocol
# ---------------------------------------------------------------------- #


@dataclass
class StepOutcome:
    """What one distributed step reports back to the runner."""

    #: This rank's local loss.
    loss: float
    #: World-agreed (averaged) loss — identical on every rank.
    global_loss: float
    #: Expert-load imbalance (max/mean) observed this step; 1.0 if n/a.
    imbalance: float
    extras: dict[str, Any] = field(default_factory=dict)


class RankTrainer(ABC):
    """One rank's handle on a running strategy: call train_step per step."""

    @abstractmethod
    def train_step(self, step: int) -> StepOutcome:
        """Run distributed step ``step`` on this rank (collective call)."""


def _imbalance_of(modules) -> float:
    """Max/mean expert load over every MoE layer in ``modules``."""
    loads = [
        m.last_global_load
        for m in modules
        if getattr(m, "last_global_load", None) is not None
    ]
    if not loads:
        return 1.0
    total = np.sum(loads, axis=0).astype(np.float64)
    mean = total.mean()
    return float(total.max() / mean) if mean > 0 else 1.0


def _emit_step_observations(comm, step: int, outcome: StepOutcome,
                            modules, strategy_name: str) -> None:
    """Emit one step's metrics + router telemetry into the run's spine.

    Called by every rank after each step; only world rank 0 of an
    observing run records (loads are already group-allreduced, so one
    writer keeps the numbers global and counted once). On an unobserved
    run this is two attribute reads and a return.
    """
    context = comm.context
    if not context.observing or comm.rank != 0:
        return
    registry = context.metrics
    registry.counter("train_steps", strategy=strategy_name).inc()
    registry.gauge("train_loss", strategy=strategy_name).set(outcome.global_loss)
    registry.histogram("train_imbalance", strategy=strategy_name).observe(
        outcome.imbalance
    )
    if context.router is None:
        return
    layer = 0
    for m in modules:
        load = getattr(m, "last_global_load", None)
        if load is None:
            continue
        context.router.record(
            step, layer, load,
            drop_fraction=float(getattr(m, "last_drop_fraction", 0.0) or 0.0),
        )
        layer += 1


# ---------------------------------------------------------------------- #
# Hybrid (in-plane) process groups and model
# ---------------------------------------------------------------------- #


@dataclass
class HybridGroups:
    """Live communicators for one rank of an in-plane hybrid strategy.

    ``moda`` carries the classic world/EP/EDP triple; ``tp`` and ``tpdp``
    (the same-TP-shard replica group) are present only when
    ``layout.tp_size > 1``.
    """

    layout: ParallelLayout
    moda: MoDaGroups
    tp: Comm | None = None
    tpdp: Comm | None = None

    @property
    def world(self) -> Comm:
        return self.moda.world


def build_hybrid_groups(world: Comm, layout: ParallelLayout) -> HybridGroups:
    """Split ``world`` into EP/EDP (+ TP/TPDP) communicators.

    Collective call: every rank passes the same layout. ``layout.pp_size``
    must be 1 — pipeline stages are handled by
    :func:`~repro.parallel.grid3d.build_groups3d`.
    """
    if layout.pp_size != 1:
        raise ConfigError("build_hybrid_groups handles pp_size=1 layouts only")
    if layout.world_size != world.size:
        raise ConfigError(
            f"layout world_size={layout.world_size} != comm size {world.size}"
        )
    moda = build_groups(world, layout.ep_size)
    tp_comm = tpdp = None
    if layout.tp_size > 1:
        r = world.rank
        ep_rank = layout.ep_rank_of(r)
        tp_comm = world.Split(
            color=layout.dp_index_of(r) * layout.ep_size + ep_rank,
            key=layout.tp_rank_of(r),
        )
        tpdp = world.Split(color=layout.tp_rank_of(r), key=r)
        assert tp_comm is not None and tpdp is not None
    return HybridGroups(layout=layout, moda=moda, tp=tp_comm, tpdp=tpdp)


def build_hybrid_model(
    config: ModelConfig,
    groups: HybridGroups,
    seed: int = 0,
    alltoall_algorithm: str | None = None,
    compute_hook: Callable[[int], None] | None = None,
    overlap_chunks: int = 1,
) -> MoELanguageModel:
    """Per-rank model with EP-sharded MoE FFNs and (optionally) TP MLPs.

    Generalizes :func:`~repro.parallel.moda.build_moda_model`: MoE blocks
    become :class:`~repro.parallel.ep.DistributedMoELayer` over the EP
    group, and — when the layout has ``tp_size > 1`` — dense FFN blocks
    become :class:`~repro.parallel.tp.TensorParallelMLP` over the TP
    group. Both factories draw full weights from the shared per-block rng
    before sharding, so replicated weights stay bit-identical everywhere.
    """
    ep_size = groups.moda.grid.ep_size
    if config.num_experts % ep_size != 0:
        raise ConfigError(
            f"ep_size={ep_size} must divide num_experts={config.num_experts}"
        )

    def moe_factory(layer_idx: int, rng: np.random.Generator):
        return DistributedMoELayer(
            config.d_model,
            config.d_ff,
            config.num_experts,
            groups.moda.ep,
            shared_rng=rng,
            seed=seed,
            layer_id=layer_idx,
            gate=config.gate,
            top_k=config.top_k,
            capacity_factor=config.capacity_factor,
            aux_weight=config.aux_weight,
            z_weight=config.z_weight,
            alltoall_algorithm=alltoall_algorithm,
            dtype=config.dtype,
            compute_hook=compute_hook,
            overlap_chunks=overlap_chunks,
        )

    mlp_factory = None
    if groups.tp is not None:
        if config.d_ff % groups.tp.size != 0:
            raise ConfigError(
                f"tp_size={groups.tp.size} must divide d_ff={config.d_ff}"
            )

        def mlp_factory(layer_idx: int, rng: np.random.Generator):
            return TensorParallelMLP(
                config.d_model, config.d_ff, groups.tp, rng, dtype=config.dtype
            )

    return MoELanguageModel(
        config, seed=seed, moe_factory=moe_factory, mlp_factory=mlp_factory
    )


class HybridTrainer(MoDaTrainer):
    """MoDaTrainer extended with a tensor-parallel gradient-sync axis.

    Parameters partition three ways: replicated dense params average over
    the world, TP-sharded params over the same-shard (``tpdp``) group, and
    expert shards over EDP. With ``tp_size == 1`` this degenerates to the
    base MoDa plan exactly.
    """

    def __init__(self, model, optimizer, hybrid: HybridGroups, **kwargs):
        self.hybrid = hybrid
        super().__init__(model, optimizer, hybrid.moda, **kwargs)

    def _build_sync_groups(self):
        if self.hybrid.tpdp is None:
            return super()._build_sync_groups()
        replicated = [p for p in self.dense_params if not getattr(p, "is_tp", False)]
        tp_params = [p for p in self.dense_params if getattr(p, "is_tp", False)]
        plan = [("dense", replicated, self.groups.world)]
        if tp_params:
            plan.append(("tp", tp_params, self.hybrid.tpdp))
        plan.append(("expert", self.expert_params, self.groups.edp))
        return plan


class _ZeroHybridOptimizer:
    """ZeRO-sharded AdamW for replicated params + local Adam for experts.

    Replicated (dense) parameters have world-synchronized gradients, so
    :class:`~repro.parallel.zero.ZeroAdamW` over any subgroup computes the
    same update everywhere; expert shards get a plain local Adam (their
    gradients are EDP-synchronized, so local updates agree across
    replicas). API-compatible with :class:`repro.train.optim.Optimizer`.
    """

    def __init__(self, dense_params, expert_params, zero_comm: Comm, lr: float):
        self._zero = ZeroAdamW(dense_params, zero_comm, lr=lr)
        self._local = Adam(expert_params, lr=lr) if expert_params else None
        self.params = list(dense_params) + list(expert_params)

    @property
    def lr(self) -> float:
        return self._zero.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self._zero.lr = value
        if self._local is not None:
            self._local.lr = value

    def optimizer_state_bytes(self) -> int:
        """Locally-held fp32 optimizer state (the ZeRO shard)."""
        return self._zero.optimizer_state_bytes()

    def step(self, grad_scale: float = 1.0) -> None:
        self._zero.step(grad_scale)
        if self._local is not None:
            self._local.step(grad_scale)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


# ---------------------------------------------------------------------- #
# Strategy protocol + registry
# ---------------------------------------------------------------------- #


class ParallelStrategy(ABC):
    """How to launch one parallel composition: validate, build, step.

    Subclasses set ``name`` (the registry key) and ``composite`` (True
    when more than one parallel axis is active), implement
    :meth:`check_layout` for the axis constraints, and :meth:`build` to
    produce a :class:`RankTrainer` inside an SPMD rank.
    """

    name: str = ""
    composite: bool = False

    @abstractmethod
    def check_layout(self, layout: ParallelLayout) -> None:
        """Raise ConfigError unless ``layout`` fits this strategy."""

    def validate(self, cfg: "TrainingRunConfig") -> None:
        """Fail fast (driver-side) on an incompatible config.

        Axis constraints come from :meth:`check_layout`; the layout-vs-model
        constraints (EP/TP/PP divisibility against the model's shape) come
        from the shared :func:`~repro.layout.validate_layout_for_model`, so
        the measured runner and the analytic planner reject identical
        layouts with identical messages.
        """
        self.check_layout(cfg.layout)
        validate_layout_for_model(cfg.layout, cfg.model)

    @abstractmethod
    def build(
        self, comm: Comm, cfg: "TrainingRunConfig", machine: "MachineSpec | None"
    ) -> RankTrainer:
        """Construct groups/model/optimizer on one rank (collective)."""

    # Shared helpers ---------------------------------------------------- #

    @staticmethod
    def _timer(cfg: "TrainingRunConfig", machine) -> ComputeTimer | None:
        if machine is None or not cfg.model_compute_time:
            return None
        return ComputeTimer(
            cfg.model, machine, cfg.seq_len, tp_size=cfg.layout.tp_size
        )

    @staticmethod
    def _scaler(cfg: "TrainingRunConfig", model) -> DynamicLossScaler | None:
        if not cfg.mixed_precision:
            return None
        cast_model(model, "fp16")
        return DynamicLossScaler(init_scale=2.0**12, growth_interval=50)

    @staticmethod
    def _corpus(cfg: "TrainingRunConfig") -> SyntheticCorpus:
        return SyntheticCorpus(
            vocab_size=cfg.model.vocab_size,
            predictability=cfg.corpus_predictability,
            seed=cfg.seed,
        )


_REGISTRY: dict[str, ParallelStrategy] = {}


def register_strategy(strategy: ParallelStrategy) -> ParallelStrategy:
    """Add a strategy to the registry (name must be unique)."""
    if not strategy.name:
        raise ConfigError("strategy must carry a non-empty name")
    if strategy.name in _REGISTRY:
        raise ConfigError(f"strategy {strategy.name!r} already registered")
    _REGISTRY[strategy.name] = strategy
    return strategy


def get_strategy(name: str) -> ParallelStrategy:
    """Look a strategy up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        ) from None


def available_strategies() -> list[str]:
    """Sorted names of every registered strategy."""
    return sorted(_REGISTRY)


def strategy_for_layout(layout: ParallelLayout) -> ParallelStrategy:
    """Infer the registered strategy a layout describes.

    Pipeline beats TP beats ZeRO in the dispatch order; within each, the
    expert axis selects the composite variant.
    """
    if layout.pp_size > 1:
        if layout.ep_size > 1:
            return get_strategy("pp_moda")
        if layout.plane_size > 1:
            return get_strategy("pp_dp")
        return get_strategy("pipeline")
    if layout.tp_size > 1:
        return get_strategy("tp_ep" if layout.ep_size > 1 else "tp")
    if layout.zero_shards > 1:
        return get_strategy("zero")
    if layout.ep_size == 1:
        return get_strategy("dp")
    if layout.ep_size == layout.world_size:
        return get_strategy("ep")
    return get_strategy("moda")


# ---------------------------------------------------------------------- #
# In-plane strategies (no pipeline axis)
# ---------------------------------------------------------------------- #


class _PlaneTrainer(RankTrainer):
    """Adapter: drives a (Hybrid/MoDa) trainer through the step protocol."""

    def __init__(self, trainer: MoDaTrainer, model, loader, timer, comm, tokens,
                 strategy_name: str = "plane", overlap: bool = False):
        self.strategy_name = strategy_name
        self.trainer = trainer
        self.model = model
        self.loader = loader
        self.timer = timer
        self.comm = comm
        self.tokens = tokens
        #: When overlapping, only the forward share of the modelled dense
        #: compute is advanced up front; the backward share is advanced by
        #: the trainer's ``backward_compute_hook`` while the bucketed
        #: gradient allreduces are in flight (so sync hides behind it).
        self.overlap = overlap

    def train_step(self, step: int) -> StepOutcome:
        if self.timer is not None:
            if self.overlap:
                self.comm.advance(self.timer.dense_forward_time(self.tokens))
            else:
                self.comm.advance(self.timer.dense_step_time(self.tokens))
        res = self.trainer.train_step(self.loader.get_batch(step))
        outcome = StepOutcome(
            loss=res.loss,
            global_loss=res.global_loss,
            imbalance=_imbalance_of(self.model.moe_layers()),
            extras=dict(res.extras),
        )
        _emit_step_observations(
            self.comm, step, outcome, self.model.moe_layers(), self.strategy_name
        )
        return outcome


class _PlaneStrategy(ParallelStrategy):
    """Common build path for dp/ep/moda/tp/tp_ep/zero."""

    def build(self, comm, cfg, machine) -> RankTrainer:
        layout = cfg.layout
        timer = self._timer(cfg, machine)

        def compute_hook(rows: int) -> None:
            if timer is not None:
                comm.advance(timer.expert_layer_time(rows))

        overlap = cfg.overlap_chunks > 1

        def backward_hook() -> None:
            if timer is not None:
                comm.advance(
                    timer.dense_backward_time(cfg.batch_size * cfg.seq_len)
                )

        hybrid = build_hybrid_groups(comm, layout)
        model = build_hybrid_model(
            cfg.model,
            hybrid,
            seed=cfg.seed,
            alltoall_algorithm=cfg.alltoall_algorithm,
            compute_hook=compute_hook,
            overlap_chunks=cfg.overlap_chunks,
        )
        scaler = self._scaler(cfg, model)
        if layout.zero_shards > 1:
            zero_comm = comm.Split(color=comm.rank // layout.zero_shards, key=comm.rank)
            assert zero_comm is not None
            dense, expert = split_params(model)
            optimizer = _ZeroHybridOptimizer(dense, expert, zero_comm, lr=cfg.lr)
        else:
            optimizer = Adam(model.parameters(), lr=cfg.lr)
        trainer = HybridTrainer(
            model,
            optimizer,
            hybrid,
            schedule=ConstantLR(cfg.lr),
            scaler=scaler,
            allreduce_algorithm=cfg.allreduce_algorithm,
            overlap_grad_sync=overlap,
            grad_sync_buckets=cfg.overlap_chunks,
            backward_compute_hook=(
                backward_hook if overlap and timer is not None else None
            ),
        )
        r = comm.rank
        data_rank = layout.dp_index_of(r) * layout.ep_size + layout.ep_rank_of(r)
        loader = ShardedLoader(
            self._corpus(cfg), cfg.batch_size, cfg.seq_len,
            dp_rank=data_rank, dp_size=layout.data_streams,
        )
        return _PlaneTrainer(
            trainer, model, loader, timer, comm, cfg.batch_size * cfg.seq_len,
            strategy_name=self.name, overlap=overlap,
        )


class DataParallelStrategy(_PlaneStrategy):
    """Pure data parallelism: every rank holds the full model."""

    name = "dp"

    def check_layout(self, layout: ParallelLayout) -> None:
        if (layout.ep_size, layout.tp_size, layout.pp_size, layout.zero_shards) != (1, 1, 1, 1):
            raise ConfigError(
                f"dp wants ep=tp=pp=zero=1, got {layout.describe()}"
            )


class ExpertParallelStrategy(_PlaneStrategy):
    """Flat expert parallelism: one EP group spanning the world."""

    name = "ep"

    def check_layout(self, layout: ParallelLayout) -> None:
        if layout.ep_size != layout.world_size:
            raise ConfigError(
                f"ep wants ep_size == world_size, got {layout.describe()}"
            )
        if layout.tp_size != 1 or layout.pp_size != 1 or layout.zero_shards != 1:
            raise ConfigError(f"ep wants tp=pp=zero=1, got {layout.describe()}")


class MoDaStrategy(_PlaneStrategy):
    """The paper's hybrid: EP groups inside, data parallelism outside."""

    name = "moda"

    def check_layout(self, layout: ParallelLayout) -> None:
        if layout.tp_size != 1 or layout.pp_size != 1 or layout.zero_shards != 1:
            raise ConfigError(f"moda wants tp=pp=zero=1, got {layout.describe()}")


class TensorParallelStrategy(_PlaneStrategy):
    """Megatron-style TP over dense FFN blocks (+ data parallelism)."""

    name = "tp"

    def check_layout(self, layout: ParallelLayout) -> None:
        if layout.tp_size < 2:
            raise ConfigError(f"tp wants tp_size >= 2, got {layout.describe()}")
        if layout.ep_size != 1 or layout.pp_size != 1 or layout.zero_shards != 1:
            raise ConfigError(f"tp wants ep=pp=zero=1, got {layout.describe()}")


class TensorExpertStrategy(_PlaneStrategy):
    """Composite TP x EP: sharded dense MLPs and sharded experts."""

    name = "tp_ep"
    composite = True

    def check_layout(self, layout: ParallelLayout) -> None:
        if layout.tp_size < 2 or layout.ep_size < 2:
            raise ConfigError(
                f"tp_ep wants tp_size >= 2 and ep_size >= 2, got {layout.describe()}"
            )
        if layout.pp_size != 1 or layout.zero_shards != 1:
            raise ConfigError(f"tp_ep wants pp=zero=1, got {layout.describe()}")


class ZeroStrategy(_PlaneStrategy):
    """ZeRO-1 optimizer-state sharding over (possibly MoDa) replicas."""

    name = "zero"

    def check_layout(self, layout: ParallelLayout) -> None:
        if layout.zero_shards < 2:
            raise ConfigError(f"zero wants zero_shards >= 2, got {layout.describe()}")
        if layout.zero_shards > layout.world_size:
            raise ConfigError(
                f"zero_shards={layout.zero_shards} exceeds "
                f"world_size={layout.world_size}"
            )
        if layout.tp_size != 1 or layout.pp_size != 1:
            raise ConfigError(f"zero wants tp=pp=1, got {layout.describe()}")


# ---------------------------------------------------------------------- #
# Pipeline strategies
# ---------------------------------------------------------------------- #


class _PipelineTrainer(RankTrainer):
    """Adapter: drives a Trainer3D pipeline through the step protocol."""

    def __init__(self, trainer: Trainer3D, loader, timer, comm, tokens, pp_size,
                 strategy_name: str = "pipeline"):
        self.strategy_name = strategy_name
        self.trainer = trainer
        self.loader = loader
        self.timer = timer
        self.comm = comm
        self.tokens = tokens
        self.pp_size = pp_size

    def train_step(self, step: int) -> StepOutcome:
        if self.timer is not None:
            # Each stage holds ~1/pp of the layers, so the dense compute
            # per rank is the full-model step time split across stages.
            self.comm.advance(self.timer.dense_step_time(self.tokens) / self.pp_size)
        res = self.trainer.train_step(self.loader.get_batch(step))
        outcome = StepOutcome(
            loss=res.loss,
            global_loss=res.global_loss,
            imbalance=_imbalance_of(self.trainer.stage.modules()),
            extras=dict(res.extras),
        )
        _emit_step_observations(
            self.comm, step, outcome, self.trainer.stage.modules(),
            self.strategy_name,
        )
        return outcome


class _PipelineBase(ParallelStrategy):
    """Common build path for pipeline/pp_dp/pp_moda (via grid3d)."""

    def validate(self, cfg) -> None:
        super().validate(cfg)
        layout = cfg.layout
        if layout.tp_size != 1:
            raise ConfigError(
                f"pipeline strategies do not compose with tp yet, got {layout.describe()}"
            )
        if cfg.num_microbatches < 1 or cfg.batch_size % cfg.num_microbatches != 0:
            raise ConfigError(
                f"num_microbatches={cfg.num_microbatches} must divide "
                f"batch_size={cfg.batch_size}"
            )

    def build(self, comm, cfg, machine) -> RankTrainer:
        layout = cfg.layout
        timer = self._timer(cfg, machine)

        def compute_hook(rows: int) -> None:
            if timer is not None:
                comm.advance(timer.expert_layer_time(rows))

        groups = build_groups3d(comm, pipe_size=layout.pp_size, ep_size=layout.ep_size)
        trainer = Trainer3D(
            cfg.model,
            groups,
            num_microbatches=cfg.num_microbatches,
            seed=cfg.seed,
            schedule=ConstantLR(cfg.lr),
            alltoall_algorithm=cfg.alltoall_algorithm,
            allreduce_algorithm=cfg.allreduce_algorithm,
            compute_hook=compute_hook,
        )
        scaler = self._scaler(cfg, trainer.stage)
        trainer.scaler = scaler
        trainer.attach_optimizer(Adam(trainer.stage.parameters(), lr=cfg.lr))
        loader = ShardedLoader(
            self._corpus(cfg), cfg.batch_size, cfg.seq_len,
            dp_rank=groups.pipeline_id, dp_size=layout.plane_size,
        )
        return _PipelineTrainer(
            trainer, loader, timer, comm,
            cfg.batch_size * cfg.seq_len, layout.pp_size,
            strategy_name=self.name,
        )


class PipelineStrategy(_PipelineBase):
    """Pure GPipe: every rank is one pipeline stage."""

    name = "pipeline"

    def check_layout(self, layout: ParallelLayout) -> None:
        if layout.pp_size != layout.world_size or layout.world_size < 2:
            raise ConfigError(
                f"pipeline wants pp_size == world_size >= 2, got {layout.describe()}"
            )
        if layout.zero_shards != 1:
            raise ConfigError(f"pipeline wants zero=1, got {layout.describe()}")


class PipelineDataStrategy(_PipelineBase):
    """Composite PP x DP: replicated pipelines over data shards."""

    name = "pp_dp"
    composite = True

    def check_layout(self, layout: ParallelLayout) -> None:
        if layout.pp_size < 2 or layout.plane_size < 2:
            raise ConfigError(
                f"pp_dp wants pp_size >= 2 with a >1-rank plane, got {layout.describe()}"
            )
        if layout.ep_size != 1 or layout.zero_shards != 1:
            raise ConfigError(f"pp_dp wants ep=zero=1, got {layout.describe()}")


class PipelineMoDaStrategy(_PipelineBase):
    """Composite PP x MoDa: pipeline stages whose planes run MoDa."""

    name = "pp_moda"
    composite = True

    def check_layout(self, layout: ParallelLayout) -> None:
        if layout.pp_size < 2 or layout.ep_size < 2:
            raise ConfigError(
                f"pp_moda wants pp_size >= 2 and ep_size >= 2, got {layout.describe()}"
            )
        if layout.zero_shards != 1:
            raise ConfigError(f"pp_moda wants zero=1, got {layout.describe()}")


for _strategy in (
    DataParallelStrategy(),
    ExpertParallelStrategy(),
    MoDaStrategy(),
    TensorParallelStrategy(),
    TensorExpertStrategy(),
    ZeroStrategy(),
    PipelineStrategy(),
    PipelineDataStrategy(),
    PipelineMoDaStrategy(),
):
    register_strategy(_strategy)
