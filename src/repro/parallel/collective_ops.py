"""Differentiable collectives: autograd ops that communicate.

These wrap :class:`~repro.simmpi.Comm` collectives as autograd graph nodes
so that the backward pass *also* communicates (the adjoint pattern of each
collective), exactly like torch.distributed autograd functions:

* alltoall of token rows  ->  backward is the transposed alltoall;
* allreduce(sum)          ->  backward is allreduce(sum) of the gradient
  (identity per-rank when inputs were identical).

Because every rank executes a structurally identical program, the backward
collectives line up across ranks just like the forward ones.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CommunicatorError
from repro.simmpi import Comm
from repro.tensor import Tensor
from repro.tensor.tensor import _make

__all__ = [
    "alltoall_rows",
    "ialltoall_rows",
    "place_rows",
    "allreduce_sum",
    "copy_to_tp_region",
]


def alltoall_rows(
    x: Tensor,
    send_counts: Sequence[int],
    comm: Comm,
    algorithm: str | None = None,
) -> tuple[Tensor, list[int]]:
    """Exchange contiguous row blocks of ``x`` (M, D) between ranks.

    ``send_counts[r]`` rows go to rank r (blocks are consecutive in row
    order). Returns the received rows — ordered by source rank — and the
    per-source receive counts.

    Backward routes output gradients back with the transposed counts, so
    token gradients flow to the rank that owns the token.
    """
    send_counts = [int(c) for c in send_counts]
    if len(send_counts) != comm.size:
        raise CommunicatorError(
            f"send_counts must have {comm.size} entries, got {len(send_counts)}"
        )
    if sum(send_counts) != x.shape[0]:
        raise CommunicatorError(
            f"send_counts sum {sum(send_counts)} != rows {x.shape[0]}"
        )
    offsets = np.concatenate([[0], np.cumsum(send_counts)])
    parts = [x.data[offsets[r]: offsets[r + 1]] for r in range(comm.size)]
    received = comm.alltoall(parts, algorithm=algorithm)
    recv_counts = [int(p.shape[0]) for p in received]
    if received:
        data = np.concatenate(received, axis=0) if sum(recv_counts) else np.empty(
            (0,) + x.shape[1:], dtype=x.data.dtype
        )
    else:  # pragma: no cover - comm.size >= 1 always
        data = np.empty((0,) + x.shape[1:], dtype=x.data.dtype)
    recv_offsets = np.concatenate([[0], np.cumsum(recv_counts)])

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        gparts = [g[recv_offsets[r]: recv_offsets[r + 1]] for r in range(comm.size)]
        back = comm.alltoall(gparts, algorithm=algorithm)
        if sum(send_counts):
            gx = np.concatenate(back, axis=0)
        else:
            gx = np.empty((0,) + g.shape[1:], dtype=g.dtype)
        return (gx,)

    out = _make(data, x.dtype, (x,), backward)
    return out, recv_counts


class PendingAlltoallRows:
    """Handle from :func:`ialltoall_rows`; ``wait()`` -> (rows, counts).

    The exchange was issued (and rendezvoused) at creation; ``wait()``
    charges the exposed network cost and builds the differentiable output
    tensor. The backward pass uses a *blocking* transposed alltoall —
    gradient values are identical either way, and by wait time there is
    no forward compute left to hide behind.
    """

    def __init__(self, x: Tensor, send_counts: list[int], comm: Comm,
                 algorithm: str | None, req):
        self._x = x
        self._send_counts = send_counts
        self._comm = comm
        self._algorithm = algorithm
        self._req = req
        self._result: tuple[Tensor, list[int]] | None = None

    def wait(self) -> tuple[Tensor, list[int]]:
        if self._result is not None:
            return self._result
        x, comm = self._x, self._comm
        send_counts, algorithm = self._send_counts, self._algorithm
        received = self._req.wait()
        recv_counts = [int(p.shape[0]) for p in received]
        if sum(recv_counts):
            data = np.concatenate(received, axis=0)
        else:
            data = np.empty((0,) + x.shape[1:], dtype=x.data.dtype)
        recv_offsets = np.concatenate([[0], np.cumsum(recv_counts)])

        def backward(g: np.ndarray) -> Sequence[np.ndarray]:
            gparts = [g[recv_offsets[r]: recv_offsets[r + 1]] for r in range(comm.size)]
            back = comm.alltoall(gparts, algorithm=algorithm)
            if sum(send_counts):
                gx = np.concatenate(back, axis=0)
            else:
                gx = np.empty((0,) + g.shape[1:], dtype=g.dtype)
            return (gx,)

        out = _make(data, x.dtype, (x,), backward)
        self._result = (out, recv_counts)
        return self._result


def ialltoall_rows(
    x: Tensor,
    send_counts: Sequence[int],
    comm: Comm,
    algorithm: str | None = None,
) -> PendingAlltoallRows:
    """Nonblocking :func:`alltoall_rows`; returns a wait()-able handle.

    The row exchange rendezvouses eagerly (every rank must issue its
    nonblocking exchanges in the same order) but the network cost is
    charged lazily at ``wait()``, net of compute overlapped through
    ``Comm.advance`` — this is the primitive the chunked MoE dispatch
    pipelines expert matmuls against.
    """
    send_counts = [int(c) for c in send_counts]
    if len(send_counts) != comm.size:
        raise CommunicatorError(
            f"send_counts must have {comm.size} entries, got {len(send_counts)}"
        )
    if sum(send_counts) != x.shape[0]:
        raise CommunicatorError(
            f"send_counts sum {sum(send_counts)} != rows {x.shape[0]}"
        )
    offsets = np.concatenate([[0], np.cumsum(send_counts)])
    parts = [x.data[offsets[r]: offsets[r + 1]] for r in range(comm.size)]
    req = comm.ialltoall(parts, algorithm=algorithm)
    return PendingAlltoallRows(x, send_counts, comm, algorithm, req)


def place_rows(
    chunks: Sequence[Tensor],
    index_lists: Sequence[np.ndarray],
    total_rows: int,
) -> Tensor:
    """Reassemble disjoint row chunks into one (total_rows, D) tensor.

    ``chunks[c]`` lands at row indices ``index_lists[c]``; the index lists
    must partition ``range(total_rows)``. Forward is pure placement and
    backward pure slicing — no arithmetic — so a chunked pipeline that
    splits rows and reassembles them is bit-exact against the unsplit
    path in both directions.
    """
    if len(chunks) != len(index_lists):
        raise CommunicatorError(
            f"{len(chunks)} chunks but {len(index_lists)} index lists"
        )
    if not chunks:
        raise CommunicatorError("place_rows() of an empty chunk list")
    data = np.zeros((total_rows,) + chunks[0].shape[1:], dtype=chunks[0].data.dtype)
    for t, idx in zip(chunks, index_lists):
        data[idx] = t.data

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return tuple(g[idx] for idx in index_lists)

    return _make(data, chunks[0].dtype, tuple(chunks), backward)


def allreduce_sum(x: Tensor, comm: Comm, algorithm: str | None = None) -> Tensor:
    """Sum ``x`` across ranks; every rank returns the total.

    Autograd convention: the SPMD program computes one *logical* loss
    (each rank evaluates the same replicated value), so the adjoint of
    ``y = sum_r x_r`` is the identity — each rank's shard receives the
    (already replicated) output gradient with no further communication.
    This is the Megatron "g" operator used by tensor parallelism
    (:mod:`repro.parallel.tp`): allreduce forward, passthrough backward.
    """
    data = comm.allreduce(x.data, algorithm=algorithm)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g,)

    return _make(data, x.dtype, (x,), backward)


def copy_to_tp_region(x: Tensor, comm: Comm, algorithm: str | None = None) -> Tensor:
    """Megatron's "f" operator: identity forward, allreduce backward.

    Marks the point where a replicated activation enters a
    tensor-parallel region: each shard consumes the same input, so the
    input's gradient is the *sum* of the shards' contributions.
    The dual of :func:`allreduce_sum` (the "g" operator).
    """
    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (comm.allreduce(g, algorithm=algorithm),)

    return _make(x.data, x.dtype, (x,), backward)
