"""Tensor (intra-layer) parallelism: Megatron-style column/row splits.

BaGuaLu itself partitions by experts rather than within matrices, but a
framework in this family needs the intra-layer axis too, so it is provided
as substrate:

* :class:`ColumnParallelLinear` splits the weight's *output* dimension
  over the TP group; each rank computes a slice of the activations
  (forward needs no communication; backward allreduces the input grad).
* :class:`RowParallelLinear` splits the *input* dimension; each rank
  computes a partial product and the forward allreduces the partials.
* :class:`TensorParallelMLP` composes them the Megatron way
  (column -> gelu -> row): exactly **one** allreduce per direction for the
  whole MLP, with the nonlinearity applied to local shards.

Equivalence with the dense layers is exact (tested): TP changes where the
FLOPs run, never the math.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.layers import Linear
from repro.models.module import Module, Parameter
from repro.parallel.collective_ops import allreduce_sum, copy_to_tp_region
from repro.simmpi import Comm
from repro.tensor import Tensor, gelu

__all__ = [
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelMLP",
    "shard_linear_weights",
]


def shard_linear_weights(
    weight: np.ndarray, bias: np.ndarray | None, tp_rank: int, tp_size: int, axis: int
) -> tuple[np.ndarray, np.ndarray | None]:
    """Slice a dense (in, out) weight for one TP rank.

    ``axis=1`` is the column split (output dim; bias is sliced too);
    ``axis=0`` the row split (input dim; bias stays whole and is applied
    once, after the allreduce).
    """
    if axis not in (0, 1):
        raise ConfigError(f"axis must be 0 or 1, got {axis}")
    dim = weight.shape[axis]
    if dim % tp_size != 0:
        raise ConfigError(
            f"weight dim {dim} (axis {axis}) not divisible by tp_size={tp_size}"
        )
    per = dim // tp_size
    sl = slice(tp_rank * per, (tp_rank + 1) * per)
    w = weight[:, sl] if axis == 1 else weight[sl, :]
    b = None
    if bias is not None:
        b = bias[sl] if axis == 1 else bias
    return w.copy(), (b.copy() if b is not None else None)


class ColumnParallelLinear(Module):
    """Linear with the output dimension sharded over the TP group.

    Output shape is (..., out_features / tp_size) — a *local shard*. The
    forward is communication-free; the backward's input gradient is summed
    across the group by the consumer (see :class:`RowParallelLinear`'s
    forward allreduce, or an explicit gather if used standalone).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        tp_comm: Comm,
        rng: np.random.Generator,
        bias: bool = True,
        init_std: float = 0.02,
        dtype: str = "fp32",
    ):
        super().__init__()
        if out_features % tp_comm.size != 0:
            raise ConfigError(
                f"out_features={out_features} not divisible by "
                f"tp_size={tp_comm.size}"
            )
        self.comm = tp_comm
        self.in_features = in_features
        self.out_features = out_features
        self.local_out = out_features // tp_comm.size
        # Draw the *full* weight from the shared rng (identical on every
        # rank), then keep the local slice: the sharded model is exactly a
        # partition of the dense one.
        full_w = rng.normal(0.0, init_std, size=(in_features, out_features))
        full_b = np.zeros(out_features) if bias else None
        w, b = shard_linear_weights(full_w, full_b, tp_comm.rank, tp_comm.size, axis=1)
        self.weight = Parameter(w, dtype=dtype)
        self.weight.is_tp = True
        self.bias = Parameter(b, dtype=dtype) if b is not None else None
        if self.bias is not None:
            self.bias.is_tp = True

    def forward(self, x: Tensor) -> Tensor:
        # "f" operator: every shard consumes the replicated input, so the
        # input gradient is the allreduced sum of shard contributions.
        x = copy_to_tp_region(x, self.comm)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class RowParallelLinear(Module):
    """Linear with the input dimension sharded over the TP group.

    Consumes a local shard (..., in_features / tp_size) — e.g. a
    ColumnParallelLinear's output — and produces the *full* output: each
    rank computes a partial product and the forward allreduces the sum
    (whose backward, an allreduce too, routes gradients to every shard).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        tp_comm: Comm,
        rng: np.random.Generator,
        bias: bool = True,
        init_std: float = 0.02,
        dtype: str = "fp32",
    ):
        super().__init__()
        if in_features % tp_comm.size != 0:
            raise ConfigError(
                f"in_features={in_features} not divisible by tp_size={tp_comm.size}"
            )
        self.comm = tp_comm
        self.in_features = in_features
        self.out_features = out_features
        self.local_in = in_features // tp_comm.size
        full_w = rng.normal(0.0, init_std, size=(in_features, out_features))
        full_b = np.zeros(out_features) if bias else None
        w, b = shard_linear_weights(full_w, full_b, tp_comm.rank, tp_comm.size, axis=0)
        self.weight = Parameter(w, dtype=dtype)
        self.weight.is_tp = True
        # Bias is applied once, after the sum (only the values matter; all
        # ranks hold the same copy and its gradient averages in DP), so it
        # is *replicated*, not TP-sharded.
        self.bias = Parameter(b, dtype=dtype) if b is not None else None

    def forward(self, x_local: Tensor) -> Tensor:
        partial = x_local @ self.weight
        total = allreduce_sum(partial, self.comm)
        if self.bias is not None:
            total = total + self.bias
        return total


class TensorParallelMLP(Module):
    """Megatron MLP: column-parallel fc_in -> GELU -> row-parallel fc_out.

    Numerically identical to :class:`repro.models.MLP` built from the same
    rng (equivalence-tested), with the d_ff dimension sharded and exactly
    one forward allreduce.
    """

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        tp_comm: Comm,
        rng: np.random.Generator,
        init_std: float = 0.02,
        dtype: str = "fp32",
    ):
        super().__init__()
        self.d_model = d_model
        self.d_ff = d_ff
        self.comm = tp_comm
        self.fc_in = ColumnParallelLinear(
            d_model, d_ff, tp_comm, rng, init_std=init_std, dtype=dtype
        )
        self.fc_out = RowParallelLinear(
            d_ff, d_model, tp_comm, rng, init_std=init_std, dtype=dtype
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.fc_out(gelu(self.fc_in(x)))
