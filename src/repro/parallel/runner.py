"""Turn-key SPMD experiment runner.

One parametrized entry point covers the measured side of every strategy
comparison (experiment T3 and the measured halves of F1/F2):

* ``ep_size=1``                  -> pure data parallelism (every rank holds
  every expert; only gradients are communicated);
* ``ep_size=world, flat``        -> naive expert parallelism with the flat
  alltoall;
* ``1 < ep_size`` + hierarchical -> the MoDa hybrid.

Each rank trains on its own data shard; virtual clocks advance by modelled
compute (via :class:`~repro.perf.ComputeTimer`) and by the network cost of
every communication operation, so the run's ``simulated_time`` is a
topology-aware per-step cost measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.amp import DynamicLossScaler, cast_model
from repro.data import ShardedLoader, SyntheticCorpus
from repro.errors import ConfigError
from repro.hardware.specs import MachineSpec, sunway_machine
from repro.models.configs import ModelConfig
from repro.network.costmodel import NetworkModel
from repro.network.presets import sunway_network
from repro.parallel.groups import build_groups
from repro.parallel.moda import MoDaTrainer, build_moda_model
from repro.perf.stepmodel import ComputeTimer
from repro.simmpi import run_spmd
from repro.train.optim import Adam
from repro.train.schedules import ConstantLR

__all__ = ["TrainingRunConfig", "TrainingRunResult", "run_distributed_training"]


@dataclass(frozen=True)
class TrainingRunConfig:
    """Everything needed to launch one measured SPMD training run."""

    model: ModelConfig
    world_size: int
    ep_size: int
    num_steps: int = 4
    batch_size: int = 4
    seq_len: int = 16
    lr: float = 1e-3
    seed: int = 0
    corpus_predictability: float = 0.8
    alltoall_algorithm: str | None = None
    allreduce_algorithm: str | None = None
    mixed_precision: bool = False
    model_compute_time: bool = True
    timeout: float = 600.0

    def __post_init__(self) -> None:
        if self.world_size < 1 or self.num_steps < 1:
            raise ConfigError("world_size and num_steps must be >= 1")
        if self.world_size % self.ep_size != 0:
            raise ConfigError(
                f"ep_size={self.ep_size} must divide world_size={self.world_size}"
            )


@dataclass
class TrainingRunResult:
    """Aggregated outcome of one run."""

    #: Global (world-averaged) loss per step.
    losses: list[float]
    #: Virtual makespan in seconds.
    simulated_time: float
    #: Virtual seconds per training step (makespan / steps).
    step_time: float
    #: Traffic summary from the engine.
    traffic: dict[str, Any]
    #: Per-rank expert-load imbalance (max/mean) averaged over steps.
    load_imbalance: float
    meta: dict[str, Any] = field(default_factory=dict)


def _rank_program(comm, cfg: TrainingRunConfig, machine: MachineSpec):
    timer = (
        ComputeTimer(cfg.model, machine, cfg.seq_len)
        if cfg.model_compute_time
        else None
    )

    def compute_hook(rows: int) -> None:
        if timer is not None:
            comm.advance(timer.expert_layer_time(rows))

    groups = build_groups(comm, cfg.ep_size)
    model = build_moda_model(
        cfg.model,
        groups,
        seed=cfg.seed,
        alltoall_algorithm=cfg.alltoall_algorithm,
        compute_hook=compute_hook,
    )
    scaler = None
    if cfg.mixed_precision:
        cast_model(model, "fp16")
        scaler = DynamicLossScaler(init_scale=2.0**12, growth_interval=50)

    corpus = SyntheticCorpus(
        vocab_size=cfg.model.vocab_size,
        predictability=cfg.corpus_predictability,
        seed=cfg.seed,
    )
    loader = ShardedLoader(
        corpus, cfg.batch_size, cfg.seq_len, dp_rank=comm.rank, dp_size=comm.size
    )
    optimizer = Adam(model.parameters(), lr=cfg.lr)
    trainer = MoDaTrainer(
        model,
        optimizer,
        groups,
        schedule=ConstantLR(cfg.lr),
        scaler=scaler,
        allreduce_algorithm=cfg.allreduce_algorithm,
    )

    losses: list[float] = []
    imbalances: list[float] = []
    for step in range(cfg.num_steps):
        if timer is not None:
            comm.advance(timer.dense_step_time(cfg.batch_size * cfg.seq_len))
        result = trainer.train_step(loader.get_batch(step))
        losses.append(result.global_loss)
        loads = [
            m.last_global_load
            for m in model.moe_layers()
            if getattr(m, "last_global_load", None) is not None
        ]
        if loads:
            total = np.sum(loads, axis=0).astype(np.float64)
            mean = total.mean()
            imbalances.append(float(total.max() / mean) if mean > 0 else 1.0)
    return {
        "losses": losses,
        "imbalance": float(np.mean(imbalances)) if imbalances else 1.0,
    }


def run_distributed_training(
    cfg: TrainingRunConfig,
    network: NetworkModel | None = None,
    machine: MachineSpec | None = None,
) -> TrainingRunResult:
    """Execute the SPMD training run and aggregate per-rank results."""
    network = network or sunway_network(cfg.world_size)
    machine = machine or sunway_machine(num_nodes=cfg.world_size)
    spmd = run_spmd(
        _rank_program,
        cfg.world_size,
        network=network,
        seed=cfg.seed,
        timeout=cfg.timeout,
        args=(cfg, machine),
    )
    losses = spmd.returns[0]["losses"]
    for r in spmd.returns[1:]:
        if not np.allclose(r["losses"], losses):
            raise ConfigError("ranks disagree on the global loss trajectory")
    return TrainingRunResult(
        losses=losses,
        simulated_time=spmd.simulated_time,
        step_time=spmd.simulated_time / cfg.num_steps,
        traffic=spmd.stats.summary(),
        load_imbalance=float(np.mean([r["imbalance"] for r in spmd.returns])),
        meta={
            "world_size": cfg.world_size,
            "ep_size": cfg.ep_size,
            "mixed_precision": cfg.mixed_precision,
            "alltoall": cfg.alltoall_algorithm,
            "allreduce": cfg.allreduce_algorithm,
        },
    )
