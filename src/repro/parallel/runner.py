"""Turn-key SPMD experiment runner over the strategy registry.

One parametrized entry point covers the measured side of every strategy
comparison (experiment T3 and the measured halves of F1/F2). The layout
knobs (``ep_size``, ``tp_size``, ``pp_size``, ``zero_shards``) pick a
registered :class:`~repro.parallel.strategy.ParallelStrategy`:

* ``ep_size=1``                  -> pure data parallelism;
* ``ep_size=world, flat``        -> naive expert parallelism;
* ``1 < ep_size`` + hierarchical -> the MoDa hybrid;
* ``tp_size/pp_size/zero_shards``-> tensor, pipeline, and ZeRO runs, and
  the TP x EP / PP x DP / PP x MoDa composites — all through the same
  dispatch (``strategy="auto"`` infers; name a strategy to pin it).

Each rank trains on its own data shard; virtual clocks advance by modelled
compute (via :class:`~repro.perf.ComputeTimer`) and by the network cost of
every communication operation, so the run's ``simulated_time`` is a
topology-aware per-step cost measurement. The run's
:class:`~repro.simmpi.RunContext` (traffic + trace + phase timers) comes
back on the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.hardware.specs import MachineSpec, sunway_machine
from repro.layout import ParallelLayout
from repro.models.configs import ModelConfig
from repro.network.costmodel import NetworkModel
from repro.network.presets import sunway_network
from repro.parallel.strategy import (
    ParallelStrategy,
    get_strategy,
    strategy_for_layout,
)
from repro.simmpi import RunContext, run_spmd

__all__ = ["TrainingRunConfig", "TrainingRunResult", "run_distributed_training"]


@dataclass(frozen=True)
class TrainingRunConfig:
    """Everything needed to launch one measured SPMD training run."""

    model: ModelConfig
    world_size: int
    ep_size: int = 1
    num_steps: int = 4
    batch_size: int = 4
    seq_len: int = 16
    lr: float = 1e-3
    seed: int = 0
    corpus_predictability: float = 0.8
    alltoall_algorithm: str | None = None
    allreduce_algorithm: str | None = None
    mixed_precision: bool = False
    model_compute_time: bool = True
    timeout: float = 600.0
    #: Tensor-parallel group width (shards dense FFN blocks).
    tp_size: int = 1
    #: Pipeline stages (GPipe over layer blocks).
    pp_size: int = 1
    #: ZeRO-1 optimizer-state sharding factor (1 = off).
    zero_shards: int = 1
    #: Microbatches per step for pipeline strategies.
    num_microbatches: int = 2
    #: Comm/compute overlap width: >1 splits expert dispatch into that
    #: many pipelined chunks (bitwise-identical math) and buckets the
    #: gradient allreduce to overlap with backward compute. Pipeline
    #: strategies ignore it.
    overlap_chunks: int = 1
    #: Registry name, or "auto" to infer from the layout.
    strategy: str = "auto"
    #: Record TraceEvents (Chrome-trace exportable via the RunContext).
    trace: bool = False
    #: Give the run a live metric registry + router telemetry
    #: (``result.context.metrics`` / ``.router``); off by default so the
    #: hot path stays on the no-op registry.
    observe: bool = False

    def __post_init__(self) -> None:
        if self.world_size < 1 or self.num_steps < 1:
            raise ConfigError("world_size and num_steps must be >= 1")
        if self.world_size % self.ep_size != 0:
            raise ConfigError(
                f"ep_size={self.ep_size} must divide world_size={self.world_size}"
            )
        if self.overlap_chunks < 1:
            raise ConfigError(
                f"overlap_chunks must be >= 1, got {self.overlap_chunks}"
            )
        _ = self.layout  # shared validation (divisibility across all axes)
        if self.strategy != "auto":
            get_strategy(self.strategy)  # unknown names fail at build time

    @property
    def layout(self) -> ParallelLayout:
        """The validated parallel layout this config describes."""
        return ParallelLayout(
            world_size=self.world_size,
            ep_size=self.ep_size,
            tp_size=self.tp_size,
            pp_size=self.pp_size,
            zero_shards=self.zero_shards,
        )

    def resolve_strategy(self) -> ParallelStrategy:
        """The registered strategy this run dispatches through."""
        if self.strategy != "auto":
            return get_strategy(self.strategy)
        return strategy_for_layout(self.layout)


@dataclass
class TrainingRunResult:
    """Aggregated outcome of one run."""

    #: Global (world-averaged) loss per step.
    losses: list[float]
    #: Virtual makespan in seconds.
    simulated_time: float
    #: Virtual seconds per training step (makespan / steps).
    step_time: float
    #: Traffic summary from the engine.
    traffic: dict[str, Any]
    #: Per-rank expert-load imbalance (max/mean) averaged over steps.
    load_imbalance: float
    meta: dict[str, Any] = field(default_factory=dict)
    #: Virtual seconds per phase (forward/backward/grad_sync/...).
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: The run's instrumentation spine (stats + trace + phases).
    context: RunContext | None = None
    #: TraceEvents when cfg.trace was set, else None.
    trace: list[Any] | None = None


def _rank_program(comm, cfg: TrainingRunConfig, machine: MachineSpec):
    strategy = cfg.resolve_strategy()
    trainer = strategy.build(comm, cfg, machine)
    losses: list[float] = []
    imbalances: list[float] = []
    for step in range(cfg.num_steps):
        outcome = trainer.train_step(step)
        losses.append(outcome.global_loss)
        imbalances.append(outcome.imbalance)
    return {
        "losses": losses,
        "imbalance": float(np.mean(imbalances)) if imbalances else 1.0,
    }


def run_distributed_training(
    cfg: TrainingRunConfig,
    network: NetworkModel | None = None,
    machine: MachineSpec | None = None,
) -> TrainingRunResult:
    """Execute the SPMD training run and aggregate per-rank results.

    Dispatches through the strategy registry: the config's layout (or an
    explicit ``cfg.strategy`` name) selects how groups, model wrapper, and
    the distributed step are built on every rank.
    """
    strategy = cfg.resolve_strategy()
    strategy.validate(cfg)
    network = network or sunway_network(cfg.world_size)
    machine = machine or sunway_machine(num_nodes=cfg.world_size)
    spmd = run_spmd(
        _rank_program,
        cfg.world_size,
        network=network,
        seed=cfg.seed,
        timeout=cfg.timeout,
        args=(cfg, machine),
        trace=cfg.trace,
        observe=cfg.observe,
    )
    losses = spmd.returns[0]["losses"]
    for r in spmd.returns[1:]:
        if not np.allclose(r["losses"], losses):
            raise ConfigError("ranks disagree on the global loss trajectory")
    context = spmd.context
    return TrainingRunResult(
        losses=losses,
        simulated_time=spmd.simulated_time,
        step_time=spmd.simulated_time / cfg.num_steps,
        traffic=spmd.stats.summary(),
        load_imbalance=float(np.mean([r["imbalance"] for r in spmd.returns])),
        meta={
            "world_size": cfg.world_size,
            "ep_size": cfg.ep_size,
            "tp_size": cfg.tp_size,
            "pp_size": cfg.pp_size,
            "zero_shards": cfg.zero_shards,
            "strategy": strategy.name,
            "overlap_chunks": cfg.overlap_chunks,
            "mixed_precision": cfg.mixed_precision,
            "alltoall": cfg.alltoall_algorithm,
            "allreduce": cfg.allreduce_algorithm,
        },
        phase_seconds=context.phase_seconds if context is not None else {},
        context=context,
        trace=spmd.trace,
    )
