"""Data parallelism: gradient synchronization and parameter broadcast.

Gradients of replicated parameters are flattened into a single fp32 bucket
and allreduced in one collective (the bucketing every production DP
implementation performs — it converts many latency-bound allreduces into
one bandwidth-bound one, which is also what the hierarchical-allreduce
ablation F4 measures).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CommunicatorError
from repro.simmpi import Comm
from repro.tensor import Tensor, quantize

__all__ = [
    "allreduce_gradients",
    "iallreduce_gradients",
    "PendingGradAllreduce",
    "broadcast_parameters",
    "flatten_grads",
    "unflatten_grads",
]


def flatten_grads(params: Sequence[Tensor]) -> np.ndarray:
    """Concatenate all gradients into one fp32 vector (zeros when absent)."""
    chunks = []
    for p in params:
        if p.grad is None:
            chunks.append(np.zeros(p.size, dtype=np.float32))
        else:
            chunks.append(p.grad.astype(np.float32).reshape(-1))
    if not chunks:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate(chunks)


def unflatten_grads(params: Sequence[Tensor], flat: np.ndarray) -> None:
    """Write a flat gradient vector back into per-parameter ``.grad``."""
    expected = sum(p.size for p in params)
    if flat.shape != (expected,):
        raise CommunicatorError(
            f"flat grad has shape {flat.shape}, expected ({expected},)"
        )
    offset = 0
    for p in params:
        n = p.size
        g = flat[offset: offset + n].reshape(p.shape)
        p.grad = quantize(g, p.dtype)
        offset += n


def allreduce_gradients(
    comm: Comm,
    params: Sequence[Tensor],
    average: bool = True,
    algorithm: str | None = None,
) -> int:
    """Sum (or average) gradients of ``params`` across ``comm``.

    Returns the number of bytes moved per rank (fp32 bucket size), which
    callers can use for traffic accounting.
    """
    if comm.size == 1:
        return 0
    flat = flatten_grads(params)
    total = comm.allreduce(flat, algorithm=algorithm)
    if average:
        total = total / comm.size
    unflatten_grads(params, total)
    return int(flat.nbytes)


class PendingGradAllreduce:
    """Handle from :func:`iallreduce_gradients`; ``wait()`` -> bytes moved.

    The bucketed allreduces were issued (and rendezvoused) at creation;
    ``wait()`` charges the exposed network cost of each bucket, reduces the
    buckets back into per-parameter ``.grad``, and returns the fp32 bucket
    bytes per rank. Element-wise bucket sums concatenate to exactly the
    whole-vector sum, so the result is numerically identical to
    :func:`allreduce_gradients`.
    """

    def __init__(self, comm: Comm, params: Sequence[Tensor], average: bool,
                 reqs: list, nbytes: int):
        self._comm = comm
        self._params = params
        self._average = average
        self._reqs = reqs
        self._nbytes = nbytes
        self._done = False

    def wait(self) -> int:
        if self._done:
            return self._nbytes
        self._done = True
        if not self._reqs:  # size-1 comm: nothing was issued, grads untouched
            return self._nbytes
        total = np.concatenate([req.wait() for req in self._reqs])
        if self._average:
            total = total / self._comm.size
        unflatten_grads(self._params, total)
        return self._nbytes


def iallreduce_gradients(
    comm: Comm,
    params: Sequence[Tensor],
    average: bool = True,
    algorithm: str | None = None,
    num_buckets: int = 1,
) -> PendingGradAllreduce:
    """Nonblocking :func:`allreduce_gradients`; returns a wait()-able handle.

    The flat fp32 gradient vector is split into ``num_buckets`` contiguous
    buckets, each issued as one ``comm.iallreduce`` — compute advanced via
    ``Comm.advance`` between issue and ``wait()`` is credited against every
    in-flight bucket, so gradient sync overlaps with (modelled) backward
    compute on the virtual clock.
    """
    if num_buckets < 1:
        raise CommunicatorError(f"num_buckets must be >= 1, got {num_buckets}")
    if comm.size == 1:
        return PendingGradAllreduce(comm, params, average, [], 0)
    flat = flatten_grads(params)
    buckets = np.array_split(flat, min(num_buckets, max(1, flat.size)))
    reqs = [comm.iallreduce(b, algorithm=algorithm) for b in buckets]
    return PendingGradAllreduce(comm, params, average, reqs, int(flat.nbytes))


def broadcast_parameters(comm: Comm, params: Sequence[Tensor], root: int = 0) -> None:
    """Make every rank's parameters bit-identical to ``root``'s.

    Called once at startup so replicated parameters start in sync (the
    invariant DP training preserves thereafter).
    """
    if comm.size == 1:
        return
    if not params:
        comm.bcast(None, root=root)
        return
    flat = np.concatenate([p.data.astype(np.float32).reshape(-1) for p in params])
    flat = comm.bcast(flat, root=root)
    offset = 0
    for p in params:
        n = p.size
        p.data = quantize(flat[offset: offset + n].reshape(p.shape), p.dtype)
        offset += n
