"""3D parallelism: pipeline x data x expert (the Megatron-style superset).

The world is factored as ``pipe_size`` stage *planes* of
``dp_size x ep_size`` ranks:

* ranks in the same plane hold the same pipeline stage; within the plane
  they run MoDa (dense params data-parallel, experts sharded over EP
  groups);
* ranks at the same plane position across planes form one *pipeline* and
  stream microbatches GPipe-style.

Rank layout (world rank ``r``)::

    stage       = r // plane_size          (outermost)
    plane_rank  = r %  plane_size          (= pipeline id)
    ep_group    = plane_rank // ep_size
    ep_rank     = plane_rank %  ep_size

Each pipeline consumes its own data shard (``dp_stream = plane_rank``), so
the *global* batch is the concatenation over plane positions — exactly the
data-parallel semantics of plain MoDa, now with layers also split across
stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.amp import DynamicLossScaler, grads_have_overflow
from repro.data.loader import Batch
from repro.errors import ConfigError
from repro.models.configs import ModelConfig
from repro.parallel.dp import allreduce_gradients
from repro.parallel.ep import DistributedMoELayer
from repro.parallel.groups import MoDaGroups, build_groups
from repro.parallel.moda import split_params
from repro.parallel.pipeline import GPipeRunner
from repro.simmpi import MAX, Comm
from repro.train.optim import Optimizer
from repro.train.schedules import ConstantLR, LRSchedule

__all__ = ["Grid3D", "Groups3D", "build_groups3d", "Trainer3D", "Step3DResult"]


@dataclass(frozen=True)
class Grid3D:
    """Static 3D decomposition: world = pipe x dp x ep."""

    world_size: int
    pipe_size: int
    ep_size: int

    def __post_init__(self) -> None:
        if min(self.world_size, self.pipe_size, self.ep_size) < 1:
            raise ConfigError("all grid dimensions must be >= 1")
        if self.world_size % self.pipe_size != 0:
            raise ConfigError(
                f"pipe_size={self.pipe_size} must divide world_size={self.world_size}"
            )
        if self.plane_size % self.ep_size != 0:
            raise ConfigError(
                f"ep_size={self.ep_size} must divide plane size {self.plane_size}"
            )

    @property
    def plane_size(self) -> int:
        """Ranks per pipeline stage (= dp_size * ep_size)."""
        return self.world_size // self.pipe_size

    @property
    def dp_size(self) -> int:
        return self.plane_size // self.ep_size

    def stage_of(self, rank: int) -> int:
        return rank // self.plane_size

    def plane_rank_of(self, rank: int) -> int:
        """Pipeline id of ``rank`` (its position within the stage plane)."""
        return rank % self.plane_size


@dataclass
class Groups3D:
    """Live communicators for one rank of a 3D program."""

    grid: Grid3D
    world: Comm
    #: This rank's pipeline (same plane position across stages).
    pipe: Comm
    #: MoDa groups within this rank's stage plane.
    plane: MoDaGroups

    @property
    def stage(self) -> int:
        return self.pipe.rank

    @property
    def pipeline_id(self) -> int:
        return self.grid.plane_rank_of(self.world.rank)


def build_groups3d(world: Comm, pipe_size: int, ep_size: int) -> Groups3D:
    """Split ``world`` into the 3D communicators (collective call)."""
    grid = Grid3D(world_size=world.size, pipe_size=pipe_size, ep_size=ep_size)
    r = world.rank
    pipe = world.Split(color=grid.plane_rank_of(r), key=grid.stage_of(r))
    plane_comm = world.Split(color=grid.stage_of(r), key=grid.plane_rank_of(r))
    assert pipe is not None and plane_comm is not None
    plane = build_groups(plane_comm, ep_size)
    return Groups3D(grid=grid, world=world, pipe=pipe, plane=plane)


@dataclass
class Step3DResult:
    """Per-rank metrics from one 3D step."""

    step: int
    #: Mean loss over this rank's pipeline.
    loss: float
    #: Mean loss over the whole (global) batch.
    global_loss: float
    lr: float
    skipped: bool
    loss_scale: float
    extras: dict[str, Any] = field(default_factory=dict)


class Trainer3D:
    """One rank's view of synchronous pipe x data x expert training.

    The caller provides the optimizer over ``trainer.stage.parameters()``
    (built after construction, e.g. ``Adam(trainer.stage.parameters())``),
    then calls :meth:`train_step` with the batch of *this rank's pipeline*
    (fetch it with ``dp_rank=groups.pipeline_id,
    dp_size=grid.plane_size``).
    """

    def __init__(
        self,
        config: ModelConfig,
        groups: Groups3D,
        num_microbatches: int,
        seed: int = 0,
        schedule: LRSchedule | None = None,
        scaler: DynamicLossScaler | None = None,
        alltoall_algorithm: str | None = None,
        allreduce_algorithm: str | None = None,
        compute_hook=None,
    ):
        self.groups = groups
        self.config = config
        self.scaler = scaler
        self.allreduce_algorithm = allreduce_algorithm
        self.step_count = 0
        self.history: list[Step3DResult] = []

        def moe_factory(layer_idx: int, rng: np.random.Generator):
            return DistributedMoELayer(
                config.d_model,
                config.d_ff,
                config.num_experts,
                groups.plane.ep,
                shared_rng=rng,
                seed=seed,
                layer_id=layer_idx,
                gate=config.gate,
                top_k=config.top_k,
                capacity_factor=config.capacity_factor,
                aux_weight=config.aux_weight,
                z_weight=config.z_weight,
                alltoall_algorithm=alltoall_algorithm,
                dtype=config.dtype,
                compute_hook=compute_hook,
            )

        self.gpipe = GPipeRunner(
            config, groups.pipe, num_microbatches, seed=seed, moe_factory=moe_factory
        )
        self.stage = self.gpipe.stage
        self.dense_params, self.expert_params = split_params(self.stage)
        self.schedule = schedule or ConstantLR(1e-3)
        self.optimizer: Optimizer | None = None  # set via attach_optimizer

    def attach_optimizer(self, optimizer: Optimizer) -> None:
        """Bind the optimizer (must cover ``self.stage.parameters()``)."""
        self.optimizer = optimizer

    def train_step(self, batch: Batch) -> Step3DResult:
        """One synchronous 3D step on this pipeline's batch."""
        if self.optimizer is None:
            raise ConfigError("call attach_optimizer() before train_step()")
        groups = self.groups
        lr = self.schedule(self.step_count)
        self.optimizer.lr = lr
        self.stage.zero_grad()

        # GPipe forward/backward over this pipeline. Loss scaling folds
        # into the backward seed via a scaled post-hoc gradient multiply:
        # simpler and equivalent — scale gradients after accumulation.
        t0 = groups.world.clock
        loss = self.gpipe.train_step(batch.tokens, batch.targets)
        t_pipeline = groups.world.clock - t0
        scale = self.scaler.scale if self.scaler is not None else 1.0
        if scale != 1.0:
            for p in self.stage.parameters():
                if p.grad is not None:
                    p.grad = (p.grad * scale).astype(p.grad.dtype)

        # Sync within the stage plane: dense over the whole plane, expert
        # shards across EP-group replicas.
        t1 = groups.world.clock
        allreduce_gradients(
            groups.plane.world, self.dense_params, average=True,
            algorithm=self.allreduce_algorithm,
        )
        allreduce_gradients(
            groups.plane.edp, self.expert_params, average=True,
            algorithm=self.allreduce_algorithm,
        )
        t_grad_sync = groups.world.clock - t1
        if groups.world.rank == 0:
            groups.world.context.add_phase("pipeline", t_pipeline)
            groups.world.context.add_phase("grad_sync", t_grad_sync)

        local_overflow = (
            1.0
            if self.scaler is not None and grads_have_overflow(self.optimizer.params)
            else 0.0
        )
        overflow = bool(groups.world.allreduce(local_overflow, op=MAX) > 0)

        skipped = False
        if self.scaler is not None and overflow:
            skipped = True
            self.scaler.update(found_overflow=True)
        else:
            self.optimizer.step(grad_scale=1.0 / scale)
            if self.scaler is not None:
                self.scaler.update(found_overflow=False)

        # Global loss: pipelines hold distinct batches; average over the
        # plane (every stage of a pipeline reports the same value, so
        # averaging over one plane covers every pipeline exactly once).
        global_loss = (
            float(groups.plane.world.allreduce(loss)) / groups.plane.world.size
        )

        result = Step3DResult(
            step=self.step_count,
            loss=float(loss),
            global_loss=global_loss,
            lr=lr,
            skipped=skipped,
            loss_scale=scale,
            extras={"t_pipeline": t_pipeline, "t_grad_sync": t_grad_sync},
        )
        self.step_count += 1
        self.history.append(result)
        return result
