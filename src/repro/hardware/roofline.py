"""Roofline helper: attainable FLOP/s for a kernel on a node.

``attainable = min(peak_flops, arithmetic_intensity * memory_bandwidth)``

The performance model uses this to time individual operators: large matmuls
sit on the compute roof, element-wise and embedding operators on the memory
roof — which is why MoE models (more matmul per token at fixed activation
traffic) utilize the machine better than equal-FLOP dense stacks of thinner
layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.specs import NodeSpec

__all__ = ["Roofline", "attainable_flops", "kernel_time"]


@dataclass(frozen=True)
class Roofline:
    """A (compute roof, memory roof) pair for one node and dtype."""

    peak_flops: float
    memory_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise ConfigError("roofline parameters must be positive")

    @property
    def ridge_intensity(self) -> float:
        """Arithmetic intensity (FLOP/byte) where the roofs meet."""
        return self.peak_flops / self.memory_bandwidth

    def attainable(self, intensity: float) -> float:
        """Attainable FLOP/s at the given arithmetic intensity."""
        if intensity < 0:
            raise ConfigError(f"arithmetic intensity must be >= 0, got {intensity}")
        if intensity == 0.0:
            return 0.0
        return min(self.peak_flops, intensity * self.memory_bandwidth)

    def time_for(self, flops: float, bytes_moved: float) -> float:
        """Time to execute a kernel doing ``flops`` work over ``bytes_moved``.

        Uses the max of compute time and memory time (perfect overlap
        assumption), which is the standard roofline timing.
        """
        if flops < 0 or bytes_moved < 0:
            raise ConfigError("flops and bytes_moved must be >= 0")
        t_compute = flops / self.peak_flops
        t_memory = bytes_moved / self.memory_bandwidth
        return max(t_compute, t_memory)


def node_roofline(node: NodeSpec, dtype: str, efficiency: float = 1.0) -> Roofline:
    """Build a roofline for ``node`` at ``dtype`` with a sustained factor."""
    if not 0.0 < efficiency <= 1.0:
        raise ConfigError("efficiency must be in (0, 1]")
    return Roofline(
        peak_flops=node.flops(dtype) * efficiency,
        memory_bandwidth=node.memory_bandwidth,
    )


def attainable_flops(node: NodeSpec, dtype: str, intensity: float) -> float:
    """Convenience: attainable FLOP/s for a kernel of given intensity."""
    return node_roofline(node, dtype).attainable(intensity)


def kernel_time(
    node: NodeSpec, dtype: str, flops: float, bytes_moved: float, efficiency: float = 1.0
) -> float:
    """Convenience: roofline time for one kernel on one node."""
    return node_roofline(node, dtype, efficiency).time_for(flops, bytes_moved)
