"""Machine models: SW26010-Pro-like processors, nodes, whole machines."""

from repro.hardware.roofline import Roofline, attainable_flops, kernel_time, node_roofline
from repro.hardware.specs import (
    SUNWAY_NODE,
    SW26010_PRO,
    MachineSpec,
    NodeSpec,
    ProcessorSpec,
    laptop_machine,
    sunway_machine,
)

__all__ = [
    "Roofline",
    "attainable_flops",
    "kernel_time",
    "node_roofline",
    "SUNWAY_NODE",
    "SW26010_PRO",
    "MachineSpec",
    "NodeSpec",
    "ProcessorSpec",
    "laptop_machine",
    "sunway_machine",
]
