"""Processor and machine specifications (SW26010-Pro-like model).

The New Generation Sunway node is modelled after published SW26010-Pro
figures: 6 core groups per CPU, each with 1 management processing element
(MPE) and an 8x8 mesh of 64 compute processing elements (CPEs), for 390
cores per node; ~14 TFLOPS fp64 peak per node with half precision several
times higher. 96,000 such nodes give the paper's headline "over 37 million
cores" (96,000 x 390 = 37.44 M).

Absolute numbers are approximate by design — the reproduction targets
performance *shapes*, and exposes every figure as a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["ProcessorSpec", "NodeSpec", "MachineSpec", "SW26010_PRO", "SUNWAY_NODE", "sunway_machine", "laptop_machine"]


@dataclass(frozen=True)
class ProcessorSpec:
    """One many-core CPU.

    Parameters
    ----------
    name:
        Model label.
    core_groups:
        Number of core groups (CGs) on the die.
    mpe_per_group / cpe_per_group:
        Management / compute processing elements per CG.
    peak_flops:
        Dict dtype-name -> peak FLOP/s for the whole CPU.
    memory_bytes:
        Attached memory capacity in bytes.
    memory_bandwidth:
        Aggregate memory bandwidth in bytes/s.
    """

    name: str
    core_groups: int
    mpe_per_group: int
    cpe_per_group: int
    peak_flops: dict[str, float]
    memory_bytes: float
    memory_bandwidth: float

    def __post_init__(self) -> None:
        if self.core_groups < 1 or self.mpe_per_group < 0 or self.cpe_per_group < 0:
            raise ConfigError("invalid core counts in ProcessorSpec")
        if not self.peak_flops:
            raise ConfigError("ProcessorSpec.peak_flops must not be empty")
        for dtype, flops in self.peak_flops.items():
            if flops <= 0:
                raise ConfigError(f"peak_flops[{dtype!r}] must be > 0")
        if self.memory_bytes <= 0 or self.memory_bandwidth <= 0:
            raise ConfigError("memory size/bandwidth must be > 0")

    @property
    def cores(self) -> int:
        """Total hardware cores (MPEs + CPEs)."""
        return self.core_groups * (self.mpe_per_group + self.cpe_per_group)

    def flops(self, dtype: str) -> float:
        """Peak FLOP/s for ``dtype``; raises for unknown dtypes."""
        try:
            return self.peak_flops[dtype]
        except KeyError:
            raise ConfigError(
                f"{self.name} has no peak-FLOPS entry for dtype {dtype!r}; "
                f"known: {sorted(self.peak_flops)}"
            ) from None


@dataclass(frozen=True)
class NodeSpec:
    """One compute node (here: one CPU per node, Sunway-style)."""

    processor: ProcessorSpec
    processors_per_node: int = 1

    def __post_init__(self) -> None:
        if self.processors_per_node < 1:
            raise ConfigError("processors_per_node must be >= 1")

    @property
    def cores(self) -> int:
        return self.processor.cores * self.processors_per_node

    @property
    def memory_bytes(self) -> float:
        return self.processor.memory_bytes * self.processors_per_node

    @property
    def memory_bandwidth(self) -> float:
        return self.processor.memory_bandwidth * self.processors_per_node

    def flops(self, dtype: str) -> float:
        return self.processor.flops(dtype) * self.processors_per_node


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine: node spec x node count (+ efficiency knobs).

    ``compute_efficiency`` is the sustained-to-peak ratio applied by the
    performance model to matmul-dominated workloads (real large-scale runs
    never see peak; BaGuaLu-class frameworks sustain a modest fraction of
    it). It is a single scalar on purpose: it shifts absolute throughput
    without changing any scaling shape.
    """

    name: str
    node: NodeSpec
    num_nodes: int
    compute_efficiency: float = 0.25
    extra: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ConfigError("compute_efficiency must be in (0, 1]")

    @property
    def total_cores(self) -> int:
        return self.node.cores * self.num_nodes

    @property
    def total_memory_bytes(self) -> float:
        return self.node.memory_bytes * self.num_nodes

    def peak_flops(self, dtype: str) -> float:
        """Machine-wide peak FLOP/s for ``dtype``."""
        return self.node.flops(dtype) * self.num_nodes

    def sustained_flops(self, dtype: str) -> float:
        """Machine-wide sustained FLOP/s (peak x compute_efficiency)."""
        return self.peak_flops(dtype) * self.compute_efficiency

    def with_nodes(self, num_nodes: int) -> "MachineSpec":
        """Copy of this machine scaled to ``num_nodes`` nodes."""
        return MachineSpec(
            name=self.name,
            node=self.node,
            num_nodes=num_nodes,
            compute_efficiency=self.compute_efficiency,
            extra=dict(self.extra),
        )


#: SW26010-Pro-like CPU: 6 CGs x (1 MPE + 64 CPEs) = 390 cores,
#: ~14 TFLOPS fp64 (fp32 same vector width at 2x, fp16 4x), 96 GiB @ 307 GB/s.
SW26010_PRO = ProcessorSpec(
    name="SW26010-Pro-like",
    core_groups=6,
    mpe_per_group=1,
    cpe_per_group=64,
    peak_flops={
        "fp64": 14.0e12,
        "fp32": 28.0e12,
        "fp16": 55.3e12,
        "bf16": 55.3e12,
    },
    memory_bytes=96 * 2**30,
    memory_bandwidth=307e9,
)

#: One Sunway node = one SW26010-Pro-like CPU.
SUNWAY_NODE = NodeSpec(processor=SW26010_PRO, processors_per_node=1)


def sunway_machine(num_nodes: int = 96_000, compute_efficiency: float = 0.25) -> MachineSpec:
    """The headline machine: 96,000 nodes -> 37.44 M cores."""
    return MachineSpec(
        name="new-sunway-like",
        node=SUNWAY_NODE,
        num_nodes=num_nodes,
        compute_efficiency=compute_efficiency,
    )


def laptop_machine(num_nodes: int = 1) -> MachineSpec:
    """A tiny reference machine for sanity checks and unit tests."""
    cpu = ProcessorSpec(
        name="laptop-cpu",
        core_groups=1,
        mpe_per_group=0,
        cpe_per_group=8,
        peak_flops={"fp64": 1.0e11, "fp32": 2.0e11, "fp16": 4.0e11, "bf16": 4.0e11},
        memory_bytes=16 * 2**30,
        memory_bandwidth=50e9,
    )
    return MachineSpec(
        name="laptop",
        node=NodeSpec(processor=cpu),
        num_nodes=num_nodes,
        compute_efficiency=0.5,
    )
