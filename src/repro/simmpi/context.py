"""RunContext: the single instrumentation spine of an SPMD run.

Before this existed, one run scattered its observability across three
disconnected paths — :class:`~repro.simmpi.stats.TrafficStats` counters in
the engine, an optional :class:`~repro.simmpi.trace.TraceEvent` list, and
ad-hoc per-phase timings stashed in trainer ``extras`` dicts. A
:class:`RunContext` owns all three: the engine creates one per world,
every communicator can reach it (``comm.context``), strategy trainers
record phase timings into it, and the result objects /
:class:`~repro.train.metrics.MetricsLogger` read it back out.

All timings are *virtual* seconds (the modelled machine's clock).
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import ConfigError
from repro.simmpi.stats import TrafficStats
from repro.simmpi.trace import TraceEvent, write_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.comm import Comm

__all__ = ["RunContext"]


class RunContext:
    """Traffic counters + trace stream + phase timers for one SPMD world.

    Shared by every rank thread of the run; phase accumulation is guarded
    by a lock (TrafficStats and the trace list are already updated under
    the world lock by the engine).
    """

    def __init__(self, trace: bool = False):
        #: Aggregate traffic counters (updated by the engine).
        self.stats = TrafficStats()
        #: Virtual-time event stream, or None when tracing is off.
        self.trace_events: list[TraceEvent] | None = [] if trace else None
        self._phase_lock = threading.Lock()
        self._phases: Counter[str] = Counter()

    # ------------------------------------------------------------------ #
    # Phase timers
    # ------------------------------------------------------------------ #

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of virtual time under phase ``name``."""
        if seconds < 0:
            raise ConfigError(f"phase {name!r} got negative duration {seconds}")
        with self._phase_lock:
            self._phases[name] += seconds

    @contextmanager
    def timed(self, comm: "Comm", name: str) -> Iterator[None]:
        """Record the virtual-clock delta of the wrapped block as a phase."""
        t0 = comm.clock
        try:
            yield
        finally:
            self.add_phase(name, comm.clock - t0)

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Accumulated virtual seconds per phase, sorted by phase name."""
        with self._phase_lock:
            return {k: float(self._phases[k]) for k in sorted(self._phases)}

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    @property
    def tracing(self) -> bool:
        """Whether this run records TraceEvents."""
        return self.trace_events is not None

    def summary(self) -> dict[str, Any]:
        """One nested dict of everything the context observed."""
        return {
            "traffic": self.stats.summary(),
            "phase_seconds": self.phase_seconds,
            "num_trace_events": len(self.trace_events) if self.tracing else 0,
            "tracing": self.tracing,
        }

    def metrics_record(self) -> dict[str, Any]:
        """A flat record for :class:`~repro.train.metrics.MetricsLogger`.

        Phase timers become ``phase_<name>`` keys; traffic totals keep
        their summary names. Values are plain scalars, so the record is
        safe for both JSONL and CSV sinks.
        """
        traffic = self.stats.summary()
        record: dict[str, Any] = {
            "p2p_messages": traffic["p2p_messages"],
            "p2p_bytes": traffic["p2p_bytes"],
            "total_bytes": traffic["total_bytes"],
            "dropped_messages": traffic["dropped_messages"],
        }
        for name, seconds in self.phase_seconds.items():
            record[f"phase_{name}"] = seconds
        return record

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Export the trace stream as Chrome-tracing JSON."""
        if self.trace_events is None:
            raise ConfigError(
                "run was not traced; launch with trace=True "
                "(TrainingRunConfig(trace=True) or run_spmd(trace=True))"
            )
        return write_chrome_trace(self.trace_events, path)
