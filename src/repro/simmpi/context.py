"""RunContext: the single instrumentation spine of an SPMD run.

Before this existed, one run scattered its observability across three
disconnected paths — :class:`~repro.simmpi.stats.TrafficStats` counters in
the engine, an optional :class:`~repro.simmpi.trace.TraceEvent` list, and
ad-hoc per-phase timings stashed in trainer ``extras`` dicts. A
:class:`RunContext` owns all three: the engine creates one per world,
every communicator can reach it (``comm.context``), strategy trainers
record phase timings into it, and the result objects /
:class:`~repro.train.metrics.MetricsLogger` read it back out.

All timings are *virtual* seconds (the modelled machine's clock).
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import ConfigError
from repro.obs.flight import DEFAULT_LIMIT, FlightRecorder
from repro.obs.registry import NULL_REGISTRY, MetricRegistry, NullRegistry
from repro.obs.router import RouterTelemetry
from repro.obs.spans import NULL_TRACER, NullTracer, Tracer
from repro.simmpi.stats import TrafficStats
from repro.simmpi.trace import TraceEvent, write_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.comm import Comm

__all__ = ["RunContext"]


class RunContext:
    """Traffic counters + trace stream + phase timers for one SPMD world.

    Shared by every rank thread of the run; phase accumulation is guarded
    by a lock (TrafficStats and the trace list are already updated under
    the world lock by the engine).

    With ``observe=True`` the context additionally owns a
    :class:`~repro.obs.registry.MetricRegistry` and
    :class:`~repro.obs.router.RouterTelemetry` that instrumented code
    emits into; without it, ``metrics`` is the shared no-op
    :data:`~repro.obs.registry.NULL_REGISTRY`, so emission sites never
    branch. The bounded :class:`~repro.obs.flight.FlightRecorder` is
    always on — its cost is O(1) ring appends — so every failure
    post-mortem has the last operations of every rank.
    """

    def __init__(self, trace: bool = False, observe: bool = False,
                 flight_limit: int = DEFAULT_LIMIT):
        #: Aggregate traffic counters (updated by the engine).
        self.stats = TrafficStats()
        #: Virtual-time event stream, or None when tracing is off.
        self.trace_events: list[TraceEvent] | None = [] if trace else None
        self._phase_lock = threading.Lock()
        self._phases: Counter[str] = Counter()
        #: Run-lifecycle events (restart / backoff / reshard ...): plain
        #: dicts with at least ``kind`` and a virtual timestamp ``t``.
        self.events: list[dict[str, Any]] = []
        #: Labeled metric series; the shared no-op when not observing.
        self.metrics: MetricRegistry | NullRegistry = (
            MetricRegistry() if observe else NULL_REGISTRY
        )
        #: Per-layer per-step MoE router telemetry (None when disabled).
        self.router: RouterTelemetry | None = RouterTelemetry() if observe else None
        #: Causal span trees (requests, launches, scale decisions); the
        #: shared no-op unless tracing or observing, so span emission
        #: sites never branch and tracing-off output is unchanged.
        self.spans: Tracer | NullTracer = (
            Tracer() if (trace or observe) else NULL_TRACER
        )
        #: Always-on bounded ring of recent per-rank activity.
        self.flight = FlightRecorder(limit=flight_limit)

    # ------------------------------------------------------------------ #
    # Phase timers
    # ------------------------------------------------------------------ #

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of virtual time under phase ``name``."""
        if seconds < 0:
            raise ConfigError(f"phase {name!r} got negative duration {seconds}")
        with self._phase_lock:
            self._phases[name] += seconds

    @contextmanager
    def timed(self, comm: "Comm", name: str) -> Iterator[None]:
        """Record the virtual-clock delta of the wrapped block as a phase."""
        t0 = comm.clock
        try:
            yield
        finally:
            self.add_phase(name, comm.clock - t0)

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Accumulated virtual seconds per phase, sorted by phase name."""
        with self._phase_lock:
            return {k: float(self._phases[k]) for k in sorted(self._phases)}

    # ------------------------------------------------------------------ #
    # Lifecycle events + session aggregation
    # ------------------------------------------------------------------ #

    def record_event(self, kind: str, t: float = 0.0, **fields: Any) -> dict[str, Any]:
        """Append a lifecycle event (restart / backoff / reshard / ...).

        ``t`` is the event's virtual timestamp. When tracing, the event
        also lands in the trace stream as a zero-byte instant on rank 0,
        so recovery structure is visible next to the communication
        timeline in ``chrome://tracing``.
        """
        event = {"kind": kind, "t": float(t), **fields}
        with self._phase_lock:
            self.events.append(event)
        self.flight.note(kind, t=t, **fields)
        if self.trace_events is not None:
            self.trace_events.append(
                TraceEvent(rank=0, op=f"event:{kind}", t_start=t, t_end=t)
            )
        return event

    def events_of(self, kind: str) -> list[dict[str, Any]]:
        """Every recorded event of one ``kind``, in record order."""
        return [e for e in self.events if e["kind"] == kind]

    def absorb(self, other: "RunContext", clock_offset: float = 0.0) -> None:
        """Fold another context into this one (session aggregation).

        Recovery drivers run many SPMD launches, each with its own
        engine-created context; absorbing them (trace timestamps shifted
        by ``clock_offset`` onto the session timeline) yields one spine
        for the whole fault-tolerant session.
        """
        self.stats.merge(other.stats)
        with self._phase_lock:
            for name, seconds in other._phases.items():
                self._phases[name] += seconds
        if self.trace_events is not None and other.trace_events is not None:
            for e in other.trace_events:
                self.trace_events.append(
                    TraceEvent(
                        rank=e.rank,
                        op=e.op,
                        t_start=e.t_start + clock_offset,
                        t_end=e.t_end + clock_offset,
                        nbytes=e.nbytes,
                        hidden=e.hidden,
                    )
                )
        with self._phase_lock:
            for event in other.events:
                shifted = dict(event)
                shifted["t"] = event.get("t", 0.0) + clock_offset
                self.events.append(shifted)
        self.metrics.merge(other.metrics)
        if self.router is not None and other.router is not None:
            self.router.absorb(other.router)
        self.spans.absorb(other.spans, clock_offset=clock_offset)
        self.flight.absorb(other.flight, clock_offset=clock_offset)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    @property
    def tracing(self) -> bool:
        """Whether this run records TraceEvents."""
        return self.trace_events is not None

    @property
    def observing(self) -> bool:
        """Whether this run carries a live metric registry."""
        return self.metrics.enabled

    def summary(self) -> dict[str, Any]:
        """One nested dict of everything the context observed."""
        return {
            "traffic": self.stats.summary(),
            "phase_seconds": self.phase_seconds,
            "num_trace_events": len(self.trace_events) if self.tracing else 0,
            "num_events": len(self.events),
            "tracing": self.tracing,
            "observing": self.observing,
            "num_metric_series": len(self.metrics),
            "num_router_samples": len(self.router) if self.router else 0,
            "num_spans": len(self.spans),
        }

    def metrics_record(self) -> dict[str, Any]:
        """A flat record for :class:`~repro.train.metrics.MetricsLogger`.

        Phase timers become ``phase_<name>`` keys; traffic totals keep
        their summary names. Values are plain scalars, so the record is
        safe for both JSONL and CSV sinks.
        """
        traffic = self.stats.summary()
        record: dict[str, Any] = {
            "p2p_messages": traffic["p2p_messages"],
            "p2p_bytes": traffic["p2p_bytes"],
            "total_bytes": traffic["total_bytes"],
            "dropped_messages": traffic["dropped_messages"],
        }
        for name, seconds in self.phase_seconds.items():
            record[f"phase_{name}"] = seconds
        kinds = Counter(e["kind"] for e in self.events)
        for kind in sorted(kinds):
            record[f"events_{kind}"] = int(kinds[kind])
        return record

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Export the trace stream as Chrome-tracing JSON."""
        if self.trace_events is None:
            raise ConfigError(
                "run was not traced; launch with trace=True "
                "(TrainingRunConfig(trace=True) or run_spmd(trace=True))"
            )
        return write_chrome_trace(self.trace_events, path)
