"""The simulated MPI communicator.

The API deliberately mirrors mpi4py's pickle-based interface
(``Get_rank``, ``send``/``recv``, ``bcast``/``allreduce``/``alltoall``,
``Split``...), so SPMD code written against this module reads like real
mpi4py code. Two differences:

* every operation also advances a per-rank **virtual clock** using the
  attached :class:`~repro.network.NetworkModel` (when present), so runs
  yield topology-aware simulated time for free;
* payloads are deep-copied at the communication boundary, which makes the
  shared-memory implementation behave like a real network.

Concurrency model: one Python thread per rank; all shared state is guarded
by a single world lock + condition variable (rank counts here are small, so
a global lock is simpler and plenty fast).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import CommunicatorError, DeadlockError, FaultInjected, RankAbort
from repro.simmpi.faults import FaultPlan
from repro.simmpi.payload import clone_payload, payload_nbytes
from repro.simmpi.stats import TrafficStats

__all__ = ["Comm", "ANY_SOURCE", "ANY_TAG", "SUM", "MAX", "MIN", "PROD"]

#: Wildcard source for :meth:`Comm.recv`.
ANY_SOURCE = -1
#: Wildcard tag for :meth:`Comm.recv`.
ANY_TAG = -1

# Reduction op names (string constants, mpi4py-style usage: op=simmpi.SUM).
SUM = "sum"
MAX = "max"
MIN = "min"
PROD = "prod"

_REDUCERS: dict[str, Callable[[Any, Any], Any]] = {
    SUM: lambda a, b: a + b,
    MAX: lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b),
    MIN: lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b),
    PROD: lambda a, b: a * b,
}


def _reduce_payloads(values: Sequence[Any], op: str) -> Any:
    """Fold ``values`` with the named reduction, left to right."""
    if op not in _REDUCERS:
        raise CommunicatorError(f"unknown reduction op {op!r}")
    fn = _REDUCERS[op]
    acc = values[0]
    for v in values[1:]:
        acc = fn(acc, v)
    return acc


@dataclass
class _Envelope:
    source: int  # world rank
    tag: int
    payload: Any
    nbytes: int
    arrival: float  # virtual arrival time


class _World:
    """State shared by every rank thread of one SPMD run."""

    def __init__(
        self,
        size: int,
        network: Any | None,
        timeout: float,
        faults: FaultPlan | None,
        trace: bool = False,
        observe: bool = False,
    ):
        self.size = size
        self.network = network
        self.lock = threading.Lock()
        self.cv = threading.Condition(self.lock)
        self.mailboxes: list[list[_Envelope]] = [[] for _ in range(size)]
        self.clocks: list[float] = [0.0] * size
        self.aborted = False
        self.abort_exc: BaseException | None = None
        self.deadline = time.monotonic() + timeout
        self.faults = faults
        if faults is not None:
            # Stochastic models map ranks onto their node fleet and draw
            # this launch's failure times; scripted plans no-op.
            on_launch = getattr(faults, "on_launch", None)
            if on_launch is not None:
                on_launch(size)
        from repro.simmpi.context import RunContext  # local import: no cycle
        from repro.simmpi.trace import TraceEvent
        self.context = RunContext(trace=trace, observe=observe)
        self.stats = self.context.stats
        self.op_counters = [0] * size
        self._trace_event_cls = TraceEvent
        self.trace_events: list | None = self.context.trace_events
        self.flight = self.context.flight
        #: Per-world-rank in-flight nonblocking requests; ``Comm.advance``
        #: credits compute seconds to every request registered here.
        self.inflight: list[list] = [[] for _ in range(size)]

    def record(self, rank: int, op: str, t0: float, t1: float, nbytes: int = 0,
               hidden: float = 0.0) -> None:
        """Append a trace interval (call with the world lock held).

        The flight recorder is fed unconditionally — its bounded ring is
        the post-mortem evidence when this run dies — while the full
        trace stream stays opt-in.
        """
        self.flight.record(rank, op, t0, t1, nbytes)
        if self.trace_events is not None:
            self.trace_events.append(
                self._trace_event_cls(rank=rank, op=op, t_start=t0, t_end=t1,
                                      nbytes=nbytes, hidden=hidden)
            )

    # -- abort / wait helpers (call with lock held) --------------------- #

    def abort(self, exc: BaseException) -> None:
        with self.cv:
            if not self.aborted:
                self.aborted = True
                self.abort_exc = exc
            self.cv.notify_all()

    def check_live(self) -> None:
        if self.aborted:
            raise RankAbort("another rank aborted the SPMD program")

    def wait_for(self, predicate: Callable[[], bool], what: str) -> None:
        """Block until ``predicate()`` under the world condition variable."""
        while not predicate():
            self.check_live()
            remaining = self.deadline - time.monotonic()
            if remaining <= 0:
                exc = DeadlockError(f"timed out waiting for {what}")
                # Unblock everyone else, then fail this rank.
                self.aborted = True
                self.abort_exc = exc
                self.cv.notify_all()
                raise exc
            self.cv.wait(min(remaining, 0.2))
        self.check_live()


class _Round:
    """One in-flight collective instance (op seq number on a comm)."""

    __slots__ = ("op", "contribs", "clocks", "result", "computed", "pickups")

    def __init__(self) -> None:
        self.op: str | None = None
        self.contribs: dict[int, Any] = {}
        self.clocks: dict[int, float] = {}
        self.result: Any = None
        self.computed = False
        self.pickups = 0


class _CommState:
    """Shared per-communicator state (member list + collective rounds)."""

    #: Never deep-copied when passed through a rendezvous (shared handle).
    __simmpi_no_clone__ = True

    _next_context_id = 0
    _context_lock = threading.Lock()

    def __init__(self, world: _World, members: list[int]):
        self.world = world
        self.members = list(members)  # group rank -> world rank
        self.rank_of_world = {w: i for i, w in enumerate(self.members)}
        self.rounds: dict[int, _Round] = {}
        self.seq = [0] * len(self.members)
        with _CommState._context_lock:
            self.context_id = _CommState._next_context_id
            _CommState._next_context_id += 1


class _Request:
    """An in-flight nonblocking operation with lazily-charged cost.

    The data plane already ran at issue time (payloads rendezvoused or
    enqueued eagerly), so completion can never deadlock — ``wait()`` is a
    purely local accounting step. Between issue and wait,
    :meth:`Comm.advance` credits this rank's compute seconds into
    ``overlapped``; ``wait()`` then charges only the *exposed* remainder
    ``max(0, cost - overlapped)`` to the virtual clock and records the
    hidden/exposed split in the trace and (from world rank 0, so float
    accumulation order stays deterministic) in :class:`TrafficStats` and
    the run's metric registry.
    """

    #: Whether wait() records a collective call in TrafficStats.
    _record_collective = True

    def __init__(self, comm: "Comm", op: str, value: Any, t_start: float,
                 cost: float, nbytes: int):
        self._comm = comm
        self.op = op
        self._value = value
        self._t_start = t_start
        self._cost = cost
        self._nbytes = nbytes
        #: Compute seconds accumulated while in flight (world lock held).
        self.overlapped = 0.0
        self._done = False

    def test(self) -> tuple[bool, Any]:
        """Nonblocking completion check; completes the request (see wait)."""
        return True, self.wait()

    def wait(self) -> Any:
        """Charge the exposed cost remainder and return the result."""
        if self._done:
            return self._value
        comm = self._comm
        world = comm._state.world
        me = comm.world_rank
        with world.lock:
            pending = world.inflight[me]
            if self in pending:
                pending.remove(self)
            hidden = min(self.overlapped, self._cost)
            exposed = self._cost - hidden
            t0 = world.clocks[me]
            # The op still cannot finish before its wire time elapses from
            # the rendezvous point; beyond that, only the exposed part of
            # the cost pushes this rank's clock.
            world.clocks[me] = max(t0 + exposed, self._t_start + self._cost)
            world.record(me, self.op, t0, world.clocks[me], self._nbytes,
                         hidden=hidden)
            if self._record_collective and comm._group_rank == 0:
                world.stats.record_collective(self.op, self._nbytes)
            if me == 0:
                world.stats.record_overlap(self.op, hidden, exposed)
                ctx = world.context
                if ctx.observing:
                    ctx.metrics.counter("comm_overlapped_seconds", op=self.op).inc(hidden)
                    ctx.metrics.counter("comm_exposed_seconds", op=self.op).inc(exposed)
        self._done = True
        return self._value


class _SendRequest(_Request):
    """Request returned by :meth:`Comm.isend`.

    The payload is delivered eagerly (receiver semantics match blocking
    ``send``), but the sender-side cost — the full point-to-point time for
    the message, not just the alpha a blocking eager send charges — is
    deferred to ``wait()`` with overlap crediting.
    """

    _record_collective = False  # p2p bytes were counted at issue time


class _CollectiveRequest(_Request):
    """Request returned by the nonblocking collectives.

    Rendezvous happens eagerly at issue time (all members must issue their
    nonblocking collectives in the same order), so waits are purely local
    and ranks may complete requests in any order without deadlocking.
    """


class _RecvRequest:
    """Lazy receive request returned by :meth:`Comm.irecv`."""

    def __init__(self, comm: "Comm", source: int, tag: int):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check; returns (done, value_or_None)."""
        if self._done:
            return True, self._value
        got = self._comm._try_recv(self._source, self._tag)
        if got is not None:
            self._done = True
            self._value = got[0]
            return True, self._value
        return False, None

    def wait(self) -> Any:
        if self._done:
            return self._value
        self._value = self._comm.recv(source=self._source, tag=self._tag)
        self._done = True
        return self._value


class Comm:
    """A communicator handle held by one rank thread."""

    def __init__(self, state: _CommState, group_rank: int):
        self._state = state
        self._group_rank = group_rank

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def rank(self) -> int:
        """This rank's index within the communicator."""
        return self._group_rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._state.members)

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py naming
        return self.rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py naming
        return self.size

    @property
    def world_rank(self) -> int:
        """This rank's index in the world communicator."""
        return self._state.members[self._group_rank]

    @property
    def members(self) -> tuple[int, ...]:
        """World ranks of every member, in group-rank order."""
        return tuple(self._state.members)

    @property
    def network(self) -> Any | None:
        """The attached :class:`~repro.network.NetworkModel`, if any."""
        return self._state.world.network

    @property
    def clock(self) -> float:
        """This rank's virtual clock in seconds."""
        return self._state.world.clocks[self.world_rank]

    @property
    def stats(self) -> TrafficStats:
        return self._state.world.stats

    @property
    def context(self):
        """The run's shared :class:`~repro.simmpi.RunContext` spine."""
        return self._state.world.context

    # ------------------------------------------------------------------ #
    # Virtual time
    # ------------------------------------------------------------------ #

    def advance(self, seconds: float) -> None:
        """Add local compute time to this rank's virtual clock.

        A fault plan/model can stretch the rank's compute time through its
        ``compute_scale`` hook — that is how straggler nodes slow the
        whole synchronous world down to their pace.
        """
        if seconds < 0:
            raise CommunicatorError(f"cannot advance clock by {seconds}")
        world = self._state.world
        scale_of = getattr(world.faults, "compute_scale", None)
        if scale_of is not None:
            seconds *= scale_of(self.world_rank)
        with world.lock:
            t0 = world.clocks[self.world_rank]
            world.clocks[self.world_rank] = t0 + seconds
            for req in world.inflight[self.world_rank]:
                req.overlapped += seconds
            world.record(self.world_rank, "compute", t0, t0 + seconds)

    # ------------------------------------------------------------------ #
    # Fault hook
    # ------------------------------------------------------------------ #

    def _tick_op(self) -> None:
        world = self._state.world
        with world.lock:
            idx = world.op_counters[self.world_rank]
            world.op_counters[self.world_rank] = idx + 1
            plan = world.faults
            clock = world.clocks[self.world_rank]
        if plan is not None and plan.should_kill(self.world_rank, idx, clock):
            raise FaultInjected(
                f"rank {self.world_rank} killed by fault plan at op {idx} "
                f"(virtual t={clock:.6f}s)",
                rank=self.world_rank,
            )

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager (buffered) send of a picklable object to ``dest``."""
        self._tick_op()
        self._check_peer(dest)
        world = self._state.world
        src_w = self.world_rank
        dst_w = self._state.members[dest]
        payload = clone_payload(obj)
        nbytes = payload_nbytes(payload)
        with world.cv:
            world.check_live()
            fault = world.faults.on_message(src_w, dst_w) if world.faults else None
            if fault is not None and fault.drop:
                world.stats.dropped_messages += 1
                return
            now = world.clocks[src_w]
            if world.network is not None:
                transit = world.network.p2p_time(nbytes, src_w, dst_w)
                # Sender pays the startup (alpha) cost locally.
                world.clocks[src_w] = now + world.network.p2p_time(0, src_w, dst_w)
            else:
                transit = 0.0
            arrival = now + transit + (fault.delay if fault is not None else 0.0)
            world.mailboxes[dst_w].append(
                _Envelope(source=src_w, tag=tag, payload=payload, nbytes=nbytes, arrival=arrival)
            )
            world.stats.record_p2p(src_w, nbytes)
            world.record(src_w, "send", now, world.clocks[src_w], nbytes)
            world.cv.notify_all()

    def isend(self, obj: Any, dest: int, tag: int = 0) -> _SendRequest:
        """Non-blocking send: payload delivered eagerly, cost charged lazily.

        The envelope lands in the destination mailbox immediately (same
        receiver-side semantics as :meth:`send`), but the sender's clock is
        untouched until ``request.wait()``, which charges the full
        point-to-point time minus whatever compute overlapped it.
        """
        self._tick_op()
        self._check_peer(dest)
        world = self._state.world
        src_w = self.world_rank
        dst_w = self._state.members[dest]
        payload = clone_payload(obj)
        nbytes = payload_nbytes(payload)
        with world.cv:
            world.check_live()
            fault = world.faults.on_message(src_w, dst_w) if world.faults else None
            now = world.clocks[src_w]
            if world.network is not None:
                transit = world.network.p2p_time(nbytes, src_w, dst_w)
            else:
                transit = 0.0
            if fault is not None and fault.drop:
                world.stats.dropped_messages += 1
            else:
                arrival = now + transit + (fault.delay if fault is not None else 0.0)
                world.mailboxes[dst_w].append(
                    _Envelope(source=src_w, tag=tag, payload=payload,
                              nbytes=nbytes, arrival=arrival)
                )
                world.stats.record_p2p(src_w, nbytes)
            req = _SendRequest(self, "isend", None, now, transit, nbytes)
            world.inflight[src_w].append(req)
            world.cv.notify_all()
        return req

    def _match(self, source: int, tag: int) -> int | None:
        """Index of the first matching envelope in my mailbox (lock held)."""
        box = self._state.world.mailboxes[self.world_rank]
        want_src = None if source == ANY_SOURCE else self._state.members[source]
        for i, env in enumerate(box):
            if want_src is not None and env.source != want_src:
                continue
            if tag != ANY_TAG and env.tag != tag:
                continue
            # Only accept messages from ranks within this communicator.
            if env.source not in self._state.rank_of_world:
                continue
            return i
        return None

    def _try_recv(self, source: int, tag: int) -> tuple[Any] | None:
        """Non-blocking receive; returns a 1-tuple or None."""
        world = self._state.world
        with world.cv:
            idx = self._match(source, tag)
            if idx is None:
                return None
            env = world.mailboxes[self.world_rank].pop(idx)
            me = self.world_rank
            world.clocks[me] = max(world.clocks[me], env.arrival)
            return (env.payload,)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload object."""
        self._tick_op()
        if source != ANY_SOURCE:
            self._check_peer(source)
        world = self._state.world
        with world.cv:
            me = self.world_rank
            t0 = world.clocks[me]
            world.wait_for(lambda: self._match(source, tag) is not None,
                           f"recv(source={source}, tag={tag}) on rank {self.rank}")
            idx = self._match(source, tag)
            assert idx is not None
            env = world.mailboxes[self.world_rank].pop(idx)
            world.clocks[me] = max(world.clocks[me], env.arrival)
            world.record(me, "recv", t0, world.clocks[me], env.nbytes)
            return env.payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> _RecvRequest:
        """Non-blocking receive request; call ``.wait()`` for the payload."""
        return _RecvRequest(self, source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive (deadlock-free for exchange patterns)."""
        self.send(obj, dest, tag=sendtag)
        return self.recv(source=source, tag=recvtag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already waiting."""
        world = self._state.world
        with world.lock:
            return self._match(source, tag) is not None

    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"peer rank {rank} out of range for communicator of size {self.size}"
            )

    # ------------------------------------------------------------------ #
    # Collective rendezvous machinery
    # ------------------------------------------------------------------ #

    def _rendezvous(self, op: str, contribution: Any) -> tuple[dict[int, Any], float]:
        """Synchronize with all members; returns (contributions, t_start).

        ``contributions`` maps group rank -> (cloned) payload. ``t_start``
        is the max member clock at entry; the caller is responsible for
        advancing clocks by the operation's modelled cost via
        :meth:`_finish_collective`.
        """
        self._tick_op()
        state = self._state
        world = state.world
        me = self._group_rank
        with world.cv:
            world.check_live()
            seq = state.seq[me]
            state.seq[me] += 1
            rnd = state.rounds.get(seq)
            if rnd is None:
                rnd = _Round()
                rnd.op = op
                state.rounds[seq] = rnd
            elif rnd.op != op:
                exc = CommunicatorError(
                    f"collective mismatch on comm {state.context_id}: rank {me} "
                    f"called {op!r} but round {seq} started as {rnd.op!r}"
                )
                world.aborted = True
                world.abort_exc = exc
                world.cv.notify_all()
                raise exc
            if me in rnd.contribs:
                raise CommunicatorError(
                    f"rank {me} contributed twice to collective round {seq}"
                )
            rnd.contribs[me] = clone_payload(contribution)
            rnd.clocks[me] = world.clocks[self.world_rank]
            world.cv.notify_all()
            world.wait_for(
                lambda: len(rnd.contribs) == len(state.members),
                f"collective {op!r} round {seq} ({len(rnd.contribs)}/{len(state.members)} arrived)",
            )
            t_start = max(rnd.clocks.values())
            contribs = rnd.contribs
            rnd.pickups += 1
            if rnd.pickups == len(state.members):
                del state.rounds[seq]
            return contribs, t_start

    def _finish_collective(self, op: str, t_start: float, cost: float, nbytes: int) -> None:
        """Advance this rank's clock to the collective's completion time."""
        world = self._state.world
        with world.lock:
            me = self.world_rank
            t0 = world.clocks[me]
            world.clocks[me] = max(world.clocks[me], t_start + cost)
            world.record(me, op, t0, world.clocks[me], nbytes)
            if self._group_rank == 0:
                world.stats.record_collective(op, nbytes)

    def _collective_cost(self, kind: str, nbytes: float, **kw: Any) -> float:
        net = self._state.world.network
        if net is None:
            return 0.0
        ranks = self._state.members
        if kind == "barrier":
            return net.barrier_time(ranks)
        if kind == "bcast":
            return net.bcast_time(nbytes, ranks)
        if kind == "allreduce":
            return net.allreduce_time(nbytes, ranks, algorithm=kw.get("algorithm"))
        if kind == "reduce":
            return net.reduce_time(nbytes, ranks)
        if kind == "reduce_scatter":
            return net.reduce_scatter_time(nbytes, ranks)
        if kind == "allgather":
            return net.allgather_time(nbytes, ranks)
        if kind == "gather":
            return net.gather_time(nbytes, ranks)
        if kind == "scatter":
            return net.scatter_time(nbytes, ranks)
        if kind == "alltoall":
            return net.alltoall_time(nbytes, ranks, algorithm=kw.get("algorithm"))
        raise CommunicatorError(f"unknown collective kind {kind!r}")

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #

    def barrier(self) -> None:
        """Block until every member arrives; synchronizes virtual clocks."""
        _, t0 = self._rendezvous("barrier", None)
        self._finish_collective("barrier", t0, self._collective_cost("barrier", 0), 0)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value."""
        self._check_peer(root)
        contribs, t0 = self._rendezvous("bcast", obj if self.rank == root else None)
        payload = contribs[root]
        nbytes = payload_nbytes(payload)
        self._finish_collective("bcast", t0, self._collective_cost("bcast", nbytes), nbytes)
        return clone_payload(payload)

    def scatter(self, send_list: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a length-``size`` sequence from ``root``."""
        self._check_peer(root)
        if self.rank == root:
            if send_list is None or len(send_list) != self.size:
                raise CommunicatorError(
                    f"scatter root must pass a sequence of length {self.size}"
                )
        contribs, t0 = self._rendezvous("scatter", send_list if self.rank == root else None)
        chunks = contribs[root]
        mine = clone_payload(chunks[self.rank])
        nbytes = payload_nbytes(mine)
        self._finish_collective("scatter", t0, self._collective_cost("scatter", nbytes), nbytes)
        return mine

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank to ``root`` (None elsewhere)."""
        self._check_peer(root)
        contribs, t0 = self._rendezvous("gather", obj)
        nbytes = payload_nbytes(obj)
        self._finish_collective("gather", t0, self._collective_cost("gather", nbytes), nbytes)
        if self.rank != root:
            return None
        return [clone_payload(contribs[i]) for i in range(self.size)]

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object per rank to every rank."""
        contribs, t0 = self._rendezvous("allgather", obj)
        nbytes = payload_nbytes(obj)
        self._finish_collective(
            "allgather", t0, self._collective_cost("allgather", nbytes), nbytes
        )
        return [clone_payload(contribs[i]) for i in range(self.size)]

    def reduce(self, value: Any, op: str = SUM, root: int = 0) -> Any:
        """Reduce to ``root`` (None elsewhere)."""
        self._check_peer(root)
        contribs, t0 = self._rendezvous("reduce", value)
        nbytes = payload_nbytes(value)
        self._finish_collective("reduce", t0, self._collective_cost("reduce", nbytes), nbytes)
        if self.rank != root:
            return None
        return _reduce_payloads([contribs[i] for i in range(self.size)], op)

    def allreduce(self, value: Any, op: str = SUM, algorithm: str | None = None) -> Any:
        """Reduce across all ranks; every rank returns the result.

        ``algorithm`` optionally forces "ring" / "tree" / "hierarchical"
        for the timing model (functional result is identical).
        """
        contribs, t0 = self._rendezvous("allreduce", value)
        nbytes = payload_nbytes(value)
        cost = self._collective_cost("allreduce", nbytes, algorithm=algorithm)
        self._finish_collective("allreduce", t0, cost, nbytes)
        return _reduce_payloads([contribs[i] for i in range(self.size)], op)

    def reduce_scatter(self, chunks: Sequence[Any], op: str = SUM) -> Any:
        """Each rank passes ``size`` chunks; returns the reduction of its own.

        Equivalent to MPI_Reduce_scatter_block with object semantics: rank r
        receives ``reduce(op, [chunks_from_rank_i[r] for i in ranks])``.
        """
        if len(chunks) != self.size:
            raise CommunicatorError(
                f"reduce_scatter needs {self.size} chunks, got {len(chunks)}"
            )
        contribs, t0 = self._rendezvous("reduce_scatter", list(chunks))
        nbytes = payload_nbytes(chunks)
        cost = self._collective_cost("reduce_scatter", nbytes)
        self._finish_collective("reduce_scatter", t0, cost, nbytes)
        mine = [contribs[i][self.rank] for i in range(self.size)]
        return _reduce_payloads(mine, op)

    def alltoall(self, send_list: Sequence[Any], algorithm: str | None = None) -> list[Any]:
        """Total exchange: rank r receives ``send_list[r]`` from every rank.

        ``algorithm`` optionally forces "flat" / "hierarchical" for the
        timing model — this is the knob experiment F3 sweeps.
        """
        if len(send_list) != self.size:
            raise CommunicatorError(
                f"alltoall needs {self.size} entries, got {len(send_list)}"
            )
        contribs, t0 = self._rendezvous("alltoall", list(send_list))
        total, per_pair = self._alltoall_payload(send_list)
        cost = self._collective_cost("alltoall", per_pair, algorithm=algorithm)
        self._finish_collective("alltoall", t0, cost, total)
        return [clone_payload(contribs[i][self.rank]) for i in range(self.size)]

    def _alltoall_payload(self, send_list: Sequence[Any]) -> tuple[int, float]:
        """(total off-rank bytes, mean per-destination bytes) of an exchange.

        Pricing uses the *actual* bytes this rank puts on the wire (the
        local contribution stays in memory), averaged per destination —
        a max-based figure would overcharge skewed exchanges.
        """
        total = sum(
            payload_nbytes(x) for i, x in enumerate(send_list) if i != self.rank
        )
        return total, total / max(self.size - 1, 1)

    # ------------------------------------------------------------------ #
    # Nonblocking collectives
    # ------------------------------------------------------------------ #

    def _issue_collective(self, op: str, value: Any, t_start: float,
                          cost: float, nbytes: int) -> _CollectiveRequest:
        """Register an in-flight request for an already-rendezvoused op."""
        world = self._state.world
        req = _CollectiveRequest(self, op, value, t_start, cost, nbytes)
        with world.lock:
            world.inflight[self.world_rank].append(req)
        return req

    def ialltoall(
        self, send_list: Sequence[Any], algorithm: str | None = None
    ) -> _CollectiveRequest:
        """Nonblocking total exchange; ``request.wait()`` yields the parts.

        The rendezvous runs eagerly (every member must issue its
        nonblocking collectives in the same order), so the result is
        already materialized when this returns — only the network cost is
        charged lazily, net of compute overlapped via :meth:`advance`.
        """
        if len(send_list) != self.size:
            raise CommunicatorError(
                f"alltoall needs {self.size} entries, got {len(send_list)}"
            )
        contribs, t0 = self._rendezvous("ialltoall", list(send_list))
        total, per_pair = self._alltoall_payload(send_list)
        cost = self._collective_cost("alltoall", per_pair, algorithm=algorithm)
        value = [clone_payload(contribs[i][self.rank]) for i in range(self.size)]
        return self._issue_collective("ialltoall", value, t0, cost, total)

    def iallreduce(
        self, value: Any, op: str = SUM, algorithm: str | None = None
    ) -> _CollectiveRequest:
        """Nonblocking allreduce; ``request.wait()`` yields the reduction."""
        contribs, t0 = self._rendezvous("iallreduce", value)
        nbytes = payload_nbytes(value)
        cost = self._collective_cost("allreduce", nbytes, algorithm=algorithm)
        result = _reduce_payloads([contribs[i] for i in range(self.size)], op)
        return self._issue_collective("iallreduce", result, t0, cost, nbytes)

    def iallgather(self, obj: Any) -> _CollectiveRequest:
        """Nonblocking allgather; ``request.wait()`` yields the list."""
        contribs, t0 = self._rendezvous("iallgather", obj)
        nbytes = payload_nbytes(obj)
        cost = self._collective_cost("allgather", nbytes)
        value = [clone_payload(contribs[i]) for i in range(self.size)]
        return self._issue_collective("iallgather", value, t0, cost, nbytes)

    # ------------------------------------------------------------------ #
    # Communicator management
    # ------------------------------------------------------------------ #

    def Split(self, color: int | None, key: int | None = None) -> "Comm | None":  # noqa: N802
        """Partition the communicator by ``color``; order ranks by ``key``.

        Ranks passing ``color=None`` opt out and receive ``None`` (like
        ``MPI.UNDEFINED``).
        """
        me = self._group_rank
        sort_key = me if key is None else key
        contribs, t0 = self._rendezvous("split", (color, sort_key))
        self._finish_collective("split", t0, self._collective_cost("barrier", 0), 0)
        # Deterministically build one shared _CommState per color. Every
        # member computes the same membership, but the state object must be
        # shared — we stash it on the round via a second rendezvous where
        # rank 0 of each color group allocates.
        if color is None:
            # Still participate in the allocation rendezvous to keep the
            # collective streams aligned across members.
            self._rendezvous("split-alloc", None)
            return None
        groups: dict[int, list[tuple[int, int]]] = {}
        for grank in range(self.size):
            c, k = contribs[grank]
            if c is None:
                continue
            groups.setdefault(c, []).append((k, grank))
        members_by_color = {
            c: [self._state.members[g] for _, g in sorted(pairs)]
            for c, pairs in groups.items()
        }
        my_members = members_by_color[color]
        leader = my_members[0]
        state: _CommState | None = None
        if self.world_rank == leader:
            state = _CommState(self._state.world, my_members)
        alloc_contribs, _ = self._rendezvous("split-alloc", state)
        # Find the state allocated by my group's leader.
        leader_grank = self._state.rank_of_world[leader]
        shared = alloc_contribs[leader_grank]
        assert isinstance(shared, _CommState)
        return Comm(shared, shared.rank_of_world[self.world_rank])

    def Dup(self) -> "Comm":  # noqa: N802
        """Duplicate the communicator with a fresh collective context."""
        state: _CommState | None = None
        if self._group_rank == 0:
            state = _CommState(self._state.world, list(self._state.members))
        contribs, t0 = self._rendezvous("dup", state)
        self._finish_collective("dup", t0, self._collective_cost("barrier", 0), 0)
        shared = contribs[0]
        assert isinstance(shared, _CommState)
        return Comm(shared, self._group_rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Comm(rank={self.rank}/{self.size}, world_rank={self.world_rank}, "
            f"ctx={self._state.context_id})"
        )
