"""Functional hierarchical (two-phase) alltoall.

The cost model in :mod:`repro.network` prices the supernode-aggregated
alltoall analytically; this module *implements* it, so the aggregation
algorithm itself is verified functionally: the result is identical to a
flat ``comm.alltoall`` while the traffic pattern becomes

1. **intra-group phase** — each rank hands every item to the group member
   whose intra-group position matches the item's destination position;
2. **inter-group phase** — ranks at the same position exchange aggregated
   bundles across groups, delivering each item to its exact destination.

Inter-group message count per rank drops from ``p-1`` to ``p/g - 1``
(bundles are larger), which is precisely the trade the F3 experiment
prices. Ranks are grouped consecutively, matching the MoDa placement of
EP groups inside supernodes.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import CommunicatorError
from repro.simmpi.comm import Comm

__all__ = ["hierarchical_alltoall"]


def hierarchical_alltoall(
    comm: Comm, send_list: Sequence[Any], group_size: int
) -> list[Any]:
    """Total exchange via intra-group re-bucketing + inter-group bundles.

    Equivalent to ``comm.alltoall(send_list)`` (same result, by
    construction and by property test); ``group_size`` must divide the
    communicator size. Every rank must call with the same ``group_size``.
    """
    p = comm.size
    if group_size < 1 or p % group_size != 0:
        raise CommunicatorError(
            f"group_size={group_size} must divide comm size {p}"
        )
    if len(send_list) != p:
        raise CommunicatorError(
            f"send_list must have {p} entries, got {len(send_list)}"
        )
    g = group_size
    num_groups = p // g
    me = comm.rank
    my_pos = me % g

    if g == 1 or g == p:
        # No hierarchy to exploit; a flat exchange is the same thing.
        return comm.alltoall(list(send_list))

    intra = comm.Split(color=me // g, key=my_pos)
    inter = comm.Split(color=my_pos, key=me // g)
    assert intra is not None and inter is not None

    # Phase 1: give group member at position (dest % g) the (src, dest,
    # item) triples it is responsible for forwarding.
    buckets_by_pos: list[list[tuple[int, int, Any]]] = [[] for _ in range(g)]
    for dest in range(p):
        buckets_by_pos[dest % g].append((me, dest, send_list[dest]))
    phase1 = intra.alltoall(buckets_by_pos)

    # I now hold triples from my whole group, all destined to ranks whose
    # position == my position. Bundle them by destination group.
    bundles: list[list[tuple[int, int, Any]]] = [[] for _ in range(num_groups)]
    for triples in phase1:
        for src, dest, item in triples:
            bundles[dest // g].append((src, dest, item))

    # Phase 2: exchange bundles across groups at fixed position. The
    # bundle for group h contains everything my group sends to rank
    # (h * g + my_pos) — it arrives at its exact destination.
    phase2 = inter.alltoall(bundles)

    result: list[Any] = [None] * p
    seen = [False] * p
    for triples in phase2:
        for src, dest, item in triples:
            if dest != me:
                raise CommunicatorError(
                    f"routing bug: rank {me} received item for {dest}"
                )
            if seen[src]:
                raise CommunicatorError(
                    f"routing bug: duplicate item from source {src}"
                )
            result[src] = item
            seen[src] = True
    if not all(seen):
        missing = [s for s, ok in enumerate(seen) if not ok]
        raise CommunicatorError(f"routing bug: missing items from {missing}")
    return result
