"""Virtual-time event tracing for SPMD runs.

When enabled, every communication operation records a (rank, op, t_start,
t_end, nbytes) interval in *virtual* time — the timeline of the modelled
machine, not of the host Python process. The result can be exported as a
Chrome-tracing JSON (`chrome://tracing` / Perfetto) to see the
communication structure of a training step: alltoall waves, allreduce
barriers, pipeline bubbles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

__all__ = ["TraceEvent", "to_chrome_trace", "write_chrome_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One operation interval on one rank (virtual seconds)."""

    rank: int
    op: str
    t_start: float
    t_end: float
    nbytes: int = 0
    #: Seconds of this op's network cost hidden behind compute (nonzero
    #: only for nonblocking ops whose wait charged less than their cost).
    hidden: float = 0.0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def to_chrome_trace(events: Iterable[TraceEvent]) -> list[dict]:
    """Convert events to Chrome-tracing "complete" (ph=X) records.

    Virtual seconds are scaled to microseconds (the trace viewer's unit).
    """
    out = []
    for e in events:
        args: dict = {"nbytes": e.nbytes}
        if e.hidden:
            args["hidden_seconds"] = e.hidden
        out.append(
            {
                "name": e.op,
                "ph": "X",
                "ts": e.t_start * 1e6,
                "dur": max(e.duration * 1e6, 0.001),
                "pid": 0,
                "tid": e.rank,
                "args": args,
            }
        )
    return out


def write_chrome_trace(events: Iterable[TraceEvent], path: str | Path) -> Path:
    """Write a Chrome-tracing JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"traceEvents": to_chrome_trace(events)}))
    return path
