"""Simulated MPI: thread-per-rank SPMD with an mpi4py-style API.

The runtime is functionally faithful (messages, collectives, communicator
splitting) and additionally maintains a per-rank **virtual clock** advanced
by a :class:`~repro.network.NetworkModel`, so the same program yields both
correct results and topology-aware simulated timings.
"""

from repro.simmpi.comm import ANY_SOURCE, ANY_TAG, MAX, MIN, PROD, SUM, Comm
from repro.simmpi.context import RunContext
from repro.simmpi.engine import SpmdResult, run_spmd
from repro.simmpi.faults import FaultModel, FaultPlan, FlakyLink, MessageFault
from repro.simmpi.hier import hierarchical_alltoall
from repro.simmpi.payload import clone_payload, payload_nbytes
from repro.simmpi.stats import TrafficStats
from repro.simmpi.trace import TraceEvent, to_chrome_trace, write_chrome_trace

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "Comm",
    "RunContext",
    "SpmdResult",
    "run_spmd",
    "FaultModel",
    "FaultPlan",
    "FlakyLink",
    "hierarchical_alltoall",
    "MessageFault",
    "TrafficStats",
    "TraceEvent",
    "to_chrome_trace",
    "write_chrome_trace",
    "clone_payload",
    "payload_nbytes",
]
