"""SPMD launcher: run a rank function on N threads with a shared world.

This plays the role of ``mpiexec`` for the simulated MPI: the user writes

.. code-block:: python

    def program(comm):
        part = comm.rank
        total = comm.allreduce(part)
        return total

    result = run_spmd(program, size=8, network=sunway_network(8))
    assert result.returns == [28] * 8
    print(result.simulated_time)   # virtual seconds from the cost model

Error handling: if any rank raises, every other rank is unblocked with
:class:`~repro.errors.RankAbort` and :func:`run_spmd` re-raises the original
exception in the caller's thread. A global timeout converts hangs (real
deadlocks, dropped messages) into :class:`~repro.errors.DeadlockError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import CommunicatorError, RankAbort
from repro.simmpi.comm import Comm, _CommState, _World
from repro.simmpi.faults import FaultModel, FaultPlan
from repro.simmpi.stats import TrafficStats
from repro.utils.seeding import rng_for_rank

__all__ = ["run_spmd", "SpmdResult"]


@dataclass
class SpmdResult:
    """Outcome of one :func:`run_spmd` invocation."""

    #: Per-rank return values of the rank function.
    returns: list[Any]
    #: Per-rank final virtual clocks (seconds).
    clocks: list[float]
    #: Aggregate traffic counters.
    stats: TrafficStats
    #: Extra per-run metadata (world size etc.).
    meta: dict[str, Any] = field(default_factory=dict)
    #: Virtual-time trace events (populated when run_spmd(trace=True)).
    trace: list[Any] | None = None
    #: The run's shared instrumentation spine (stats + trace + phases).
    context: Any | None = None

    @property
    def simulated_time(self) -> float:
        """Virtual makespan: the slowest rank's final clock."""
        return max(self.clocks) if self.clocks else 0.0


def run_spmd(
    fn: Callable[..., Any],
    size: int,
    *,
    network: Any | None = None,
    seed: int = 0,
    timeout: float = 120.0,
    faults: FaultPlan | FaultModel | None = None,
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
    pass_rng: bool = False,
    trace: bool = False,
    observe: bool = False,
) -> SpmdResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``size`` simulated ranks.

    Parameters
    ----------
    fn:
        The rank program. Receives a :class:`~repro.simmpi.Comm` as first
        argument (plus a per-rank ``numpy`` Generator when ``pass_rng``).
    size:
        World size (number of rank threads).
    network:
        Optional :class:`~repro.network.NetworkModel`; when given, every
        communication call advances virtual clocks by its modelled cost.
    seed:
        Base seed for per-rank RNGs (``pass_rng=True``).
    timeout:
        Wall-clock seconds before blocked ranks raise ``DeadlockError``.
    faults:
        Optional :class:`~repro.simmpi.FaultPlan` (scripted) or
        :class:`~repro.simmpi.FaultModel` (seeded stochastic) for failure
        injection.
    observe:
        Give the run's :class:`~repro.simmpi.RunContext` a live metric
        registry + router telemetry (default: the no-op registry).

    Returns
    -------
    SpmdResult
        Per-rank return values, virtual clocks, and traffic statistics.
    """
    if size < 1:
        raise CommunicatorError(f"world size must be >= 1, got {size}")
    if kwargs is None:
        kwargs = {}

    world = _World(size=size, network=network, timeout=timeout, faults=faults,
                   trace=trace, observe=observe)
    state = _CommState(world, list(range(size)))

    returns: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size

    def runner(rank: int) -> None:
        comm = Comm(state, rank)
        call_args: tuple[Any, ...]
        if pass_rng:
            call_args = (comm, rng_for_rank(seed, rank)) + tuple(args)
        else:
            call_args = (comm,) + tuple(args)
        try:
            returns[rank] = fn(*call_args, **kwargs)
        except RankAbort as exc:
            errors[rank] = exc
        except BaseException as exc:  # noqa: BLE001 - must ferry any failure
            errors[rank] = exc
            world.abort(exc)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"simmpi-rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        # The world deadline bounds blocking inside ranks, so join without
        # an explicit timeout would normally return; keep a cushion anyway.
        t.join(timeout=timeout + 30.0)

    alive = [t for t in threads if t.is_alive()]
    if alive:
        world.abort(CommunicatorError("engine join timeout"))
        raise CommunicatorError(
            f"{len(alive)} rank thread(s) failed to terminate; "
            "likely a non-interruptible hang inside user code"
        )

    # Prefer reporting a real failure over the secondary RankAborts.
    primary = None
    for exc in errors:
        if exc is not None and not isinstance(exc, RankAbort):
            primary = exc
            break
    if primary is None and world.abort_exc is not None:
        primary = world.abort_exc
    if primary is not None:
        # Recovery drivers charge a crashed attempt's virtual time and
        # traffic to their goodput accounting even though no SpmdResult
        # is returned; ferry the partial observations on the exception.
        # The flight dump rides along so fault / deadlock / overflow
        # post-mortems carry every rank's last recorded operations.
        primary.partial_clocks = list(world.clocks)
        primary.partial_context = world.context
        primary.flight_dump = world.context.flight.dump(
            phases=world.context.phase_seconds
        )
        raise primary

    return SpmdResult(
        returns=returns,
        clocks=list(world.clocks),
        stats=world.stats,
        meta={"size": size, "seed": seed, "has_network": network is not None},
        trace=world.trace_events,
        context=world.context,
    )
