"""Payload helpers: cloning and byte-size estimation.

Messages in the simulated MPI are deep-copied at send time so that a rank
mutating its buffer after ``send`` cannot corrupt the receiver — matching
the semantics of a real network transfer. Byte sizes feed the virtual
clock's cost model.
"""

from __future__ import annotations

import copy
import sys
from typing import Any

import numpy as np

__all__ = ["clone_payload", "payload_nbytes"]


def clone_payload(obj: Any) -> Any:
    """Deep-copy ``obj`` the way a network transfer would.

    NumPy arrays are copied with ``np.copy`` (fast path, keeps dtype and
    shape); containers are cloned recursively; immutable scalars are
    returned as-is.
    """
    if getattr(obj, "__simmpi_no_clone__", False):
        # Runtime-internal handles (e.g. shared communicator state) must be
        # passed by reference through rendezvous, never copied.
        return obj
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if obj is None or isinstance(obj, (int, float, complex, bool, str, bytes, frozenset)):
        return obj
    if isinstance(obj, tuple):
        return tuple(clone_payload(x) for x in obj)
    if isinstance(obj, list):
        return [clone_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {clone_payload(k): clone_payload(v) for k, v in obj.items()}
    if isinstance(obj, set):
        return {clone_payload(x) for x in obj}
    return copy.deepcopy(obj)


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of ``obj`` in bytes.

    Exact for NumPy arrays and byte strings (the payloads that matter for
    timing); a reasonable structural estimate for containers; a small
    constant for scalars. The estimate only drives the virtual clock, not
    correctness.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    return int(sys.getsizeof(obj))
