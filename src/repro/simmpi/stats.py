"""Traffic accounting for simulated MPI runs."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrafficStats"]


@dataclass
class TrafficStats:
    """Counters accumulated by the engine during one SPMD run.

    All byte figures are *logical payload* bytes (what the application
    moved), not modelled wire bytes; the virtual clock already accounts for
    protocol efficiency through the link model.
    """

    p2p_messages: int = 0
    p2p_bytes: int = 0
    collective_calls: dict[str, int] = field(default_factory=dict)
    collective_bytes: dict[str, int] = field(default_factory=dict)
    bytes_sent_by_rank: dict[int, int] = field(default_factory=dict)
    dropped_messages: int = 0

    def record_p2p(self, src: int, nbytes: int) -> None:
        self.p2p_messages += 1
        self.p2p_bytes += nbytes
        self.bytes_sent_by_rank[src] = self.bytes_sent_by_rank.get(src, 0) + nbytes

    def record_collective(self, op: str, nbytes: int) -> None:
        self.collective_calls[op] = self.collective_calls.get(op, 0) + 1
        self.collective_bytes[op] = self.collective_bytes.get(op, 0) + nbytes

    @property
    def total_bytes(self) -> int:
        return self.p2p_bytes + sum(self.collective_bytes.values())

    def summary(self) -> dict[str, object]:
        """A plain-dict snapshot convenient for logging."""
        return {
            "p2p_messages": self.p2p_messages,
            "p2p_bytes": self.p2p_bytes,
            "collective_calls": dict(self.collective_calls),
            "collective_bytes": dict(self.collective_bytes),
            "total_bytes": self.total_bytes,
            "dropped_messages": self.dropped_messages,
        }
