"""Traffic accounting for simulated MPI runs."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["TrafficStats"]


@dataclass
class TrafficStats:
    """Counters accumulated by the engine during one SPMD run.

    All byte figures are *logical payload* bytes (what the application
    moved), not modelled wire bytes; the virtual clock already accounts for
    protocol efficiency through the link model.

    The per-op and per-rank counters are :class:`collections.Counter`
    instances, and :meth:`summary` emits every key (top-level and nested)
    in sorted order, so two logged runs diff cleanly line-for-line.
    """

    p2p_messages: int = 0
    p2p_bytes: int = 0
    collective_calls: Counter[str] = field(default_factory=Counter)
    collective_bytes: Counter[str] = field(default_factory=Counter)
    bytes_sent_by_rank: Counter[int] = field(default_factory=Counter)
    dropped_messages: int = 0
    #: Per-op virtual seconds of nonblocking comm hidden behind compute
    #: (and the exposed remainder), recorded from world rank 0's thread
    #: only so float accumulation order is deterministic.
    overlapped_seconds: Counter[str] = field(default_factory=Counter)
    exposed_seconds: Counter[str] = field(default_factory=Counter)

    def record_p2p(self, src: int, nbytes: int) -> None:
        self.p2p_messages += 1
        self.p2p_bytes += nbytes
        self.bytes_sent_by_rank[src] += nbytes

    def record_collective(self, op: str, nbytes: int) -> None:
        self.collective_calls[op] += 1
        self.collective_bytes[op] += nbytes

    def record_overlap(self, op: str, overlapped: float, exposed: float) -> None:
        """Account one nonblocking op's hidden-vs-exposed split."""
        self.overlapped_seconds[op] += overlapped
        self.exposed_seconds[op] += exposed

    @property
    def total_bytes(self) -> int:
        return self.p2p_bytes + sum(self.collective_bytes.values())

    def merge(self, other: "TrafficStats") -> None:
        """Fold another run's counters into this one.

        Recovery drivers use this to account a whole multi-launch session
        (including crashed attempts) under one aggregate.
        """
        self.p2p_messages += other.p2p_messages
        self.p2p_bytes += other.p2p_bytes
        self.collective_calls.update(other.collective_calls)
        self.collective_bytes.update(other.collective_bytes)
        self.bytes_sent_by_rank.update(other.bytes_sent_by_rank)
        self.dropped_messages += other.dropped_messages
        self.overlapped_seconds.update(other.overlapped_seconds)
        self.exposed_seconds.update(other.exposed_seconds)

    def summary(self) -> dict[str, object]:
        """A plain-dict snapshot convenient for logging.

        Nested per-op / per-rank dicts are key-sorted so serialized
        summaries are deterministic across runs.
        """
        return {
            "bytes_by_rank": {r: self.bytes_sent_by_rank[r]
                              for r in sorted(self.bytes_sent_by_rank)},
            "collective_bytes": {k: self.collective_bytes[k]
                                 for k in sorted(self.collective_bytes)},
            "collective_calls": {k: self.collective_calls[k]
                                 for k in sorted(self.collective_calls)},
            "dropped_messages": self.dropped_messages,
            "exposed_seconds": {k: self.exposed_seconds[k]
                                for k in sorted(self.exposed_seconds)},
            "overlapped_seconds": {k: self.overlapped_seconds[k]
                                   for k in sorted(self.overlapped_seconds)},
            "p2p_bytes": self.p2p_bytes,
            "p2p_messages": self.p2p_messages,
            "total_bytes": self.total_bytes,
        }
