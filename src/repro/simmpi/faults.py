"""Fault injection for the simulated MPI runtime.

Two layers of failure modelling share one engine hook surface:

* :class:`FaultPlan` — *scripted* faults. Tests drop or delay individual
  messages, or kill a rank at a chosen operation index, and assert that
  the engine surfaces the failure as :class:`~repro.errors.FaultInjected`
  / :class:`~repro.errors.DeadlockError` instead of hanging.
* :class:`FaultModel` — *stochastic* faults. A seeded model of the kinds
  of trouble a 96,000-node machine produces continuously: MTBF-driven
  rank crashes in virtual time, permanently dead nodes, straggler nodes
  (compute slowdown factors applied to virtual clocks), and flaky links
  (probabilistic message drop/delay). All randomness is derived from the
  seed, the launch index, and the node id, so a run is exactly
  reproducible — including across the relaunches of a recovery driver.

The engine consults four hooks (serialized under the world lock):
``on_launch(size)``, ``should_kill(rank, op_index, clock)``,
``compute_scale(rank)``, and ``on_message(src, dst)``. ``FaultPlan``
implements the same hooks with scripted/no-op behaviour, so either object
can be passed as ``run_spmd(faults=...)``.

Nodes vs ranks: a :class:`FaultModel` targets *nodes* (stable hardware
identities). Each launch maps world rank ``r`` to the ``r``-th
non-excluded node, so when a recovery driver excludes a dead node and
relaunches with a smaller world, the survivors keep their fault profile
(straggler factors, MTBF streams) while the bad node is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["FaultPlan", "MessageFault", "FaultModel", "FlakyLink"]


@dataclass(frozen=True)
class MessageFault:
    """A fault applied to the nth message on a (src, dst) edge.

    ``drop=True`` silently discards the message (the receiver will block
    until the engine's deadlock timeout). ``delay`` adds virtual seconds to
    the message's arrival time.
    """

    src: int
    dst: int
    match_index: int = 0
    drop: bool = False
    delay: float = 0.0


@dataclass
class FaultPlan:
    """A collection of scripted faults for one SPMD run."""

    message_faults: list[MessageFault] = field(default_factory=list)
    #: rank -> operation index at which the rank raises FaultInjected.
    kill_rank_at_op: dict[int, int] = field(default_factory=dict)
    #: rank -> virtual time (seconds) past which the rank dies at its next
    #: communication operation — scripted *mid-run* crashes whose position
    #: in the timeline does not depend on how many ops preceded them.
    kill_rank_at_time: dict[int, float] = field(default_factory=dict)

    _edge_counts: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)

    def add_message_fault(self, fault: MessageFault) -> "FaultPlan":
        self.message_faults.append(fault)
        return self

    def kill_rank(self, rank: int, at_op: int = 0) -> "FaultPlan":
        """Schedule ``rank`` to die when it issues its ``at_op``-th operation."""
        self.kill_rank_at_op[rank] = at_op
        return self

    def kill_rank_at(self, rank: int, at_time: float) -> "FaultPlan":
        """Schedule ``rank`` to die at its first op past virtual ``at_time``."""
        if at_time < 0:
            raise ConfigError(f"kill time must be >= 0 seconds, got {at_time}")
        self.kill_rank_at_time[rank] = float(at_time)
        return self

    # ------------------------------------------------------------------ #
    # Engine hooks (not thread-safe by themselves; the engine serializes
    # access under the world lock).
    # ------------------------------------------------------------------ #

    def on_launch(self, size: int) -> None:
        """Called once when a world of ``size`` ranks starts (no-op)."""

    def on_message(self, src: int, dst: int) -> MessageFault | None:
        """Return the fault matching this message occurrence, if any."""
        key = (src, dst)
        idx = self._edge_counts.get(key, 0)
        self._edge_counts[key] = idx + 1
        for fault in self.message_faults:
            if fault.src == src and fault.dst == dst and fault.match_index == idx:
                return fault
        return None

    def should_kill(self, rank: int, op_index: int, clock: float = 0.0) -> bool:
        """True when ``rank`` must abort at ``op_index`` / virtual ``clock``."""
        target = self.kill_rank_at_op.get(rank)
        if target is not None and op_index >= target:
            return True
        t_kill = self.kill_rank_at_time.get(rank)
        return t_kill is not None and clock >= t_kill

    def compute_scale(self, rank: int) -> float:
        """Compute-time multiplier for ``rank`` (1.0 = healthy)."""
        return 1.0


@dataclass(frozen=True)
class FlakyLink:
    """A stochastically degraded (src, dst) node edge.

    Each message on the edge is independently dropped with probability
    ``drop_prob``, otherwise delayed by ``delay`` virtual seconds with
    probability ``delay_prob``. Use ``src=-1`` / ``dst=-1`` as wildcards.
    """

    src: int
    dst: int
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be in [0,1], got {p}")
        if self.delay < 0:
            raise ConfigError(f"delay must be >= 0, got {self.delay}")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src in (-1, src)) and (self.dst in (-1, dst))


class FaultModel:
    """Seeded stochastic faults over a fleet of *nodes*.

    Parameters
    ----------
    seed:
        Base seed; every random stream below derives from it.
    mtbf:
        Mean time between failures in *virtual* seconds per node, or None
        to disable random crashes. Each launch draws one exponential
        failure time per node; a rank whose virtual clock passes its
        node's failure time raises :class:`~repro.errors.FaultInjected`
        at its next communication operation.
    dead_nodes:
        Nodes that fail instantly at every launch (op 0) until excluded —
        the "card that never comes back" a recovery driver must shrink
        around.
    stragglers:
        node -> compute slowdown factor (>= 1.0). The engine multiplies
        the node's local compute time by this factor, degrading the whole
        world's synchronous step time to the straggler's pace.
    flaky_links:
        :class:`FlakyLink` specs; message faults are drawn per occurrence
        from a dedicated rng, so drops/delays are reproducible.

    The model is stateful across launches (``launch_index`` increments on
    every :meth:`on_launch`; :meth:`exclude_node` shrinks the usable
    fleet) — pass one instance through a whole recovery session.
    """

    def __init__(
        self,
        seed: int = 0,
        mtbf: float | None = None,
        dead_nodes: tuple[int, ...] | frozenset[int] = (),
        stragglers: dict[int, float] | None = None,
        flaky_links: tuple[FlakyLink, ...] = (),
    ):
        if mtbf is not None and mtbf <= 0:
            raise ConfigError(f"mtbf must be > 0 virtual seconds, got {mtbf}")
        self.seed = int(seed)
        self.mtbf = mtbf
        self.dead_nodes = frozenset(int(n) for n in dead_nodes)
        self.stragglers = dict(stragglers or {})
        for node, factor in self.stragglers.items():
            if factor < 1.0:
                raise ConfigError(
                    f"straggler factor for node {node} must be >= 1.0, got {factor}"
                )
        self.flaky_links = tuple(flaky_links)
        self.excluded: set[int] = set()
        self.launch_index = -1
        self._node_of_rank: list[int] = []
        self._failure_time: dict[int, float] = {}
        self._link_rng = np.random.default_rng([self.seed, 0xF1A2])

    # ------------------------------------------------------------------ #
    # Fleet management
    # ------------------------------------------------------------------ #

    def exclude_node(self, node: int) -> None:
        """Remove ``node`` from the fleet for every future launch."""
        self.excluded.add(int(node))

    def node_of_rank(self, rank: int) -> int:
        """The node world rank ``rank`` is mapped to in the current launch."""
        if not 0 <= rank < len(self._node_of_rank):
            raise ConfigError(
                f"rank {rank} not mapped; current launch has "
                f"{len(self._node_of_rank)} ranks"
            )
        return self._node_of_rank[rank]

    # ------------------------------------------------------------------ #
    # Engine hooks
    # ------------------------------------------------------------------ #

    def on_launch(self, size: int) -> None:
        """Map ``size`` ranks onto the non-excluded fleet; draw MTBF times."""
        self.launch_index += 1
        nodes: list[int] = []
        candidate = 0
        while len(nodes) < size:
            if candidate not in self.excluded:
                nodes.append(candidate)
            candidate += 1
        self._node_of_rank = nodes
        self._failure_time = {}
        for node in nodes:
            if node in self.dead_nodes:
                self._failure_time[node] = 0.0
            elif self.mtbf is not None:
                rng = np.random.default_rng([self.seed, self.launch_index, node])
                self._failure_time[node] = float(rng.exponential(self.mtbf))

    def should_kill(self, rank: int, op_index: int, clock: float = 0.0) -> bool:
        """True when ``rank``'s node has failed by virtual time ``clock``."""
        t_fail = self._failure_time.get(self.node_of_rank(rank))
        return t_fail is not None and clock >= t_fail

    def compute_scale(self, rank: int) -> float:
        """Compute-time multiplier from the rank's node straggler factor."""
        return self.stragglers.get(self.node_of_rank(rank), 1.0)

    def on_message(self, src: int, dst: int) -> MessageFault | None:
        """Draw drop/delay outcomes for a message on a flaky link."""
        src_node = self.node_of_rank(src)
        dst_node = self.node_of_rank(dst)
        for link in self.flaky_links:
            if not link.matches(src_node, dst_node):
                continue
            if link.drop_prob and self._link_rng.random() < link.drop_prob:
                return MessageFault(src=src, dst=dst, drop=True)
            if link.delay_prob and self._link_rng.random() < link.delay_prob:
                return MessageFault(src=src, dst=dst, delay=link.delay)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultModel(seed={self.seed}, mtbf={self.mtbf}, "
            f"dead_nodes={sorted(self.dead_nodes)}, "
            f"stragglers={self.stragglers}, excluded={sorted(self.excluded)}, "
            f"launch_index={self.launch_index})"
        )
