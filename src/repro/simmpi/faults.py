"""Fault injection for the simulated MPI runtime.

Tests and resilience experiments can drop or delay individual messages, or
kill a rank at a chosen operation index, and assert that the engine
surfaces the failure as :class:`~repro.errors.FaultInjected` /
:class:`~repro.errors.DeadlockError` instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultPlan", "MessageFault"]


@dataclass(frozen=True)
class MessageFault:
    """A fault applied to the nth message on a (src, dst) edge.

    ``drop=True`` silently discards the message (the receiver will block
    until the engine's deadlock timeout). ``delay`` adds virtual seconds to
    the message's arrival time.
    """

    src: int
    dst: int
    match_index: int = 0
    drop: bool = False
    delay: float = 0.0


@dataclass
class FaultPlan:
    """A collection of injected faults for one SPMD run."""

    message_faults: list[MessageFault] = field(default_factory=list)
    #: rank -> operation index at which the rank raises FaultInjected.
    kill_rank_at_op: dict[int, int] = field(default_factory=dict)

    _edge_counts: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)

    def add_message_fault(self, fault: MessageFault) -> "FaultPlan":
        self.message_faults.append(fault)
        return self

    def kill_rank(self, rank: int, at_op: int = 0) -> "FaultPlan":
        """Schedule ``rank`` to die when it issues its ``at_op``-th operation."""
        self.kill_rank_at_op[rank] = at_op
        return self

    # ------------------------------------------------------------------ #
    # Engine hooks (not thread-safe by themselves; the engine serializes
    # access under the world lock).
    # ------------------------------------------------------------------ #

    def on_message(self, src: int, dst: int) -> MessageFault | None:
        """Return the fault matching this message occurrence, if any."""
        key = (src, dst)
        idx = self._edge_counts.get(key, 0)
        self._edge_counts[key] = idx + 1
        for fault in self.message_faults:
            if fault.src == src and fault.dst == dst and fault.match_index == idx:
                return fault
        return None

    def should_kill(self, rank: int, op_index: int) -> bool:
        """True when ``rank`` must abort at ``op_index``."""
        target = self.kill_rank_at_op.get(rank)
        return target is not None and op_index >= target
