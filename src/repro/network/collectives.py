"""Analytic cost models for collective operations over a topology.

Each function returns the *time in seconds* for the collective to complete
across a set of leaf nodes, using classic LogP/alpha-beta formulations:

* ring allreduce:        2(p-1) steps of (alpha + (n/p) beta)
* tree (recursive-doubling) allreduce: 2 ceil(log2 p) (alpha + n beta)
* hierarchical allreduce: intra-group ring reduce-scatter / allgather on the
  fast level + inter-group ring on one representative per group
* flat alltoall:         p-1 pairwise messages, contended at the span level
* hierarchical alltoall: intra-group re-bucketing, aggregated inter-group
  exchange (G-1 large messages instead of p-1 small ones), local scatter

The hierarchical variants are the communication contributions reproduced
from BaGuaLu: they trade extra intra-supernode volume for far fewer
latency-bound inter-supernode messages, which wins at scale and loses for
very large per-pair payloads — producing the crossover that experiment F3
demonstrates.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import TopologyError
from repro.network.links import LinkSpec
from repro.network.topology import Topology

__all__ = [
    "cost_p2p",
    "cost_barrier",
    "cost_bcast",
    "cost_ring_allreduce",
    "cost_tree_allreduce",
    "cost_hierarchical_allreduce",
    "cost_reduce_scatter",
    "cost_allgather",
    "cost_flat_alltoall",
    "cost_hierarchical_alltoall",
    "cost_gather",
    "cost_scatter",
]


def _span_link(topo: Topology, nodes: Sequence[int]) -> LinkSpec | None:
    """Link at the span level of ``nodes`` (None when all colocated)."""
    span = topo.span_level_of(nodes)
    if span < 0:
        return None
    return topo.link_at(span)


def _unique(nodes: Sequence[int]) -> list[int]:
    return sorted(set(int(n) for n in nodes))


def cost_p2p(topo: Topology, nbytes: float, src: int, dst: int) -> float:
    """One point-to-point message of ``nbytes`` from src to dst."""
    link = topo.link_between(src, dst)
    if link is None:
        # Same node: model an in-memory copy at a generous 50 GB/s.
        return nbytes / 50e9
    return link.transfer_time(nbytes)


def cost_barrier(topo: Topology, nodes: Sequence[int]) -> float:
    """Dissemination barrier: ceil(log2 p) rounds of zero-byte messages."""
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    link = _span_link(topo, nodes)
    assert link is not None
    return math.ceil(math.log2(p)) * link.latency


def cost_bcast(topo: Topology, nbytes: float, nodes: Sequence[int]) -> float:
    """Binomial-tree broadcast of ``nbytes`` to every node."""
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    link = _span_link(topo, nodes)
    assert link is not None
    return math.ceil(math.log2(p)) * link.transfer_time(nbytes)


def cost_ring_allreduce(topo: Topology, nbytes: float, nodes: Sequence[int]) -> float:
    """Bandwidth-optimal ring allreduce of an ``nbytes`` buffer."""
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    link = _span_link(topo, nodes)
    assert link is not None
    chunk = nbytes / p
    return 2.0 * (p - 1) * (link.latency + chunk * link.beta)


def cost_tree_allreduce(topo: Topology, nbytes: float, nodes: Sequence[int]) -> float:
    """Recursive-doubling allreduce: latency-optimal, bandwidth-suboptimal."""
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    link = _span_link(topo, nodes)
    assert link is not None
    rounds = math.ceil(math.log2(p))
    return 2.0 * rounds * (link.latency + nbytes * link.beta)


def _partition_by_group(
    topo: Topology, nodes: Sequence[int], level: int
) -> dict[int, list[int]]:
    groups: dict[int, list[int]] = {}
    for n in nodes:
        groups.setdefault(topo.group_of(n, level), []).append(n)
    return groups


def cost_hierarchical_allreduce(
    topo: Topology, nbytes: float, nodes: Sequence[int], level: int | None = None
) -> float:
    """Two-phase allreduce: intra-group ring + inter-group ring of leaders.

    ``level`` selects the grouping level; by default the level just below
    the span level (i.e. group by the largest unit that still keeps traffic
    on faster links). Falls back to a plain ring when no hierarchy helps.
    """
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    span = topo.span_level_of(nodes)
    if level is None:
        level = span - 1
    if level < 0 or span <= 0:
        return cost_ring_allreduce(topo, nbytes, nodes)
    groups = _partition_by_group(topo, nodes, level)
    if len(groups) <= 1:
        return cost_ring_allreduce(topo, nbytes, nodes)
    # 2-D torus decomposition: (1) intra-group ring reduce-scatter leaves
    # each node with an nbytes/g reduced chunk; (2) every node runs an
    # inter-group ring allreduce over its own chunk (all chunks move in
    # parallel); (3) intra-group ring allgather reassembles the buffer.
    g_max = max(len(members) for members in groups.values())
    chunk = nbytes / g_max
    intra_rs = 0.0
    intra_ag = 0.0
    for members in groups.values():
        intra_rs = max(intra_rs, cost_reduce_scatter(topo, nbytes, members))
        intra_ag = max(intra_ag, cost_allgather(topo, chunk, members))
    leaders = [min(members) for members in groups.values()]
    inter = cost_ring_allreduce(topo, chunk, leaders)
    return intra_rs + inter + intra_ag


def cost_reduce_scatter(topo: Topology, nbytes: float, nodes: Sequence[int]) -> float:
    """Ring reduce-scatter: (p-1) steps of an nbytes/p chunk."""
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    link = _span_link(topo, nodes)
    assert link is not None
    chunk = nbytes / p
    return (p - 1) * (link.latency + chunk * link.beta)


def cost_allgather(topo: Topology, nbytes: float, nodes: Sequence[int]) -> float:
    """Ring allgather where each node contributes ``nbytes``."""
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    link = _span_link(topo, nodes)
    assert link is not None
    return (p - 1) * (link.latency + nbytes * link.beta)


def cost_gather(topo: Topology, nbytes: float, nodes: Sequence[int]) -> float:
    """Binomial gather of ``nbytes`` per node to a root."""
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    link = _span_link(topo, nodes)
    assert link is not None
    rounds = math.ceil(math.log2(p))
    # Data volume into the root doubles each round; total volume dominates.
    return rounds * link.latency + (p - 1) * nbytes * link.beta


def cost_scatter(topo: Topology, nbytes: float, nodes: Sequence[int]) -> float:
    """Binomial scatter of ``nbytes`` per destination from a root."""
    return cost_gather(topo, nbytes, nodes)


def cost_flat_alltoall(
    topo: Topology, nbytes_per_pair: float, nodes: Sequence[int]
) -> float:
    """Pairwise-exchange alltoall: every node sends p-1 direct messages.

    Traffic crossing the span level is contended (bandwidth taper applies),
    and the latency term scales with p — this is exactly what kills flat
    alltoall at supercomputer scale.
    """
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    link = _span_link(topo, nodes)
    assert link is not None
    alpha = (p - 1) * link.latency
    volume = (p - 1) * nbytes_per_pair
    return alpha + volume * link.effective_beta


def cost_hierarchical_alltoall(
    topo: Topology,
    nbytes_per_pair: float,
    nodes: Sequence[int],
    level: int | None = None,
) -> float:
    """Supernode-aggregated alltoall (the BaGuaLu-style optimization).

    With p nodes in G groups of g, per-pair payload m:

    1. intra-group alltoall re-bucketing data by destination group
       (per-pair size ~ m * G, fast link);
    2. inter-group exchange of aggregated buffers: each node sends G-1
       messages of size g*m instead of p-1 messages of size m;
    3. intra-group alltoall delivering received buckets (per-pair ~ m * G).

    The inter-group latency term drops from (p-1) alpha to (G-1) alpha.
    """
    nodes = _unique(nodes)
    p = len(nodes)
    if p <= 1:
        return 0.0
    span = topo.span_level_of(nodes)
    if level is None:
        level = span - 1
    if level < 0 or span <= 0:
        return cost_flat_alltoall(topo, nbytes_per_pair, nodes)
    groups = _partition_by_group(topo, nodes, level)
    num_groups = len(groups)
    if num_groups <= 1 or num_groups == p:
        return cost_flat_alltoall(topo, nbytes_per_pair, nodes)
    m = nbytes_per_pair
    top = topo.link_at(span)
    # Phase 1 & 3: intra-group alltoalls with per-pair payload m * G.
    intra = 0.0
    for members in groups.values():
        intra = max(intra, cost_flat_alltoall(topo, m * num_groups, members))
    # Phase 2: each node exchanges aggregated buffers with peer groups.
    g_max = max(len(members) for members in groups.values())
    alpha = (num_groups - 1) * top.latency
    volume = (num_groups - 1) * g_max * m
    inter = alpha + volume * top.effective_beta
    return 2.0 * intra + inter
