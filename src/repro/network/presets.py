"""Ready-made topologies: Sunway-like hierarchy, flat cluster, dual-level.

Link numbers follow published figures for the Sunway TaihuLight successor
class of machines (per-node injection ~16 GB/s, intra-supernode latency
~1 us, tapered optical fat-tree between supernodes) — the absolute values
matter less than their ratios, which set the crossover points the
benchmarks reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import TopologyError
from repro.network.costmodel import AlgorithmPolicy, NetworkModel
from repro.network.links import LinkSpec
from repro.network.topology import Level, Topology
from repro.utils.mathx import ceil_div

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.specs import MachineSpec

__all__ = [
    "sunway_topology",
    "sunway_network",
    "flat_topology",
    "flat_network",
    "two_level_topology",
    "cabinet_topology",
    "CABINET_LINK",
    "ClusterPreset",
    "CLUSTER_PRESETS",
    "cluster_preset",
]

#: Nodes per Sunway supernode.
SUPERNODE_SIZE = 256

#: Intra-supernode electrical link: low latency, full bisection.
INTRA_SUPERNODE_LINK = LinkSpec(latency=1.0e-6, bandwidth=16e9, oversubscription=1.0)

#: Inter-supernode optical fat-tree: higher latency, 4:1 taper.
INTER_SUPERNODE_LINK = LinkSpec(latency=7.0e-6, bandwidth=16e9, oversubscription=4.0)


def sunway_topology(num_nodes: int, supernode_size: int = SUPERNODE_SIZE) -> Topology:
    """A Sunway-like two-level topology covering ``num_nodes`` leaf nodes.

    When ``num_nodes`` fits in one supernode the machine is a single flat
    level; otherwise nodes are grouped into ``supernode_size``-node
    supernodes joined by the tapered inter-supernode fabric.
    """
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
    if supernode_size < 1:
        raise TopologyError(f"supernode_size must be >= 1, got {supernode_size}")
    if num_nodes <= supernode_size:
        return Topology([Level("node", num_nodes, INTRA_SUPERNODE_LINK)])
    num_supernodes = ceil_div(num_nodes, supernode_size)
    return Topology(
        [
            Level("node", supernode_size, INTRA_SUPERNODE_LINK),
            Level("supernode", num_supernodes, INTER_SUPERNODE_LINK),
        ]
    )


def sunway_network(
    num_nodes: int,
    supernode_size: int = SUPERNODE_SIZE,
    policy: AlgorithmPolicy | None = None,
) -> NetworkModel:
    """NetworkModel over :func:`sunway_topology`."""
    return NetworkModel(
        topology=sunway_topology(num_nodes, supernode_size),
        policy=policy or AlgorithmPolicy(),
    )


def flat_topology(
    num_nodes: int,
    latency: float = 2.0e-6,
    bandwidth: float = 12.5e9,
    oversubscription: float = 1.0,
) -> Topology:
    """A single-level, uniform cluster (the non-topology-aware baseline)."""
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
    link = LinkSpec(latency=latency, bandwidth=bandwidth, oversubscription=oversubscription)
    return Topology([Level("node", num_nodes, link)])


def flat_network(
    num_nodes: int,
    latency: float = 2.0e-6,
    bandwidth: float = 12.5e9,
    policy: AlgorithmPolicy | None = None,
) -> NetworkModel:
    """NetworkModel over :func:`flat_topology`."""
    return NetworkModel(
        topology=flat_topology(num_nodes, latency=latency, bandwidth=bandwidth),
        policy=policy or AlgorithmPolicy(),
    )


#: Inter-cabinet optical trunks: longest latency, strongest taper.
CABINET_LINK = LinkSpec(latency=12.0e-6, bandwidth=16e9, oversubscription=8.0)


def cabinet_topology(
    nodes_per_supernode: int = SUPERNODE_SIZE,
    supernodes_per_cabinet: int = 4,
    num_cabinets: int = 4,
    intra: LinkSpec | None = None,
    inter: LinkSpec | None = None,
    trunk: LinkSpec | None = None,
) -> Topology:
    """Three-level machine: node -> supernode -> cabinet.

    Models the full physical hierarchy of a Sunway-class installation;
    the generic collective cost functions handle any depth, and the
    hierarchical algorithms group at the level just below the span.
    """
    if min(nodes_per_supernode, supernodes_per_cabinet, num_cabinets) < 1:
        raise TopologyError("all cabinet_topology arities must be >= 1")
    return Topology(
        [
            Level("node", nodes_per_supernode, intra or INTRA_SUPERNODE_LINK),
            Level("supernode", supernodes_per_cabinet, inter or INTER_SUPERNODE_LINK),
            Level("cabinet", num_cabinets, trunk or CABINET_LINK),
        ]
    )


def two_level_topology(
    group_size: int,
    num_groups: int,
    intra: LinkSpec | None = None,
    inter: LinkSpec | None = None,
) -> Topology:
    """Explicit two-level topology for tests and ablations."""
    if group_size < 1 or num_groups < 1:
        raise TopologyError("group_size and num_groups must be >= 1")
    return Topology(
        [
            Level("node", group_size, intra or INTRA_SUPERNODE_LINK),
            Level("group", num_groups, inter or INTER_SUPERNODE_LINK),
        ]
    )


# ---------------------------------------------------------------------- #
# Cluster presets: one shared (network, machine) table
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ClusterPreset:
    """One named cluster: how to build its network and machine models.

    The single source of (network builder, machine builder) pairs shared by
    the perf sweeps, the layout planner, and the CLI — replacing the
    per-module hardcoded default builders that used to drift.
    """

    name: str
    description: str
    #: ``num_nodes -> NetworkModel`` for the interconnect cost model.
    network: Callable[[int], NetworkModel]
    #: ``num_nodes -> MachineSpec`` for the node compute/memory model.
    machine: "Callable[[int], MachineSpec]"


def _sunway_machine(num_nodes: int) -> "MachineSpec":
    from repro.hardware.specs import sunway_machine

    return sunway_machine(num_nodes)


def _laptop_machine(num_nodes: int) -> "MachineSpec":
    from repro.hardware.specs import laptop_machine

    return laptop_machine(num_nodes)


def _toy_network(num_nodes: int) -> NetworkModel:
    # Four-node supernodes keep the hierarchy visible at test-sized worlds.
    return sunway_network(num_nodes, supernode_size=4)


#: The shared preset table (keys are the CLI ``--cluster`` choices).
CLUSTER_PRESETS: dict[str, ClusterPreset] = {
    "sunway": ClusterPreset(
        name="sunway",
        description="Sunway-like machine: 256-node supernodes over a "
                    "tapered optical fat-tree, SW26010-Pro-class nodes",
        network=sunway_network,
        machine=_sunway_machine,
    ),
    "flat": ClusterPreset(
        name="flat",
        description="Uniform single-level cluster (the non-topology-aware "
                    "baseline) with Sunway-class nodes",
        network=flat_network,
        machine=_sunway_machine,
    ),
    "toy": ClusterPreset(
        name="toy",
        description="Test-scale cluster: laptop-class nodes on 4-node "
                    "supernodes — compute-dominated, so measured virtual "
                    "step times track the analytic model closely",
        network=_toy_network,
        machine=_laptop_machine,
    ),
}


def cluster_preset(name: str) -> ClusterPreset:
    """Look up a preset by name; raises with the known names on a miss."""
    try:
        return CLUSTER_PRESETS[name]
    except KeyError:
        raise TopologyError(
            f"unknown cluster preset {name!r}; known: {sorted(CLUSTER_PRESETS)}"
        ) from None
