"""Hierarchical machine topology.

The New Generation Sunway interconnect is modelled as a tree of levels:
nodes live in *supernodes* (256 nodes each, fully connected by fast
electrical links), supernodes are joined by a tapered optical fat-tree.
We represent the machine as an ordered list of :class:`Level` objects,
innermost first; a node id maps to mixed-radix coordinates over the level
arities, and the cost of communication between two nodes is governed by the
outermost level whose coordinate differs (the *span level*).

This abstraction also covers flat clusters (a single level) and arbitrary
multi-level hierarchies used in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import TopologyError
from repro.network.links import LinkSpec

__all__ = ["Level", "Topology"]


@dataclass(frozen=True)
class Level:
    """One level of the topology tree.

    Parameters
    ----------
    name:
        Human-readable label ("node", "supernode", "cabinet"...).
    arity:
        How many children of the previous level fit in one unit of this
        level. The innermost level's arity is the number of leaf nodes per
        first-level group.
    link:
        The link traversed by traffic that crosses between siblings at this
        level (i.e. whose span level is this one).
    """

    name: str
    arity: int
    link: LinkSpec

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise TopologyError(f"level {self.name!r} arity must be >= 1, got {self.arity}")


class Topology:
    """A tree-structured machine of ``prod(arities)`` leaf nodes."""

    def __init__(self, levels: Sequence[Level]):
        if not levels:
            raise TopologyError("topology needs at least one level")
        self._levels = tuple(levels)
        n = 1
        for lv in self._levels:
            n *= lv.arity
        self._num_nodes = n

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def levels(self) -> tuple[Level, ...]:
        """Levels innermost-first."""
        return self._levels

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def num_nodes(self) -> int:
        """Total number of leaf nodes in the machine."""
        return self._num_nodes

    def level_named(self, name: str) -> int:
        """Index of the level called ``name``."""
        for i, lv in enumerate(self._levels):
            if lv.name == name:
                return i
        raise TopologyError(f"no level named {name!r}")

    def group_size(self, level: int) -> int:
        """Number of leaf nodes contained in one unit at ``level``.

        ``group_size(0)`` is ``levels[0].arity``; the top level contains the
        whole machine.
        """
        self._check_level(level)
        n = 1
        for lv in self._levels[: level + 1]:
            n *= lv.arity
        return n

    def num_groups(self, level: int) -> int:
        """Number of units at ``level`` across the whole machine."""
        return self._num_nodes // self.group_size(level)

    # ------------------------------------------------------------------ #
    # Coordinates
    # ------------------------------------------------------------------ #

    def coords(self, node: int) -> tuple[int, ...]:
        """Mixed-radix coordinates of ``node``, innermost digit first."""
        self._check_node(node)
        out = []
        rest = node
        for lv in self._levels:
            out.append(rest % lv.arity)
            rest //= lv.arity
        return tuple(out)

    def node_at(self, coords: Iterable[int]) -> int:
        """Inverse of :meth:`coords`."""
        coords = tuple(coords)
        if len(coords) != len(self._levels):
            raise TopologyError(
                f"expected {len(self._levels)} coordinates, got {len(coords)}"
            )
        node = 0
        stride = 1
        for digit, lv in zip(coords, self._levels):
            if not 0 <= digit < lv.arity:
                raise TopologyError(
                    f"coordinate {digit} out of range for level {lv.name!r}"
                )
            node += digit * stride
            stride *= lv.arity
        return node

    def group_of(self, node: int, level: int) -> int:
        """Index of the ``level``-unit containing ``node``."""
        self._check_node(node)
        self._check_level(level)
        return node // self.group_size(level)

    # ------------------------------------------------------------------ #
    # Span / links
    # ------------------------------------------------------------------ #

    def span_level(self, a: int, b: int) -> int:
        """Outermost level whose coordinate differs between nodes a and b.

        Returns ``-1`` when ``a == b`` (no network traversal needed).
        """
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return -1
        ca, cb = self.coords(a), self.coords(b)
        span = 0
        for i in range(len(self._levels) - 1, -1, -1):
            if ca[i] != cb[i]:
                span = i
                break
        return span

    def span_level_of(self, nodes: Sequence[int]) -> int:
        """Outermost level any pair in ``nodes`` must cross (-1 if <=1 node)."""
        nodes = list(nodes)
        if len(nodes) <= 1:
            return -1
        lo = min(nodes)
        span = -1
        for n in nodes[1:] if nodes[0] == lo else nodes:
            span = max(span, self.span_level(lo, n))
        return span

    def link_at(self, level: int) -> LinkSpec:
        """Link spec traversed by traffic spanning ``level``."""
        self._check_level(level)
        return self._levels[level].link

    def link_between(self, a: int, b: int) -> LinkSpec | None:
        """Link used between two nodes, or None for a == b."""
        span = self.span_level(a, b)
        if span < 0:
            return None
        return self._levels[span].link

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise TopologyError(
                f"node id {node} out of range [0, {self._num_nodes})"
            )

    def _check_level(self, level: int) -> None:
        if not 0 <= level < len(self._levels):
            raise TopologyError(
                f"level {level} out of range [0, {len(self._levels)})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = " > ".join(f"{lv.name}x{lv.arity}" for lv in reversed(self._levels))
        return f"Topology({parts}, nodes={self._num_nodes})"
