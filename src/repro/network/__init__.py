"""Interconnect topology and analytic communication cost models."""

from repro.network.links import LinkSpec
from repro.network.topology import Level, Topology
from repro.network.costmodel import AlgorithmPolicy, NetworkModel
from repro.network.presets import (
    CABINET_LINK,
    CLUSTER_PRESETS,
    INTER_SUPERNODE_LINK,
    INTRA_SUPERNODE_LINK,
    SUPERNODE_SIZE,
    ClusterPreset,
    cabinet_topology,
    cluster_preset,
    flat_network,
    flat_topology,
    sunway_network,
    sunway_topology,
    two_level_topology,
)

__all__ = [
    "LinkSpec",
    "Level",
    "Topology",
    "AlgorithmPolicy",
    "NetworkModel",
    "SUPERNODE_SIZE",
    "INTRA_SUPERNODE_LINK",
    "INTER_SUPERNODE_LINK",
    "CABINET_LINK",
    "ClusterPreset",
    "CLUSTER_PRESETS",
    "cluster_preset",
    "cabinet_topology",
    "flat_network",
    "flat_topology",
    "sunway_network",
    "sunway_topology",
    "two_level_topology",
]
