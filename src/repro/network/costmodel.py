"""The :class:`NetworkModel` facade used by the simulated MPI layer.

It binds a :class:`~repro.network.topology.Topology` to an algorithm policy
and answers "how long does this operation take over these nodes". The
simulated MPI layer advances each rank's virtual clock by these times, so a
program written against :mod:`repro.simmpi` is simultaneously functionally
correct *and* produces topology-aware timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.network import collectives as C
from repro.network.topology import Topology

__all__ = ["AlgorithmPolicy", "NetworkModel"]

_ALLREDUCE_ALGOS = ("ring", "tree", "hierarchical", "auto")
_ALLTOALL_ALGOS = ("flat", "hierarchical", "auto")


@dataclass(frozen=True)
class AlgorithmPolicy:
    """Which collective algorithm the runtime picks for each operation."""

    allreduce: str = "auto"
    alltoall: str = "auto"

    def __post_init__(self) -> None:
        if self.allreduce not in _ALLREDUCE_ALGOS:
            raise ConfigError(
                f"allreduce algorithm must be one of {_ALLREDUCE_ALGOS}, "
                f"got {self.allreduce!r}"
            )
        if self.alltoall not in _ALLTOALL_ALGOS:
            raise ConfigError(
                f"alltoall algorithm must be one of {_ALLTOALL_ALGOS}, "
                f"got {self.alltoall!r}"
            )


@dataclass
class NetworkModel:
    """Topology + algorithm policy -> operation timing.

    Parameters
    ----------
    topology:
        The machine interconnect.
    policy:
        Algorithm selection; "auto" picks the cheaper analytic estimate.
    node_of_rank:
        Optional mapping from MPI rank to leaf-node id. Defaults to
        ``rank % num_nodes`` (dense packing).
    """

    topology: Topology
    policy: AlgorithmPolicy = field(default_factory=AlgorithmPolicy)
    node_of_rank: Callable[[int], int] | None = None

    def node(self, rank: int) -> int:
        """Leaf node hosting ``rank``."""
        if self.node_of_rank is not None:
            return self.node_of_rank(rank)
        return rank % self.topology.num_nodes

    def _nodes(self, ranks: Sequence[int]) -> list[int]:
        return [self.node(r) for r in ranks]

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #

    def p2p_time(self, nbytes: float, src_rank: int, dst_rank: int) -> float:
        """Time for one message between two ranks."""
        return C.cost_p2p(self.topology, nbytes, self.node(src_rank), self.node(dst_rank))

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #

    def barrier_time(self, ranks: Sequence[int]) -> float:
        return C.cost_barrier(self.topology, self._nodes(ranks))

    def bcast_time(self, nbytes: float, ranks: Sequence[int]) -> float:
        return C.cost_bcast(self.topology, nbytes, self._nodes(ranks))

    def allreduce_time(
        self, nbytes: float, ranks: Sequence[int], algorithm: str | None = None
    ) -> float:
        """Allreduce of an ``nbytes`` buffer over ``ranks``."""
        nodes = self._nodes(ranks)
        algo = algorithm or self.policy.allreduce
        if algo == "ring":
            return C.cost_ring_allreduce(self.topology, nbytes, nodes)
        if algo == "tree":
            return C.cost_tree_allreduce(self.topology, nbytes, nodes)
        if algo == "hierarchical":
            return C.cost_hierarchical_allreduce(self.topology, nbytes, nodes)
        # auto: take the best of the three estimates, as a tuned MPI would.
        return min(
            C.cost_ring_allreduce(self.topology, nbytes, nodes),
            C.cost_tree_allreduce(self.topology, nbytes, nodes),
            C.cost_hierarchical_allreduce(self.topology, nbytes, nodes),
        )

    def reduce_time(self, nbytes: float, ranks: Sequence[int]) -> float:
        # Reduce-to-root is roughly half an allreduce; use a gather-tree.
        return C.cost_gather(self.topology, nbytes, self._nodes(ranks))

    def reduce_scatter_time(self, nbytes: float, ranks: Sequence[int]) -> float:
        return C.cost_reduce_scatter(self.topology, nbytes, self._nodes(ranks))

    def allgather_time(self, nbytes_per_rank: float, ranks: Sequence[int]) -> float:
        return C.cost_allgather(self.topology, nbytes_per_rank, self._nodes(ranks))

    def gather_time(self, nbytes_per_rank: float, ranks: Sequence[int]) -> float:
        return C.cost_gather(self.topology, nbytes_per_rank, self._nodes(ranks))

    def scatter_time(self, nbytes_per_rank: float, ranks: Sequence[int]) -> float:
        return C.cost_scatter(self.topology, nbytes_per_rank, self._nodes(ranks))

    def alltoall_time(
        self,
        nbytes_per_pair: float,
        ranks: Sequence[int],
        algorithm: str | None = None,
    ) -> float:
        """Alltoall with a uniform per-pair payload."""
        nodes = self._nodes(ranks)
        algo = algorithm or self.policy.alltoall
        if algo == "flat":
            return C.cost_flat_alltoall(self.topology, nbytes_per_pair, nodes)
        if algo == "hierarchical":
            return C.cost_hierarchical_alltoall(self.topology, nbytes_per_pair, nodes)
        return min(
            C.cost_flat_alltoall(self.topology, nbytes_per_pair, nodes),
            C.cost_hierarchical_alltoall(self.topology, nbytes_per_pair, nodes),
        )

    def alltoallv_time(
        self,
        pair_bytes: Sequence[Sequence[float]],
        ranks: Sequence[int],
        algorithm: str | None = None,
    ) -> float:
        """Alltoall with a per-(src,dst) byte matrix; uses the max pair size.

        A full per-pair simulation is unnecessary for the shapes we study:
        the skewed-load effects are modelled at the MoE dispatch layer, and
        the network sees the bounding uniform alltoall.
        """
        worst = 0.0
        for row in pair_bytes:
            for v in row:
                worst = max(worst, float(v))
        return self.alltoall_time(worst, ranks, algorithm=algorithm)
