"""Link specifications for the hierarchical interconnect model.

A link is described by the classic alpha-beta model: a fixed per-message
latency (alpha, seconds) plus a per-byte cost (beta = 1/bandwidth). An
``oversubscription`` factor models bisection-bandwidth taper: traffic that
crosses the link concurrently from many nodes sees the bandwidth divided by
that factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["LinkSpec"]


@dataclass(frozen=True)
class LinkSpec:
    """One level of the interconnect hierarchy.

    Parameters
    ----------
    latency:
        One-way message startup cost in seconds (the alpha term).
    bandwidth:
        Point-to-point bandwidth in bytes/second (1/beta).
    oversubscription:
        Taper factor >= 1. When ``n`` nodes simultaneously push traffic
        across this level, each sees ``bandwidth / oversubscription``.
        1.0 means full bisection bandwidth.
    """

    latency: float
    bandwidth: float
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigError(f"link latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ConfigError(f"link bandwidth must be > 0, got {self.bandwidth}")
        if self.oversubscription < 1.0:
            raise ConfigError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )

    @property
    def beta(self) -> float:
        """Per-byte transfer cost in seconds (uncontended)."""
        return 1.0 / self.bandwidth

    @property
    def effective_bandwidth(self) -> float:
        """Bandwidth available under full contention at this level."""
        return self.bandwidth / self.oversubscription

    @property
    def effective_beta(self) -> float:
        """Per-byte cost under full contention at this level."""
        return self.oversubscription / self.bandwidth

    def transfer_time(self, nbytes: float, contended: bool = False) -> float:
        """Time to move ``nbytes`` across this link in one message."""
        if nbytes < 0:
            raise ConfigError(f"nbytes must be >= 0, got {nbytes}")
        beta = self.effective_beta if contended else self.beta
        return self.latency + nbytes * beta

    def scaled(self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0) -> "LinkSpec":
        """Return a copy with latency/bandwidth multiplied by the factors."""
        return LinkSpec(
            latency=self.latency * latency_factor,
            bandwidth=self.bandwidth * bandwidth_factor,
            oversubscription=self.oversubscription,
        )
