"""Synthetic pretraining corpus.

Substitutes the paper's proprietary 1.8 TB multimodal corpus with a
Zipf-distributed Markov token stream:

* unigram frequencies follow Zipf's law (like natural text), which is what
  skews content-based MoE routing — the effect the load-balance
  experiments need;
* a hidden first-order structure (each token's successor is drawn from a
  per-token distribution) makes the stream *learnable*, so training loss
  decreases and convergence experiments are meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.seeding import derive_seed

__all__ = ["SyntheticCorpus"]


class SyntheticCorpus:
    """Deterministic synthetic token stream.

    Parameters
    ----------
    vocab_size:
        Number of distinct tokens.
    zipf_alpha:
        Zipf exponent of the stationary distribution (~1.0 for text).
    predictability:
        Probability that the next token follows the hidden per-token
        successor table instead of being sampled from the Zipf marginal.
        0 = i.i.d. noise (irreducible loss = entropy of the marginal);
        higher = more learnable structure.
    seed:
        Base seed; all sampling derives from it.
    """

    def __init__(
        self,
        vocab_size: int = 1024,
        zipf_alpha: float = 1.1,
        predictability: float = 0.7,
        seed: int = 0,
        num_domains: int = 1,
    ):
        if vocab_size < 2:
            raise ConfigError(f"vocab_size must be >= 2, got {vocab_size}")
        if zipf_alpha <= 0:
            raise ConfigError(f"zipf_alpha must be > 0, got {zipf_alpha}")
        if not 0.0 <= predictability <= 1.0:
            raise ConfigError(f"predictability must be in [0,1], got {predictability}")
        if num_domains < 1:
            raise ConfigError(f"num_domains must be >= 1, got {num_domains}")
        self.vocab_size = vocab_size
        self.zipf_alpha = zipf_alpha
        self.predictability = predictability
        self.seed = seed
        self.num_domains = num_domains

        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        probs = ranks**-zipf_alpha
        self.marginal = probs / probs.sum()

        # Hidden successor tables: one fixed random permutation per
        # *domain* (a crude stand-in for the paper's multimodal corpus
        # mixture: each stream follows one domain's transition rule, so a
        # model needs capacity for all of them — the regime where MoE
        # experts can specialize).
        self.successors = np.stack(
            [
                np.random.default_rng(derive_seed(seed, "succ-table", d)).permutation(
                    vocab_size
                )
                for d in range(num_domains)
            ]
        )

    @property
    def successor(self) -> np.ndarray:
        """Domain-0 successor table (backward-compatible accessor)."""
        return self.successors[0]

    def domain_of_stream(self, stream: int) -> int:
        """Which domain a stream id follows (stable hash)."""
        return derive_seed(self.seed, "domain", stream) % self.num_domains

    def sample(self, num_tokens: int, stream: int = 0) -> np.ndarray:
        """A deterministic token array of length ``num_tokens``.

        Different ``stream`` values give independent (but reproducible)
        slices of the corpus — used to shard across data-parallel ranks.
        """
        if num_tokens < 1:
            raise ConfigError(f"num_tokens must be >= 1, got {num_tokens}")
        rng = np.random.default_rng(derive_seed(self.seed, "sample", stream))
        table = self.successors[self.domain_of_stream(stream)]
        out = np.empty(num_tokens, dtype=np.int64)
        out[0] = rng.choice(self.vocab_size, p=self.marginal)
        follow = rng.random(num_tokens) < self.predictability
        noise = rng.choice(self.vocab_size, size=num_tokens, p=self.marginal)
        for i in range(1, num_tokens):
            out[i] = table[out[i - 1]] if follow[i] else noise[i]
        return out

    def batch(
        self, batch_size: int, seq_len: int, stream: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """(tokens, targets) arrays of shape (batch_size, seq_len).

        Targets are the next-token shift of the same stream.
        """
        flat = self.sample(batch_size * (seq_len + 1), stream=stream)
        block = flat[: batch_size * (seq_len + 1)].reshape(batch_size, seq_len + 1)
        return block[:, :-1].copy(), block[:, 1:].copy()

    def entropy_bits(self) -> float:
        """Shannon entropy of the marginal (context-free loss floor, bits)."""
        p = self.marginal
        return float(-(p * np.log2(p)).sum())
