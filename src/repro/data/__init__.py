"""Synthetic corpus and sharded data loading."""

from repro.data.corpus import SyntheticCorpus
from repro.data.loader import Batch, ShardedLoader

__all__ = ["SyntheticCorpus", "Batch", "ShardedLoader"]
