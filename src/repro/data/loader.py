"""Sharded, deterministic data loading for data-parallel training.

Every data-parallel rank must see a *disjoint* slice of the stream each
step, and a run must be reproducible regardless of world size mapping —
so the shard stream id is a pure function of (seed, step, dp_rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.corpus import SyntheticCorpus
from repro.errors import PartitionError

__all__ = ["Batch", "ShardedLoader"]


@dataclass(frozen=True)
class Batch:
    """One training microbatch."""

    tokens: np.ndarray
    targets: np.ndarray
    step: int

    @property
    def num_tokens(self) -> int:
        return int(self.tokens.size)


class ShardedLoader:
    """Per-rank view of a :class:`SyntheticCorpus`.

    Parameters
    ----------
    corpus:
        The shared corpus definition (same object/config on every rank).
    batch_size / seq_len:
        Microbatch shape delivered to *this rank*.
    dp_rank / dp_size:
        This rank's position in the data-parallel group. Rank r at step s
        reads stream ``s * dp_size + r`` — disjoint across ranks, exhaustive
        across steps.
    """

    def __init__(
        self,
        corpus: SyntheticCorpus,
        batch_size: int,
        seq_len: int,
        dp_rank: int = 0,
        dp_size: int = 1,
    ):
        if dp_size < 1 or not 0 <= dp_rank < dp_size:
            raise PartitionError(
                f"invalid data-parallel coordinates rank={dp_rank} size={dp_size}"
            )
        if batch_size < 1 or seq_len < 1:
            raise PartitionError("batch_size and seq_len must be >= 1")
        self.corpus = corpus
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.dp_rank = dp_rank
        self.dp_size = dp_size

    def get_batch(self, step: int) -> Batch:
        """The batch this rank consumes at ``step`` (pure function)."""
        if step < 0:
            raise PartitionError(f"step must be >= 0, got {step}")
        stream = step * self.dp_size + self.dp_rank
        tokens, targets = self.corpus.batch(self.batch_size, self.seq_len, stream=stream)
        return Batch(tokens=tokens, targets=targets, step=step)

    def iter_batches(self, num_steps: int, start_step: int = 0) -> Iterator[Batch]:
        """Yield ``num_steps`` consecutive batches starting at ``start_step``."""
        for s in range(start_step, start_step + num_steps):
            yield self.get_batch(s)

    @property
    def global_batch_tokens(self) -> int:
        """Tokens consumed per step across the whole data-parallel group."""
        return self.batch_size * self.seq_len * self.dp_size
