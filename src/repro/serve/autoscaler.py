"""Metric-driven replica autoscaler for the serving fleet.

Closes the loop the ROADMAP asks for: the windowed signals the fleet
already measures (premium TTFT p95, backlog depth) drive the number of
live replicas. The policy is deliberately boring — threshold + hysteresis
+ cooldown, the shape every production autoscaler converges to — because
the interesting part here is the *plumbing*: decisions are made on the
virtual clock from deterministic windowed signals, so an autoscaled run
is exactly as reproducible as a fixed-size one.

Policy, evaluated once per dispatch round at virtual time ``now``:

- **scale up** when the trailing-window p95 of the protected tier's TTFT
  exceeds ``ttft_slo_s * scale_up_frac``, or the backlog per live
  replica exceeds ``queue_high`` — capacity is added *before* the SLO
  monitor starts paging, one replica at a time;
- **scale down** when p95 sits under ``ttft_slo_s * scale_down_frac``
  *and* the backlog per replica is below ``queue_low`` — the wide
  hysteresis band prevents flapping;
- both are gated by ``cooldown_s`` of virtual time since the last
  decision, and clamped to ``[min_replicas, max_replicas]``.

The mechanism half lives in :func:`repro.serve.fleet.run_fleet_serving`:
scale-up spawns a fresh replica world (visible after ``spawn_delay_s``
of provisioning), scale-down drains the highest-index idle replica.
Every decision is recorded as a lifecycle event, an ``autoscale`` span,
and a labeled counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError
from repro.obs.timeseries import SlidingWindow

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Declarative autoscaling policy (all times virtual)."""

    min_replicas: int = 1
    max_replicas: int = 4
    #: TTFT objective for the protected tier, in virtual seconds.
    ttft_slo_s: float = 0.5
    #: SLO class the TTFT signal is computed over (0 = premium).
    tier: int = 0
    #: Width of the trailing signal window, in virtual seconds.
    signal_window_s: float = 30.0
    #: Scale up when windowed p95 exceeds slo * this fraction.
    scale_up_frac: float = 0.9
    #: Scale down only when windowed p95 is under slo * this fraction.
    scale_down_frac: float = 0.4
    #: Scale up when backlog per live replica exceeds this.
    queue_high: float = 8.0
    #: Scale down only when backlog per live replica is under this.
    queue_low: float = 1.0
    #: Minimum virtual seconds between scale decisions.
    cooldown_s: float = 20.0
    #: Provisioning delay before a spawned replica can serve.
    spawn_delay_s: float = 5.0
    #: Fewest windowed TTFT samples before p95 is trusted.
    min_samples: int = 4
    #: Dispatch-loop horizon: the fleet assigns work at most this far
    #: ahead per round, so scale decisions interleave with dispatch.
    dispatch_window_s: float = 10.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ConfigError(
                f"max_replicas ({self.max_replicas}) must be >= min_replicas "
                f"({self.min_replicas})"
            )
        if self.ttft_slo_s <= 0:
            raise ConfigError(f"ttft_slo_s must be > 0, got {self.ttft_slo_s}")
        if self.tier < 0:
            raise ConfigError(f"tier must be >= 0, got {self.tier}")
        if self.signal_window_s <= 0:
            raise ConfigError(
                f"signal_window_s must be > 0, got {self.signal_window_s}"
            )
        if not 0 < self.scale_down_frac < self.scale_up_frac:
            raise ConfigError(
                f"need 0 < scale_down_frac < scale_up_frac, got "
                f"{self.scale_down_frac} / {self.scale_up_frac}"
            )
        if self.queue_low >= self.queue_high:
            raise ConfigError(
                f"queue_low ({self.queue_low}) must be < queue_high "
                f"({self.queue_high})"
            )
        if self.cooldown_s < 0:
            raise ConfigError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.spawn_delay_s < 0:
            raise ConfigError(
                f"spawn_delay_s must be >= 0, got {self.spawn_delay_s}"
            )
        if self.min_samples < 1:
            raise ConfigError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.dispatch_window_s <= 0:
            raise ConfigError(
                f"dispatch_window_s must be > 0, got {self.dispatch_window_s}"
            )


class Autoscaler:
    """Online policy evaluation over windowed fleet signals."""

    def __init__(self, config: AutoscalerConfig):
        self.config = config
        self._ttft = SlidingWindow(config.signal_window_s)
        self._last_decision_t = float("-inf")
        #: Every non-hold decision, in virtual-time order.
        self.decisions: list[dict[str, Any]] = []

    def observe_ttft(self, t: float, ttft_s: float, tier: int) -> None:
        """Feed one completed first token (only the protected tier counts)."""
        if tier == self.config.tier:
            self._ttft.observe(t, ttft_s)

    def decide(self, now: float, active: int, backlog: int) -> dict[str, Any]:
        """Evaluate the policy at ``now`` with ``active`` live replicas.

        Returns a decision record: ``action`` (``up`` / ``down`` /
        ``hold``), the signals it saw, and a human-readable ``reason``.
        Non-hold decisions start the cooldown and are appended to
        :attr:`decisions`.
        """
        cfg = self.config
        n = self._ttft.count(now)
        p95 = self._ttft.quantile(95, now)
        per_replica = backlog / active if active else float("inf")
        decision: dict[str, Any] = {
            "t": now,
            "action": "hold",
            "active": active,
            "backlog": backlog,
            "ttft_p95": p95,
            "ttft_samples": n,
            "reason": "steady",
        }
        if now - self._last_decision_t < cfg.cooldown_s:
            decision["reason"] = "cooldown"
            return decision
        p95_high = n >= cfg.min_samples and p95 > cfg.ttft_slo_s * cfg.scale_up_frac
        queue_high = per_replica > cfg.queue_high
        if (p95_high or queue_high) and active < cfg.max_replicas:
            decision["action"] = "up"
            decision["reason"] = (
                f"ttft_p95 {p95:.4g}s > {cfg.ttft_slo_s * cfg.scale_up_frac:.4g}s"
                if p95_high
                else f"backlog/replica {per_replica:.4g} > {cfg.queue_high:g}"
            )
        elif (
            active > cfg.min_replicas
            and per_replica < cfg.queue_low
            and (n == 0 or p95 < cfg.ttft_slo_s * cfg.scale_down_frac)
        ):
            decision["action"] = "down"
            decision["reason"] = (
                f"ttft_p95 {p95:.4g}s < "
                f"{cfg.ttft_slo_s * cfg.scale_down_frac:.4g}s and "
                f"backlog/replica {per_replica:.4g} < {cfg.queue_low:g}"
            )
        if decision["action"] != "hold":
            self._last_decision_t = now
            self.decisions.append(decision)
        return decision

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Autoscaler({self.config.min_replicas}.."
            f"{self.config.max_replicas} replicas, "
            f"{len(self.decisions)} decisions)"
        )
