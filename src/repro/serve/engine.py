"""Expert-parallel decode engine: continuous batching on simulated ranks.

Each EP rank owns a shard of every MoE layer's experts (the training
layout) and a shard of the request stream (round-robin). One engine
iteration runs a *single* mixed forward per rank — freshly admitted
requests contribute their whole prompt (prefill) while running requests
contribute one token (decode), padded into a ragged batch over the shared
:class:`~repro.serve.kvcache.KVCache`. Because collectives come only from
:class:`~repro.parallel.ep.DistributedMoELayer`, every rank executes an
identical collective sequence per iteration regardless of how many
requests it has in flight (idle ranks run a one-token dummy forward), so
the SPMD program never deadlocks.

Time is the simmpi virtual clock: alltoall/allreduce cost comes from the
network model, dense/expert compute from :class:`DecodeTimer` (the
forward-only sibling of :class:`~repro.perf.stepmodel.ComputeTimer`), and
arrivals/SLOs/latency histograms all live on the same axis, measured
through the :class:`~repro.simmpi.RunContext` spine training runs use.

The sequential baseline (:func:`run_sequential_baseline`) serves the same
workload FIFO depth-1 per rank with full uncached re-forwards per token —
exactly what looping :func:`repro.models.generate` (``use_cache=False``)
over the requests would do on the same EP world.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.hardware.specs import MachineSpec, sunway_machine
from repro.models.configs import ModelConfig
from repro.models.transformer import MoELanguageModel
from repro.network import sunway_network
from repro.parallel.ep import DistributedMoELayer
from repro.perf.flops import forward_flops_per_token
from repro.serve.kvcache import KVCache
from repro.serve.scheduler import ContinuousBatchScheduler, Request
from repro.simmpi import MIN, Comm, run_spmd
from repro.tensor import no_grad
from repro.train.metrics import LatencyStats
from repro.utils.seeding import derive_seed

__all__ = [
    "DecodeTimer",
    "ServeConfig",
    "ServeResult",
    "build_requests",
    "run_sequential_baseline",
    "run_serving",
]


@dataclass(frozen=True)
class ServeConfig:
    """Everything one serving run needs (mirrors ``TrainingRunConfig``).

    ``arrival_rate`` is requests per *virtual* second (None: all requests
    arrive at t=0); ``slo_ms`` is a per-request completion deadline in
    virtual milliseconds (None: no eviction). ``batching`` selects the
    engine: ``"continuous"`` (KV-cached, join-mid-flight slots) or
    ``"sequential"`` (FIFO depth-1 per rank; with ``use_cache=False`` this
    is the uncached ``generate()`` baseline).
    """

    model: ModelConfig
    ep_size: int = 1
    num_requests: int = 16
    arrival_rate: float | None = None
    #: Piecewise-constant load ramp: ``((t0, rate0), (t1, rate1), ...)``
    #: — from virtual second ``ti`` arrivals draw at ``ratei`` req/s.
    #: Mutually exclusive with ``arrival_rate``; segments must start at
    #: t=0 and be strictly time-ordered. This is how a benchmark
    #: saturates a fixed fleet mid-run (the autoscaler's raison d'être).
    arrival_ramp: tuple[tuple[float, float], ...] | None = None
    prompt_len: int = 8
    prompt_len_max: int | None = None
    max_new_tokens: int = 16
    max_batch_size: int = 8
    slo_ms: float | None = None
    batching: str = "continuous"
    use_cache: bool = True
    greedy: bool = True
    temperature: float = 1.0
    seed: int = 0
    expert_capacity: int | None = None
    alltoall_algorithm: str | None = None
    kv_block: int = 8
    #: Chunked async expert dispatch width for decode alltoalls (>1
    #: pipelines dispatch/combine against expert compute; bit-identical).
    overlap_chunks: int = 1
    model_compute_time: bool = True
    supernode_size: int = 256
    timeout: float = 600.0
    trace: bool = False
    #: Give the run a live metric registry + router telemetry
    #: (``result.context.metrics`` / ``.router``).
    observe: bool = False
    #: SLO classes for the synthetic workload: tier 0 is premium; with
    #: >1 tiers, requests draw a uniform tier from a dedicated rng stream
    #: (the token/arrival streams are untouched, so single-tier workloads
    #: stay bit-identical to historical ones).
    num_tiers: int = 1
    #: Load shedding: arrived requests of tier >= shed_tier are rejected
    #: while the per-rank backlog exceeds ``queue_depth`` (None = never).
    shed_tier: int | None = None
    #: Backlog cap (arrived waiting + active) that triggers shedding;
    #: defaults to ``2 * max_batch_size`` when ``shed_tier`` is set.
    queue_depth: int | None = None
    #: Total committed KV tokens allowed across a rank's cache rows (the
    #: paged pool's memory pressure). When an iteration would overflow it,
    #: the engine evicts the lowest-priority active slot and retries the
    #: admit instead of ferrying a fatal CacheOverflow out of the run.
    kv_token_budget: int | None = None

    def __post_init__(self) -> None:
        if self.ep_size < 1:
            raise ConfigError(f"ep_size must be >= 1, got {self.ep_size}")
        if self.model.num_experts % self.ep_size != 0:
            raise ConfigError(
                f"ep_size={self.ep_size} must divide "
                f"num_experts={self.model.num_experts}"
            )
        if self.num_requests < 1:
            raise ConfigError(
                f"num_requests must be >= 1, got {self.num_requests}"
            )
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.batching not in ("continuous", "sequential"):
            raise ConfigError(
                f"batching must be 'continuous' or 'sequential', "
                f"got {self.batching!r}"
            )
        if self.batching == "continuous" and not self.use_cache:
            raise ConfigError(
                "continuous batching requires use_cache=True (ragged "
                "decode without a KV cache would re-prefill every row "
                "every iteration)"
            )
        if self.prompt_len < 1 or self.max_new_tokens < 1:
            raise ConfigError("prompt_len and max_new_tokens must be >= 1")
        pmax = self.prompt_len_max if self.prompt_len_max is not None else self.prompt_len
        if pmax < self.prompt_len:
            raise ConfigError(
                f"prompt_len_max={pmax} must be >= prompt_len={self.prompt_len}"
            )
        if pmax + self.max_new_tokens > self.model.max_seq_len:
            raise ConfigError(
                f"prompt ({pmax}) + max_new_tokens ({self.max_new_tokens}) "
                f"exceeds max_seq_len={self.model.max_seq_len}; cached rows "
                "never roll over so requests must fit the window"
            )
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ConfigError(
                f"arrival_rate must be > 0 req/s, got {self.arrival_rate}"
            )
        if self.arrival_ramp is not None:
            if self.arrival_rate is not None:
                raise ConfigError(
                    "arrival_rate and arrival_ramp are mutually exclusive"
                )
            if not self.arrival_ramp:
                raise ConfigError("arrival_ramp must have >= 1 segment")
            if self.arrival_ramp[0][0] != 0.0:
                raise ConfigError(
                    f"arrival_ramp must start at t=0, got "
                    f"{self.arrival_ramp[0][0]}"
                )
            for i, (t_seg, rate) in enumerate(self.arrival_ramp):
                if rate <= 0:
                    raise ConfigError(
                        f"arrival_ramp rates must be > 0 req/s, got {rate}"
                    )
                if i > 0 and t_seg <= self.arrival_ramp[i - 1][0]:
                    raise ConfigError(
                        "arrival_ramp segment times must be strictly "
                        f"increasing, got {t_seg} after "
                        f"{self.arrival_ramp[i - 1][0]}"
                    )
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ConfigError(f"slo_ms must be > 0, got {self.slo_ms}")
        if self.temperature <= 0:
            raise ConfigError(f"temperature must be > 0, got {self.temperature}")
        if self.overlap_chunks < 1:
            raise ConfigError(
                f"overlap_chunks must be >= 1, got {self.overlap_chunks}"
            )
        if self.num_tiers < 1:
            raise ConfigError(f"num_tiers must be >= 1, got {self.num_tiers}")
        if self.shed_tier is not None and not 0 <= self.shed_tier < self.num_tiers:
            raise ConfigError(
                f"shed_tier must be in [0, num_tiers={self.num_tiers}), "
                f"got {self.shed_tier}"
            )
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ConfigError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.kv_token_budget is not None:
            per_request = pmax + self.max_new_tokens
            if self.kv_token_budget < per_request:
                raise ConfigError(
                    f"kv_token_budget={self.kv_token_budget} cannot hold even "
                    f"one request ({per_request} tokens); raise the budget or "
                    "shrink prompts"
                )

    @property
    def effective_queue_depth(self) -> int | None:
        """Backlog cap for shedding (default 2x batch when shedding is on)."""
        if self.queue_depth is not None:
            return self.queue_depth
        if self.shed_tier is not None:
            return 2 * self.max_batch_size
        return None


@dataclass
class ServeResult:
    """Aggregated outcome of a serving run.

    ``throughput`` is decoded tokens per virtual second of makespan —
    prefill time included, since a serving system pays it. ``requests``
    holds one flat record per request (see ``Request.record``).
    """

    config: ServeConfig
    completed: int
    evicted: int
    decode_tokens: int
    simulated_time: float
    ttft: LatencyStats
    token_latency: LatencyStats
    requests: list[dict] = field(default_factory=list)
    clocks: list[float] = field(default_factory=list)
    context: Any = None
    meta: dict = field(default_factory=dict)
    #: Requests rejected by admission-control load shedding.
    shed: int = 0
    #: Admission timestamps keyed by rid (virtual seconds; absent for
    #: requests that never reached a slot). Carried out of band so the
    #: per-request ``records`` stay byte-identical to historical output.
    admitted_at: dict[int, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Decoded tokens per virtual second."""
        if self.simulated_time <= 0:
            return 0.0
        return self.decode_tokens / self.simulated_time

    def metrics_record(self) -> dict[str, Any]:
        """One flat summary record for :class:`MetricsLogger`."""
        record = {
            "batching": self.config.batching,
            "use_cache": self.config.use_cache,
            "ep_size": self.config.ep_size,
            "num_requests": self.config.num_requests,
            "completed": self.completed,
            "evicted": self.evicted,
            "shed": self.shed,
            "decode_tokens": self.decode_tokens,
            "simulated_time": self.simulated_time,
            "throughput_tok_s": self.throughput,
        }
        record.update(self.ttft.summary(prefix="ttft_"))
        record.update(self.token_latency.summary(prefix="token_"))
        return record


class DecodeTimer:
    """Forward-only modelled compute time for serving iterations.

    The training :class:`~repro.perf.stepmodel.ComputeTimer` charges
    forward+backward at a fixed sequence length; decode needs forward-only
    cost at *per-row* context lengths (attention over ``ctx + i`` cached
    keys for the i-th new token). Derived from the same
    :func:`~repro.perf.flops.forward_flops_per_token` terms, so measured
    serving and training curves share one cost model.
    """

    def __init__(self, config: ModelConfig, machine: MachineSpec):
        self.config = config
        self.machine = machine
        self._node_flops = (
            machine.node.flops(config.dtype) * machine.compute_efficiency
        )
        expert_fwd = (
            config.top_k * 2.0 * config.ffn_expert_params * config.num_moe_layers
        )
        # Linear dense FLOPs per token (everything except expert MLPs and
        # the attention-score matmuls, which depend on context length).
        self._base = forward_flops_per_token(config, 1) - expert_fwd - (
            config.n_layers * 4.0 * config.d_model
        )
        #: Attention-score FLOPs per (token, attended position) pair.
        self._quad = config.n_layers * 4.0 * config.d_model
        self._expert_fwd_per_row = 2.0 * config.ffn_expert_params

    def dense_time(self, ctx: np.ndarray, valid: np.ndarray) -> float:
        """Dense forward time for a ragged batch.

        Row b feeds ``valid[b]`` new tokens on top of ``ctx[b]`` cached
        ones; its i-th token attends over ``ctx[b] + i + 1`` positions.
        With ``ctx=0`` this is exactly a full prefill/uncached forward.
        """
        v = np.asarray(valid, dtype=np.float64)
        c = np.asarray(ctx, dtype=np.float64)
        flops = float(
            (v * self._base + self._quad * (c * v + v * (v + 1) / 2.0)).sum()
        )
        return flops / self._node_flops

    def expert_time(self, rows: int) -> float:
        """Forward time for ``rows`` routed through one expert shard."""
        return rows * self._expert_fwd_per_row / self._node_flops


def build_requests(cfg: ServeConfig) -> list[Request]:
    """Deterministic synthetic workload from the config seed.

    Poisson arrivals (exponential interarrivals at ``arrival_rate``),
    ragged prompt lengths in [prompt_len, prompt_len_max], uniform random
    prompt tokens. Identical on every rank, so request sharding needs no
    communication.
    """
    rng = np.random.default_rng(derive_seed(cfg.seed, "serve-workload"))
    n = cfg.num_requests
    if cfg.arrival_ramp is not None:
        # Piecewise-constant Poisson: each interarrival draws at the rate
        # active when the previous request landed. One exponential draw
        # per request, same stream consumption as the fixed-rate path.
        ramp = cfg.arrival_ramp
        draws = rng.exponential(1.0, size=n)  # unit-rate; scaled below
        arrivals = np.empty(n)
        t = 0.0
        for i in range(n):
            rate = ramp[0][1]
            for t_seg, seg_rate in ramp:
                if t >= t_seg:
                    rate = seg_rate
            t += draws[i] / rate
            arrivals[i] = t
    elif cfg.arrival_rate is None:
        arrivals = np.zeros(n)
    else:
        arrivals = np.cumsum(rng.exponential(1.0 / cfg.arrival_rate, size=n))
    pmax = cfg.prompt_len_max if cfg.prompt_len_max is not None else cfg.prompt_len
    lens = rng.integers(cfg.prompt_len, pmax + 1, size=n)
    slo = None if cfg.slo_ms is None else cfg.slo_ms / 1e3
    if cfg.num_tiers > 1:
        # Dedicated stream: tiering never perturbs prompts or arrivals.
        tier_rng = np.random.default_rng(derive_seed(cfg.seed, "serve-tiers"))
        tiers = tier_rng.integers(0, cfg.num_tiers, size=n)
    else:
        tiers = np.zeros(n, dtype=np.int64)
    return [
        Request(
            rid=i,
            prompt=rng.integers(0, cfg.model.vocab_size, size=int(lens[i])),
            max_new_tokens=cfg.max_new_tokens,
            arrival=float(arrivals[i]),
            slo=slo,
            tier=int(tiers[i]),
        )
        for i in range(n)
    ]


def _build_serve_model(
    cfg: ServeConfig, comm: Comm, timer: DecodeTimer | None
) -> MoELanguageModel:
    """EP-sharded model in eval mode (mirrors ``build_moda_model``)."""
    model_cfg = cfg.model

    def compute_hook(rows: int) -> None:
        if timer is not None:
            comm.advance(timer.expert_time(rows))

    def moe_factory(layer_idx: int, rng: np.random.Generator) -> DistributedMoELayer:
        return DistributedMoELayer(
            model_cfg.d_model,
            model_cfg.d_ff,
            model_cfg.num_experts,
            ep_comm=comm,
            shared_rng=rng,
            seed=cfg.seed,
            layer_id=layer_idx,
            gate=model_cfg.gate,
            top_k=model_cfg.top_k,
            capacity_factor=model_cfg.capacity_factor,
            aux_weight=model_cfg.aux_weight,
            z_weight=model_cfg.z_weight,
            alltoall_algorithm=cfg.alltoall_algorithm,
            dtype=model_cfg.dtype,
            compute_hook=compute_hook,
            overlap_chunks=cfg.overlap_chunks,
        )

    model = MoELanguageModel(model_cfg, seed=cfg.seed, moe_factory=moe_factory)
    model.eval()
    if cfg.expert_capacity is not None:
        for layer in model.moe_layers():
            layer.inference_capacity = cfg.expert_capacity
    return model


def _sample_token(
    logits: np.ndarray, cfg: ServeConfig, rng: np.random.Generator | None
) -> int:
    logits = logits / cfg.temperature
    if cfg.greedy:
        return int(logits.argmax())
    shifted = logits - logits.max()
    probs = np.exp(shifted)
    probs /= probs.sum()
    return int(rng.choice(probs.size, p=probs))


def _serve_rank(
    comm: Comm,
    cfg: ServeConfig,
    machine: MachineSpec | None,
    requests: list[Request] | None = None,
) -> dict:
    """The SPMD rank program: one scheduler + model + cache per rank."""
    timer = (
        DecodeTimer(cfg.model, machine)
        if machine is not None and cfg.model_compute_time
        else None
    )
    model = _build_serve_model(cfg, comm, timer)
    sched = ContinuousBatchScheduler(
        cfg.max_batch_size if cfg.batching == "continuous" else 1,
        queue_depth=cfg.effective_queue_depth,
        shed_tier=cfg.shed_tier,
    )
    workload = build_requests(cfg) if requests is None else requests
    for i, req in enumerate(workload):
        if i % comm.size == comm.rank:
            sched.submit(req)
    cache = (
        KVCache.for_model(
            model,
            batch_size=sched.max_batch_size,
            capacity=cfg.model.max_seq_len,
            block_size=cfg.kv_block,
            token_budget=cfg.kv_token_budget,
        )
        if cfg.use_cache
        else None
    )
    samplers: dict[int, np.random.Generator] = {}
    token_lat: list[float] = []
    context = comm.context
    dummy = np.zeros((1, 1), dtype=np.int64)
    iteration = 0

    def emit_router(step: int) -> None:
        """Per-iteration router telemetry (rank 0, observing runs only)."""
        if comm.rank != 0 or context is None or context.router is None:
            return
        for layer_idx, m in enumerate(model.moe_layers()):
            load = getattr(m, "last_global_load", None)
            if load is not None:
                context.router.record(
                    step, layer_idx, load,
                    drop_fraction=float(getattr(m, "last_drop_fraction", 0.0) or 0.0),
                )

    def shed_and_release(now: float) -> None:
        """Admission control + free the cache rows of retired requests."""
        for req in sched.shed_overloaded(now):
            if context is not None and comm.rank == 0:
                context.record_event("shed", t=now, rid=req.rid, tier=req.tier)
                context.metrics.counter("serve_shed", tier=req.tier).inc()
        for req in sched.preempt_for_premium(now):
            if context is not None and comm.rank == 0:
                context.record_event("preempt", t=now, rid=req.rid, tier=req.tier)
                context.metrics.counter("serve_preempted", tier=req.tier).inc()
        if cache is not None and cache.token_budget is not None:
            held = {req.slot for req in sched.active}
            stale = [s for s in range(cache.batch_size) if s not in held]
            if stale:
                cache.reset(stale)

    def relieve_cache_pressure(admitted: list[Request]) -> None:
        """Evict lowest-priority slots until the planned commit fits.

        Graceful degradation: instead of letting the forward's commit blow
        the token budget (a fatal :class:`CacheOverflow`), sacrifice the
        lowest-priority active request — highest tier, youngest — reclaim
        its row, and keep serving everyone else.
        """
        if cache is None or cache.token_budget is None:
            return
        while True:
            planned = sum(
                int(req.prompt.size) if req in admitted else 1
                for req in sched.active
            )
            if cache.fits(planned):
                return
            victim = sched.lowest_priority_active()
            if victim is None:
                return
            slot = victim.slot
            now = comm.clock
            sched.evict(victim, now, reason="cache")
            cache.reset([slot])
            if victim in admitted:
                admitted.remove(victim)
            if context is not None and comm.rank == 0:
                context.record_event(
                    "cache_evict", t=now, rid=victim.rid, tier=victim.tier
                )
                context.metrics.counter(
                    "serve_cache_evictions", tier=victim.tier
                ).inc()

    def decode_step() -> None:
        """One mixed prefill+decode forward over the active slots."""
        now = comm.clock
        for req in sched.evict_expired(now):
            if context is not None and comm.rank == 0:
                context.record_event("evict", t=now, rid=req.rid)
        shed_and_release(now)
        admitted = sched.admit(now)
        if cache is not None:
            for req in admitted:
                cache.reset([req.slot])
        relieve_cache_pressure(admitted)
        t0 = comm.clock
        if not sched.active:
            # Idle rank: dummy uncached forward with the same collective
            # sequence, so the SPMD program stays in lockstep.
            model(dummy)
            if timer is not None:
                comm.advance(timer.dense_time(np.zeros(1), np.ones(1)))
            return
        if cfg.use_cache:
            feeds = [
                req.prompt if req in admitted else np.array([req.last_token])
                for req in sched.active
            ]
            valid = np.array([f.size for f in feeds], dtype=np.int64)
            rows = np.array([req.slot for req in sched.active], dtype=np.int64)
            toks = np.zeros((len(feeds), int(valid.max())), dtype=np.int64)
            for i, f in enumerate(feeds):
                toks[i, : f.size] = f
            ctx = cache.lengths[rows].copy()
            logits = model(toks, kv_cache=cache, rows=rows, valid=valid).data
            last = logits[np.arange(len(feeds)), valid - 1]
        else:
            # Sequential baseline: full uncached re-forward of the window.
            req = sched.active[0]
            window = np.concatenate([req.prompt, np.array(req.generated, dtype=np.int64)])
            window = window[-cfg.model.max_seq_len:]
            ctx = np.zeros(1, dtype=np.int64)
            valid = np.array([window.size], dtype=np.int64)
            last = model(window[None, :]).data[:, -1, :]
        if timer is not None:
            comm.advance(timer.dense_time(ctx, valid))
        dt = comm.clock - t0
        if context is not None and comm.rank == 0:
            context.add_phase("prefill" if admitted else "decode", dt)
            context.metrics.counter("serve_iterations").inc()
            context.metrics.histogram("serve_iteration_seconds").observe(dt)
        emit_router(iteration)
        now = comm.clock
        for i, req in enumerate(list(sched.active)):
            if not cfg.greedy and req.rid not in samplers:
                samplers[req.rid] = np.random.default_rng(
                    derive_seed(cfg.seed, "sample", req.rid)
                )
            tok = _sample_token(last[i], cfg, samplers.get(req.rid))
            req.generated.append(tok)
            if req.t_first_token is None:
                req.t_first_token = now
            token_lat.append(dt)
            if len(req.generated) >= req.max_new_tokens:
                sched.finish(req, now)
                if context is not None and comm.rank == 0:
                    context.record_event("finish", t=now, rid=req.rid)

    with no_grad():
        while True:
            local_done = 0.0 if sched.has_work else 1.0
            if comm.allreduce(local_done, op=MIN) >= 1.0:
                break
            # Nothing in flight and the next arrival is in the future:
            # fast-forward this rank's clock to it instead of spinning.
            if not sched.active and sched.next_arrival > comm.clock:
                if np.isfinite(sched.next_arrival):
                    comm.advance(sched.next_arrival - comm.clock)
            decode_step()
            iteration += 1

    return {
        "rank": comm.rank,
        "records": sorted(
            (r.record() for r in sched.finished), key=lambda r: r["rid"]
        ),
        "token_lat": token_lat,
        # Out-of-band admission times (segment-local virtual seconds) so
        # span trees can place queue-wait without touching record().
        "admitted": {
            r.rid: r.t_admitted
            for r in sched.finished
            if r.t_admitted is not None
        },
    }


def run_serving(
    cfg: ServeConfig,
    network: Any | None = None,
    machine: MachineSpec | None = None,
    requests: list[Request] | None = None,
    faults: Any | None = None,
) -> ServeResult:
    """Serve the synthetic workload on ``ep_size`` simulated ranks.

    Requests are sharded round-robin over ranks; each rank decodes its
    share through the EP-sharded model (every rank participates in every
    alltoall). Returns aggregated counts, latency histograms (TTFT and
    per-decoded-token, in virtual seconds), per-request records, and the
    merged :class:`~repro.simmpi.RunContext`.

    ``requests`` overrides the synthetic workload (the fleet router passes
    each replica its assigned share); ``faults`` is a
    :class:`~repro.simmpi.FaultPlan` / :class:`~repro.simmpi.FaultModel`
    forwarded to the SPMD engine — a crashed rank surfaces as a
    :class:`~repro.errors.ReproError` with partial clocks/context attached,
    which the fleet turns into a re-dispatch.
    """
    if network is None:
        network = sunway_network(cfg.ep_size, supernode_size=cfg.supernode_size)
    if machine is None and cfg.model_compute_time:
        machine = sunway_machine(num_nodes=max(cfg.ep_size, 1))
    spmd = run_spmd(
        _serve_rank,
        cfg.ep_size,
        network=network,
        seed=cfg.seed,
        timeout=cfg.timeout,
        trace=cfg.trace,
        observe=cfg.observe,
        faults=faults,
        args=(cfg, machine, requests),
    )
    records: list[dict] = []
    ttft = LatencyStats("ttft")
    token_latency = LatencyStats("token")
    completed = evicted = decode_tokens = shed = 0
    admitted_at: dict[int, float] = {}
    for ret in spmd.returns:
        records.extend(ret["records"])
        token_latency.extend(ret["token_lat"])
        admitted_at.update(ret.get("admitted", {}))
        for rec in ret["records"]:
            decode_tokens += rec["generated"]
            if rec["state"] == "done":
                completed += 1
                if rec["ttft"] is not None:
                    ttft.add(rec["ttft"])
            elif rec["state"] == "evicted":
                evicted += 1
            elif rec["state"] == "shed":
                shed += 1
    records.sort(key=lambda r: r["rid"])
    context = spmd.context
    if context is not None and context.observing:
        # Driver-side aggregates: SLO distributions + outcome counters.
        registry = context.metrics
        registry.counter("serve_completed").inc(completed)
        registry.counter("serve_evicted").inc(evicted)
        registry.counter("serve_decode_tokens").inc(decode_tokens)
        registry.gauge("serve_throughput_tok_s").set(
            decode_tokens / spmd.simulated_time if spmd.simulated_time > 0 else 0.0
        )
        registry.histogram("serve_ttft_seconds").observe_many(ttft.samples)
        registry.histogram("serve_token_latency_seconds").observe_many(
            token_latency.samples
        )
    return ServeResult(
        config=cfg,
        completed=completed,
        evicted=evicted,
        shed=shed,
        decode_tokens=decode_tokens,
        simulated_time=spmd.simulated_time,
        ttft=ttft,
        token_latency=token_latency,
        requests=records,
        clocks=list(spmd.clocks),
        context=spmd.context,
        admitted_at=admitted_at,
        meta={
            "ep_size": cfg.ep_size,
            "batching": cfg.batching,
            "overlap_chunks": cfg.overlap_chunks,
        },
    )


def emit_request_spans(result: ServeResult) -> None:
    """One causal span tree per request on ``result.context``'s tracer.

    The fleet builds its own trees (retries, hedges, re-dispatch live
    there); this is the single-engine counterpart for plain
    :func:`run_serving` results — root ``request:{rid}`` over
    ``[arrival, finish]`` with queue/prefill/decode children partitioning
    it, satisfying :func:`repro.obs.spans.span_coverage`. No-op when the
    run was not observed. Emitted in rid order so span ids are
    deterministic.
    """
    context = result.context
    if context is None or not context.spans.enabled:
        return
    spans = context.spans
    for rec in result.requests:
        arrival = rec["arrival"]
        finish = rec["finish"]
        adm = result.admitted_at.get(rec["rid"])
        ends = [arrival] + [t for t in (finish, adm) if t is not None]
        root_end = max(ends)
        root = spans.add(
            f"request:{rec['rid']}",
            arrival,
            root_end,
            kind="request",
            rid=rec["rid"],
            state=rec["state"],
            reason=rec["reason"],
            tier=rec["tier"],
        )
        if adm is None:
            continue  # shed before admission: the whole root is a gap
        adm = min(max(arrival, adm), root_end)
        if adm > arrival:
            spans.add("queue", arrival, adm, parent=root, kind="queue")
        spans.instant("admission", adm, parent=root, kind="admission",
                      tier=rec["tier"])
        if rec["state"] == "done" and rec["ttft"] is not None:
            first = min(max(adm, arrival + rec["ttft"]), root_end)
            spans.add("prefill", adm, first, parent=root, kind="prefill")
            spans.add("decode", first, root_end, parent=root, kind="decode",
                      tokens=rec["generated"])
        elif finish is not None and finish > adm:
            # Admitted then evicted mid-service (slo/cache/preempt).
            spans.add("service", adm, min(finish, root_end), parent=root,
                      kind="decode", reason=rec["reason"])


def run_sequential_baseline(
    cfg: ServeConfig,
    network: Any | None = None,
    machine: MachineSpec | None = None,
) -> ServeResult:
    """The uncached ``generate()`` baseline on the same world/workload.

    Identical model sharding, network, cost model, and request stream —
    only the serving policy changes: FIFO depth-1 per rank, no KV cache,
    full window re-forward per decoded token.
    """
    base = replace(
        cfg, batching="sequential", use_cache=False, max_batch_size=1
    )
    return run_serving(base, network=network, machine=machine)
