"""Serving subsystem: KV cache, continuous batching, EP decode engine.

Inference stresses exactly the machinery BaGuaLu contributes for training
— expert load balance and the alltoall data path — so the engine decodes
through :class:`~repro.parallel.ep.DistributedMoELayer` on simulated EP
ranks, with throughput/latency measured on the same virtual clock and
:class:`~repro.simmpi.RunContext` spine as training runs.

The engine module pulls in :mod:`repro.parallel`; it is imported lazily so
that :mod:`repro.models.generate` can depend on the cache without an
import cycle.
"""

from repro.serve.kvcache import KVCache, KVLayerView
from repro.serve.scheduler import ContinuousBatchScheduler, Request

_ENGINE_EXPORTS = (
    "DecodeTimer",
    "ServeConfig",
    "ServeResult",
    "build_requests",
    "emit_request_spans",
    "run_sequential_baseline",
    "run_serving",
)

#: The fleet pulls in the engine (and resilience); lazy for the same reason.
_FLEET_EXPORTS = (
    "FleetConfig",
    "FleetResult",
    "run_fleet_serving",
)

#: The router shares :class:`repro.resilience.BackoffPolicy` with the
#: supervisor, and importing that package pulls the elastic-training stack
#: (-> parallel -> amp), so it must stay lazy too.
_ROUTER_EXPORTS = (
    "ReplicaRouter",
    "ReplicaState",
)

#: The autoscaler only needs :mod:`repro.obs.timeseries`, but it lives in
#: the fleet's import neighbourhood; lazy keeps the package entry cheap.
_AUTOSCALER_EXPORTS = (
    "Autoscaler",
    "AutoscalerConfig",
)

__all__ = [
    "KVCache",
    "KVLayerView",
    "ContinuousBatchScheduler",
    "Request",
    *_ENGINE_EXPORTS,
    *_FLEET_EXPORTS,
    *_ROUTER_EXPORTS,
    *_AUTOSCALER_EXPORTS,
]


def __getattr__(name):
    if name in _ENGINE_EXPORTS:
        from repro.serve import engine

        return getattr(engine, name)
    if name in _FLEET_EXPORTS:
        from repro.serve import fleet

        return getattr(fleet, name)
    if name in _ROUTER_EXPORTS:
        from repro.serve import router

        return getattr(router, name)
    if name in _AUTOSCALER_EXPORTS:
        from repro.serve import autoscaler

        return getattr(autoscaler, name)
    raise AttributeError(f"module 'repro.serve' has no attribute {name!r}")
