"""Serving subsystem: KV cache, continuous batching, EP decode engine.

Inference stresses exactly the machinery BaGuaLu contributes for training
— expert load balance and the alltoall data path — so the engine decodes
through :class:`~repro.parallel.ep.DistributedMoELayer` on simulated EP
ranks, with throughput/latency measured on the same virtual clock and
:class:`~repro.simmpi.RunContext` spine as training runs.

The engine module pulls in :mod:`repro.parallel`; it is imported lazily so
that :mod:`repro.models.generate` can depend on the cache without an
import cycle.
"""

from repro.serve.kvcache import KVCache, KVLayerView
from repro.serve.scheduler import ContinuousBatchScheduler, Request

_ENGINE_EXPORTS = (
    "DecodeTimer",
    "ServeConfig",
    "ServeResult",
    "build_requests",
    "run_sequential_baseline",
    "run_serving",
)

__all__ = [
    "KVCache",
    "KVLayerView",
    "ContinuousBatchScheduler",
    "Request",
    *_ENGINE_EXPORTS,
]


def __getattr__(name):
    if name in _ENGINE_EXPORTS:
        from repro.serve import engine

        return getattr(engine, name)
    raise AttributeError(f"module 'repro.serve' has no attribute {name!r}")
