"""Continuous-batching request scheduler on the virtual clock.

Classic batched inference waits for a full batch, runs it to completion,
and only then admits new work — head-of-line blocking that wrecks tail
latency under bursty arrivals. Continuous batching (Orca-style) instead
treats the batch as a set of *slots*: finished requests free their slot
immediately and waiting requests join mid-flight at the next decode
iteration, entering in their prefill phase while neighbours are mid-decode.

The scheduler is deliberately engine-agnostic: it tracks arrivals,
admission, SLO eviction, and per-request timestamps in *virtual seconds*
(the simmpi clock); the engine owns the actual forward passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["Request", "ContinuousBatchScheduler"]

#: Request lifecycle states.
WAITING, ACTIVE, DONE, EVICTED = "waiting", "active", "done", "evicted"


@dataclass(eq=False)  # identity equality: prompts are arrays
class Request:
    """One inference request and its runtime bookkeeping.

    ``arrival``/``slo`` and all timestamps are virtual seconds. ``slot``
    is the cache/batch row the scheduler assigned while the request is
    active; ``generated`` accumulates decoded token ids.
    """

    rid: int
    prompt: np.ndarray
    max_new_tokens: int
    arrival: float = 0.0
    slo: float | None = None
    state: str = WAITING
    slot: int | None = None
    generated: list[int] = field(default_factory=list)
    t_admitted: float | None = None
    t_first_token: float | None = None
    t_finished: float | None = None

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt, dtype=np.int64)
        if self.prompt.ndim != 1 or self.prompt.size < 1:
            raise ConfigError(
                f"request prompt must be a 1-D token array, got shape "
                f"{self.prompt.shape}"
            )
        if self.max_new_tokens < 1:
            raise ConfigError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        if self.slo is not None and self.slo <= 0:
            raise ConfigError(f"slo must be > 0 seconds, got {self.slo}")

    @property
    def deadline(self) -> float:
        """Completion deadline (inf when no SLO was attached)."""
        return float("inf") if self.slo is None else self.arrival + self.slo

    @property
    def ttft(self) -> float | None:
        """Time to first token (arrival -> first decoded token)."""
        if self.t_first_token is None:
            return None
        return self.t_first_token - self.arrival

    @property
    def last_token(self) -> int:
        """Most recent token (decoded, or the prompt tail before that)."""
        return int(self.generated[-1]) if self.generated else int(self.prompt[-1])

    def record(self) -> dict:
        """Flat summary for metrics logging."""
        return {
            "rid": self.rid,
            "state": self.state,
            "arrival": self.arrival,
            "prompt_len": int(self.prompt.size),
            "generated": len(self.generated),
            "ttft": self.ttft,
            "finish": self.t_finished,
            "latency": (
                None if self.t_finished is None else self.t_finished - self.arrival
            ),
            "tokens": [int(t) for t in self.generated],
        }


class ContinuousBatchScheduler:
    """Slot-based admission with join-mid-flight and SLO eviction.

    ``max_batch_size`` bounds concurrently active requests (= cache rows).
    Waiting requests are admitted in arrival order as soon as they have
    both arrived and a free slot; requests whose deadline passes are
    evicted (active or still waiting) so one straggler cannot hold a slot
    against its SLO.
    """

    def __init__(self, max_batch_size: int):
        if max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        self.max_batch_size = max_batch_size
        self.waiting: list[Request] = []
        self.active: list[Request] = []
        self.finished: list[Request] = []
        self._free_slots = list(range(max_batch_size - 1, -1, -1))

    # ------------------------------------------------------------------ #

    def submit(self, request: Request) -> None:
        """Queue a request (kept sorted by arrival time)."""
        self.waiting.append(request)
        self.waiting.sort(key=lambda r: (r.arrival, r.rid))

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.active)

    @property
    def next_arrival(self) -> float:
        """Earliest arrival among waiting requests (inf when none)."""
        return self.waiting[0].arrival if self.waiting else float("inf")

    def admit(self, now: float) -> list[Request]:
        """Move arrived requests into free slots; returns the newcomers."""
        admitted = []
        while self.waiting and self._free_slots and self.waiting[0].arrival <= now:
            req = self.waiting.pop(0)
            req.slot = self._free_slots.pop()
            req.state = ACTIVE
            req.t_admitted = now
            self.active.append(req)
            admitted.append(req)
        return admitted

    def evict_expired(self, now: float) -> list[Request]:
        """Evict every request whose SLO deadline has passed."""
        evicted = []
        for req in list(self.active):
            if now > req.deadline:
                self.active.remove(req)
                self._release(req, EVICTED, now)
                evicted.append(req)
        for req in list(self.waiting):
            if now > req.deadline:
                self.waiting.remove(req)
                req.state = EVICTED
                req.t_finished = now
                self.finished.append(req)
                evicted.append(req)
        return evicted

    def finish(self, request: Request, now: float) -> None:
        """Retire a completed request and free its slot."""
        if request not in self.active:
            raise ConfigError(f"request {request.rid} is not active")
        self.active.remove(request)
        self._release(request, DONE, now)

    def _release(self, req: Request, state: str, now: float) -> None:
        if req.slot is not None:
            self._free_slots.append(req.slot)
            req.slot = None
        req.state = state
        req.t_finished = now
        self.finished.append(req)
