"""Continuous-batching request scheduler on the virtual clock.

Classic batched inference waits for a full batch, runs it to completion,
and only then admits new work — head-of-line blocking that wrecks tail
latency under bursty arrivals. Continuous batching (Orca-style) instead
treats the batch as a set of *slots*: finished requests free their slot
immediately and waiting requests join mid-flight at the next decode
iteration, entering in their prefill phase while neighbours are mid-decode.

The scheduler is deliberately engine-agnostic: it tracks arrivals,
admission, SLO eviction, and per-request timestamps in *virtual seconds*
(the simmpi clock); the engine owns the actual forward passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["Request", "ContinuousBatchScheduler"]

#: Request lifecycle states.
WAITING, ACTIVE, DONE, EVICTED, SHED = (
    "waiting", "active", "done", "evicted", "shed",
)


@dataclass(eq=False)  # identity equality: prompts are arrays
class Request:
    """One inference request and its runtime bookkeeping.

    ``arrival``/``slo`` and all timestamps are virtual seconds. ``slot``
    is the cache/batch row the scheduler assigned while the request is
    active; ``generated`` accumulates decoded token ids. ``tier`` is the
    request's SLO class — 0 is the highest priority; admission control
    prefers low tiers and sheds/evicts high tiers first under pressure.
    """

    rid: int
    prompt: np.ndarray
    max_new_tokens: int
    arrival: float = 0.0
    slo: float | None = None
    tier: int = 0
    state: str = WAITING
    slot: int | None = None
    generated: list[int] = field(default_factory=list)
    t_admitted: float | None = None
    t_first_token: float | None = None
    t_finished: float | None = None
    #: Why the request left the system early (``slo`` / ``cache`` /
    #: ``retries`` / ``shed``); None while running or when completed.
    reason: str | None = None

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt, dtype=np.int64)
        if self.prompt.ndim != 1 or self.prompt.size < 1:
            raise ConfigError(
                f"request prompt must be a 1-D token array, got shape "
                f"{self.prompt.shape}"
            )
        if self.max_new_tokens < 1:
            raise ConfigError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        if self.slo is not None and self.slo <= 0:
            raise ConfigError(f"slo must be > 0 seconds, got {self.slo}")
        if self.tier < 0:
            raise ConfigError(f"tier must be >= 0, got {self.tier}")

    @property
    def deadline(self) -> float:
        """Completion deadline (inf when no SLO was attached)."""
        return float("inf") if self.slo is None else self.arrival + self.slo

    @property
    def ttft(self) -> float | None:
        """Time to first token (arrival -> first decoded token)."""
        if self.t_first_token is None:
            return None
        return self.t_first_token - self.arrival

    @property
    def last_token(self) -> int:
        """Most recent token (decoded, or the prompt tail before that)."""
        return int(self.generated[-1]) if self.generated else int(self.prompt[-1])

    def record(self) -> dict:
        """Flat summary for metrics logging."""
        return {
            "rid": self.rid,
            "state": self.state,
            "reason": self.reason,
            "tier": self.tier,
            "arrival": self.arrival,
            "prompt_len": int(self.prompt.size),
            "generated": len(self.generated),
            "ttft": self.ttft,
            "finish": self.t_finished,
            "latency": (
                None if self.t_finished is None else self.t_finished - self.arrival
            ),
            "tokens": [int(t) for t in self.generated],
        }


class ContinuousBatchScheduler:
    """Slot-based admission with join-mid-flight, SLO eviction, shedding.

    ``max_batch_size`` bounds concurrently active requests (= cache rows).
    Waiting requests are admitted in ``(tier, arrival)`` order as soon as
    they have both arrived and a free slot (with a single tier this is
    exactly arrival order); requests whose deadline passes are evicted
    (active or still waiting) so one straggler cannot hold a slot against
    its SLO.

    Admission control: with ``queue_depth`` set, :meth:`shed_overloaded`
    rejects arrived requests of tier >= ``shed_tier`` whenever the backlog
    (arrived waiting + active) exceeds the depth — load shedding that
    protects high-tier TTFT before the queue blows up. High tiers are shed
    first, newest arrivals first within a tier, and tiers below
    ``shed_tier`` are never shed.
    """

    def __init__(
        self,
        max_batch_size: int,
        queue_depth: int | None = None,
        shed_tier: int | None = None,
    ):
        if max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if queue_depth is not None and queue_depth < 1:
            raise ConfigError(f"queue_depth must be >= 1, got {queue_depth}")
        if shed_tier is not None and shed_tier < 0:
            raise ConfigError(f"shed_tier must be >= 0, got {shed_tier}")
        self.max_batch_size = max_batch_size
        self.queue_depth = queue_depth
        self.shed_tier = shed_tier
        self.waiting: list[Request] = []
        self.active: list[Request] = []
        self.finished: list[Request] = []
        self._free_slots = list(range(max_batch_size - 1, -1, -1))

    # ------------------------------------------------------------------ #

    def submit(self, request: Request) -> None:
        """Queue a request (kept sorted by arrival time)."""
        self.waiting.append(request)
        self.waiting.sort(key=lambda r: (r.arrival, r.rid))

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.active)

    @property
    def next_arrival(self) -> float:
        """Earliest arrival among waiting requests (inf when none)."""
        return self.waiting[0].arrival if self.waiting else float("inf")

    def admit(self, now: float) -> list[Request]:
        """Move arrived requests into free slots; returns the newcomers.

        Selection order is ``(tier, arrival, rid)`` — within one tier this
        is exactly arrival order, and with a single tier the historical
        behaviour is reproduced bit for bit.
        """
        admitted = []
        while self.waiting and self._free_slots:
            arrived = [r for r in self.waiting if r.arrival <= now]
            if not arrived:
                break
            req = min(arrived, key=lambda r: (r.tier, r.arrival, r.rid))
            self.waiting.remove(req)
            req.slot = self._free_slots.pop()
            req.state = ACTIVE
            req.t_admitted = now
            self.active.append(req)
            admitted.append(req)
        return admitted

    def shed_overloaded(self, now: float) -> list[Request]:
        """Reject sheddable arrived requests while the backlog is over depth.

        No-op unless both ``queue_depth`` and ``shed_tier`` are set. Only
        requests of tier >= ``shed_tier`` are ever shed; highest tier
        first, then newest arrival, so the premium queue drains untouched.
        """
        if self.queue_depth is None or self.shed_tier is None:
            return []
        shed: list[Request] = []
        while True:
            arrived = [r for r in self.waiting if r.arrival <= now]
            if len(arrived) + len(self.active) <= self.queue_depth:
                break
            sheddable = [r for r in arrived if r.tier >= self.shed_tier]
            if not sheddable:
                break
            victim = max(sheddable, key=lambda r: (r.tier, r.arrival, r.rid))
            self.waiting.remove(victim)
            victim.state = SHED
            victim.reason = "shed"
            victim.t_finished = now
            self.finished.append(victim)
            shed.append(victim)
        return shed

    def preempt_for_premium(self, now: float) -> list[Request]:
        """Evict sheddable actives so arrived premium work gets slots.

        No-op unless ``shed_tier`` is set. While more premium requests
        (tier < ``shed_tier``) have arrived than there are free slots,
        the lowest-priority active of tier >= ``shed_tier`` is evicted
        with reason ``"preempt"``. Premium actives are never preempted,
        so the mechanism cannot thrash within the protected tiers.
        """
        if self.shed_tier is None:
            return []
        preempted: list[Request] = []
        while True:
            premium = [
                r for r in self.waiting
                if r.arrival <= now and r.tier < self.shed_tier
            ]
            if len(premium) <= len(self._free_slots):
                break
            victim = self.lowest_priority_active()
            if victim is None or victim.tier < self.shed_tier:
                break
            self.active.remove(victim)
            self._release(victim, EVICTED, now, reason="preempt")
            preempted.append(victim)
        return preempted

    def evict_expired(self, now: float) -> list[Request]:
        """Evict every request whose SLO deadline has passed."""
        evicted = []
        for req in list(self.active):
            if now > req.deadline:
                self.active.remove(req)
                self._release(req, EVICTED, now, reason="slo")
                evicted.append(req)
        for req in list(self.waiting):
            if now > req.deadline:
                self.waiting.remove(req)
                req.state = EVICTED
                req.reason = "slo"
                req.t_finished = now
                self.finished.append(req)
                evicted.append(req)
        return evicted

    def lowest_priority_active(self) -> Request | None:
        """The active request to sacrifice first under cache pressure.

        Highest tier wins victimhood; within a tier the youngest (latest
        admission, then highest rid) goes first, so long-running premium
        work is protected.
        """
        if not self.active:
            return None
        return max(
            self.active,
            key=lambda r: (r.tier, r.t_admitted if r.t_admitted is not None
                           else 0.0, r.rid),
        )

    def evict(self, request: Request, now: float, reason: str) -> None:
        """Forcibly evict an active request (cache pressure, timeouts)."""
        if request not in self.active:
            raise ConfigError(f"request {request.rid} is not active")
        self.active.remove(request)
        self._release(request, EVICTED, now, reason=reason)

    def finish(self, request: Request, now: float) -> None:
        """Retire a completed request and free its slot."""
        if request not in self.active:
            raise ConfigError(f"request {request.rid} is not active")
        self.active.remove(request)
        self._release(request, DONE, now)

    def _release(
        self, req: Request, state: str, now: float, reason: str | None = None
    ) -> None:
        if req.slot is not None:
            self._free_slots.append(req.slot)
            req.slot = None
        req.state = state
        req.reason = reason
        req.t_finished = now
        self.finished.append(req)
