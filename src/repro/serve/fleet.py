"""Fault-tolerant serving fleet: replicated engines behind a retry router.

One serving world (:func:`~repro.serve.engine.run_serving`) dies with its
ranks: a single injected fault kills every in-flight request. At BaGuaLu
scale that is not an acceptable serving story — production inference runs
N independent replicas behind a router that re-dispatches the victims of
a crash to survivors. This module reproduces that loop on the simulated
machine:

* **replicas** — each replica is an independent ``ep_size``-rank simmpi
  world running the unmodified continuous-batching engine, with its own
  seeded :class:`~repro.simmpi.FaultModel` (MTBF crashes), so replica
  failure streams are independent and reproducible;
* **router** — :class:`~repro.serve.router.ReplicaRouter` scores replicas
  by estimated completion (health + backoff + learned service time) and
  assigns each pending request deterministically;
* **retries** — a crashed replica surfaces as a
  :class:`~repro.errors.ReproError` with partial clocks/context attached;
  every request it held is re-dispatched to a survivor and *re-prefilled*
  (the KV cache died with the replica). Decoding is deterministic given
  the prompt, so a re-dispatched request produces exactly the tokens the
  crashed attempt would have. Requests that exhaust ``retry_max`` are
  explicitly evicted (``reason="retries"``) — never silently lost;
* **hedging** — optionally, a request whose service latency exceeds
  ``hedge_after_ms`` is speculatively re-dispatched to a second replica;
  the earlier completion wins (both produce identical tokens);
* **admission control** — the per-replica engine sheds tier >=
  ``serve.shed_tier`` arrivals under backlog and evicts the
  lowest-priority slot under KV-budget pressure (see
  :class:`~repro.serve.engine.ServeConfig`), so premium-tier latency
  degrades gracefully instead of collapsing.

All fleet lifecycle events (``fleet_dispatch``, ``replica_crash``,
``redispatch``, ``retries_exhausted``, ``hedge``, ``timeout``) land on one
session :class:`~repro.simmpi.RunContext` that absorbs every segment's
context — including the partial context and flight-recorder dump of
crashed attempts — exactly like the elastic training supervisor.

A fleet of one with faults disabled collapses to a single
:func:`run_serving` call on the identical workload, so the resilient path
is a strict superset of the baseline (bitwise, by regression test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import CommunicatorError, ConfigError, ReproError
from repro.obs.slo import SLOMonitor, SLOObjective, default_burn_windows
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.supervisor import classify_failure
from repro.serve.autoscaler import Autoscaler, AutoscalerConfig
from repro.serve.engine import ServeConfig, build_requests, run_serving
from repro.serve.router import ReplicaRouter
from repro.serve.scheduler import Request
from repro.simmpi import RunContext
from repro.simmpi.faults import FaultModel
from repro.train.metrics import LatencyStats
from repro.utils.seeding import derive_seed

__all__ = ["FleetConfig", "FleetResult", "run_fleet_serving"]


@dataclass(frozen=True)
class FleetConfig:
    """A replicated serving deployment over one :class:`ServeConfig`.

    ``mtbf`` is mean virtual seconds between crashes *per replica* (None:
    healthy fleet). ``retry_max`` bounds re-dispatches per request;
    ``hedge_after_ms`` / ``request_timeout_ms`` are service-latency
    thresholds (virtual milliseconds) for speculative re-dispatch and
    forced retry. Backoff knobs feed the shared
    :class:`~repro.resilience.BackoffPolicy` — the same schedule the
    training supervisor waits between relaunches.
    """

    serve: ServeConfig
    replicas: int = 2
    mtbf: float | None = None
    retry_max: int = 3
    hedge_after_ms: float | None = None
    request_timeout_ms: float | None = None
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap: float = 8.0
    #: Safety valve on the dispatch loop (retries bound it in practice).
    max_rounds: int = 64
    #: Metric-driven elastic capacity (None: fixed fleet). With a policy
    #: set, dispatch becomes *windowed* — each round assigns only work
    #: ready within ``dispatch_window_s`` — so scale decisions interleave
    #: with arrivals instead of the whole workload landing in round one.
    autoscale: AutoscalerConfig | None = None
    #: Declarative SLOs monitored over the run; burn-rate transitions
    #: land as ``slo_alert`` / ``slo_resolve`` events and spans.
    slos: tuple[SLOObjective, ...] = ()
    #: Error-budget horizon the burn-rate windows scale from.
    slo_horizon_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {self.replicas}")
        if self.autoscale is not None and not (
            self.autoscale.min_replicas
            <= self.replicas
            <= self.autoscale.max_replicas
        ):
            raise ConfigError(
                f"initial replicas ({self.replicas}) must lie in the "
                f"autoscale range [{self.autoscale.min_replicas}, "
                f"{self.autoscale.max_replicas}]"
            )
        if self.slo_horizon_s <= 0:
            raise ConfigError(
                f"slo_horizon_s must be > 0, got {self.slo_horizon_s}"
            )
        if self.mtbf is not None and self.mtbf <= 0:
            raise ConfigError(
                f"mtbf must be > 0 virtual seconds, got {self.mtbf}"
            )
        if self.retry_max < 0:
            raise ConfigError(f"retry_max must be >= 0, got {self.retry_max}")
        if self.hedge_after_ms is not None:
            if self.hedge_after_ms <= 0:
                raise ConfigError(
                    f"hedge_after_ms must be > 0, got {self.hedge_after_ms}"
                )
            if self.replicas < 2:
                raise ConfigError(
                    "hedging needs >= 2 replicas (a hedge never re-uses "
                    "the primary)"
                )
        if self.request_timeout_ms is not None and self.request_timeout_ms <= 0:
            raise ConfigError(
                f"request_timeout_ms must be > 0, got {self.request_timeout_ms}"
            )
        if self.max_rounds < 1:
            raise ConfigError(f"max_rounds must be >= 1, got {self.max_rounds}")
        # Delegated: BackoffPolicy owns schedule validation, so the fleet
        # and the training supervisor reject the same inputs.
        self.backoff_policy()

    def backoff_policy(self) -> BackoffPolicy:
        """Capped-exponential schedule crashed replicas wait before reuse."""
        return BackoffPolicy(
            base=self.backoff_base,
            factor=self.backoff_factor,
            cap=self.backoff_cap,
        )


@dataclass
class FleetResult:
    """Outcome of a fleet run; all times are virtual seconds.

    Every admitted request appears in ``requests`` exactly once, with a
    terminal state (``done`` / ``evicted`` / ``shed``) and a ``reason``
    for non-completion — the zero-silent-loss invariant the tests sweep.
    """

    config: FleetConfig
    completed: int
    evicted: int
    shed: int
    decode_tokens: int
    #: Fleet makespan (last request outcome / segment end).
    simulated_time: float
    ttft: LatencyStats
    token_latency: LatencyStats
    requests: list[dict] = field(default_factory=list)
    crashes: int = 0
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    timeouts: int = 0
    #: Requests shed per tier (admission control).
    shed_by_tier: dict[int, int] = field(default_factory=dict)
    replica_stats: list[dict] = field(default_factory=list)
    context: Any = None
    #: Autoscaler activity (zero on fixed fleets).
    scale_ups: int = 0
    scale_downs: int = 0
    replicas_final: int = 0
    #: Live :class:`~repro.obs.slo.SLOMonitor` objects (burn rates,
    #: alert transitions) — feed to :func:`~repro.obs.slo.slo_report`.
    slo: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Completed decode tokens per virtual second of fleet makespan."""
        if self.simulated_time <= 0:
            return 0.0
        return self.decode_tokens / self.simulated_time

    def metrics_record(self) -> dict[str, Any]:
        """One flat summary record for :class:`MetricsLogger` / reports."""
        record = {
            "replicas": self.config.replicas,
            "mtbf": self.config.mtbf,
            "num_requests": self.config.serve.num_requests,
            "completed": self.completed,
            "evicted": self.evicted,
            "shed": self.shed,
            "decode_tokens": self.decode_tokens,
            "simulated_time": self.simulated_time,
            "goodput_tok_s": self.goodput,
            "crashes": self.crashes,
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "timeouts": self.timeouts,
        }
        for tier in sorted(self.shed_by_tier):
            record[f"shed_tier{tier}"] = self.shed_by_tier[tier]
        record.update(self.ttft.summary(prefix="ttft_"))
        if self.config.autoscale is not None:
            record["scale_ups"] = self.scale_ups
            record["scale_downs"] = self.scale_downs
            record["replicas_final"] = self.replicas_final
        return record


@dataclass
class _Flight:
    """Fleet-side state of one request across dispatch attempts."""

    template: Request
    #: Earliest global virtual time the request may be (re-)dispatched.
    ready: float
    attempts: int = 0
    hedged: bool = False
    outcome: dict | None = None
    #: Failed/speculative attempt intervals (global time) for span trees:
    #: ``{"kind": crash|timeout|hedge, "t_start", "t_end", "replica", ...}``.
    history: list[dict] = field(default_factory=list)

    @property
    def rid(self) -> int:
        return self.template.rid


def _fresh(template: Request, arrival: float) -> Request:
    """A pristine copy for one dispatch attempt (engines mutate requests)."""
    return Request(
        rid=template.rid,
        prompt=template.prompt.copy(),
        max_new_tokens=template.max_new_tokens,
        arrival=arrival,
        slo=template.slo,
        tier=template.tier,
    )


def _crash_fields(exc: ReproError) -> dict[str, Any]:
    """Flight-recorder evidence for a crash event (supervisor convention)."""
    fields: dict[str, Any] = {}
    flight = getattr(exc, "flight_dump", None)
    if flight is not None:
        blamed = getattr(exc, "rank", None)
        fields["flight_events"] = sum(
            len(v) for v in flight.get("ranks", {}).values()
        )
        fields["flight_last_op"] = (
            flight.get("last_op", {}).get(blamed) if blamed is not None else None
        )
    return fields


def _signal_time(out: dict) -> float:
    """When an outcome becomes visible to windowed monitors (global time)."""
    if out["state"] == "done" and out.get("first_token") is not None:
        return out["first_token"]
    if out.get("finish") is not None:
        return out["finish"]
    return out["arrival"]


def _emit_request_spans(
    session: RunContext, flights: list[_Flight], admitted_g: dict[int, float]
) -> None:
    """One causal span tree per request on the session tracer.

    Root = the request's whole life ``[arrival, finish]``; on-path
    children partition it (with explicit gaps) into failed attempts
    (``retry``), queue wait, prefill, and decode — the accounting
    invariant :func:`~repro.obs.spans.span_coverage` checks. Hedge
    attempts run *concurrently* with the primary, so they attach as
    off-path ``hedge`` children (winner/loser marked) excluded from the
    sum. Emitted in rid order after the dispatch loop settles, so span
    ids are deterministic.
    """
    spans = session.spans
    if not spans.enabled:
        return
    for flight in sorted(flights, key=lambda f: f.rid):
        out = flight.outcome
        if out is None:  # pragma: no cover - loop guarantees resolution
            continue
        arrival = out["arrival"]
        fails = sorted(
            (h for h in flight.history if h["kind"] in ("crash", "timeout")),
            key=lambda h: h["t_start"],
        )
        finish = out["finish"]
        if out["state"] == "done":
            # Root duration IS the recorded latency; failed attempts are
            # clamped inside it below.
            root_end = finish
        else:
            root_end = max(
                [arrival]
                + ([finish] if finish is not None else [])
                + [h["t_end"] for h in fails]
            )
        root = spans.add(
            f"request:{flight.rid}",
            arrival,
            root_end,
            kind="request",
            rid=flight.rid,
            state=out["state"],
            reason=out["reason"],
            tier=out["tier"],
            attempts=flight.attempts,
            replica=out["replica"],
            hedged=flight.hedged,
        )
        # On-path children must partition [arrival, root_end] without
        # overlap. Crash re-dispatch can move *backwards* in virtual time
        # (a survivor's segment may start before the failed segment's
        # recorded end), so every interval is clamped monotonically: no
        # child starts before the previous one ended or escapes the root.
        cursor = arrival

        def clamp(s: float, e: float) -> tuple[float, float]:
            e = min(max(cursor, e), root_end)
            return min(max(cursor, s), e), e

        for i, h in enumerate(fails):
            s, e = clamp(h["t_start"], h["t_end"])
            spans.add(
                "attempt", s, e,
                parent=root,
                kind="retry",
                why=h["kind"],
                replica=h["replica"],
                attempt=i,
            )
            cursor = e
        adm = admitted_g.get(flight.rid)
        if out["state"] == "done":
            first = out["first_token"]
            if adm is None:
                adm = out["dispatch"]
            adm = min(max(cursor, adm), root_end)
            if adm > cursor:
                spans.add("queue", cursor, adm, parent=root, kind="queue",
                          replica=out["replica"])
            spans.instant("admission", adm, parent=root, kind="admission",
                          tier=out["tier"], replica=out["replica"])
            if first is not None:
                first = min(max(adm, first), root_end)
                spans.add("prefill", adm, first, parent=root, kind="prefill",
                          replica=out["replica"])
                spans.add("decode", first, root_end, parent=root,
                          kind="decode", replica=out["replica"],
                          tokens=out["generated"])
            else:  # pragma: no cover - done implies a first token
                spans.add("prefill", adm, root_end, parent=root,
                          kind="prefill", replica=out["replica"])
        elif finish is not None:
            if adm is not None and adm > cursor:
                # Admitted, then evicted mid-service (slo/cache/preempt).
                adm = min(adm, root_end)
                spans.add("queue", cursor, adm, parent=root, kind="queue",
                          replica=out["replica"])
                spans.add("service", adm, max(adm, finish), parent=root,
                          kind="decode", replica=out["replica"],
                          reason=out["reason"])
            elif finish > cursor:
                # Shed or evicted while still waiting for a slot.
                spans.add("queue", cursor, finish, parent=root,
                          kind="queue", reason=out["reason"])
        for h in flight.history:
            if h["kind"] != "hedge":
                continue
            spans.add(
                "hedge",
                h["t_start"],
                h["t_end"],
                parent=root,
                kind="hedge",
                replica=h["replica"],
                winner=h.get("winner", False),
                role=h.get("role", "hedge"),
            )


def run_fleet_serving(cfg: FleetConfig, network: Any | None = None) -> FleetResult:
    """Serve the workload on ``replicas`` independent engine worlds.

    Each dispatch round assigns every pending request to the replica the
    router expects to finish it first, runs one engine segment per loaded
    replica (arrivals shifted into segment-local time), and folds the
    outcomes back into global time. Crashed segments re-dispatch their
    requests to survivors; slow completions are hedged or timed out per
    the config. The loop terminates because every round either resolves a
    request or consumes one of its ``retry_max`` attempts.
    """
    serve = cfg.serve
    backoff = cfg.backoff_policy()
    router = ReplicaRouter(cfg.replicas, backoff=backoff)
    session = RunContext(trace=serve.trace, observe=serve.observe)
    faults: list[FaultModel | None] = [
        FaultModel(seed=derive_seed(serve.seed, "fleet-replica", r), mtbf=cfg.mtbf)
        if cfg.mtbf is not None
        else None
        for r in range(cfg.replicas)
    ]

    flights = [
        _Flight(template=req, ready=req.arrival) for req in build_requests(serve)
    ]
    by_rid = {f.rid: f for f in flights}
    hedge_s = None if cfg.hedge_after_ms is None else cfg.hedge_after_ms / 1e3
    timeout_s = (
        None if cfg.request_timeout_ms is None else cfg.request_timeout_ms / 1e3
    )

    monitors = [
        SLOMonitor(obj, windows=default_burn_windows(cfg.slo_horizon_s))
        for obj in cfg.slos
    ]
    scaler = Autoscaler(cfg.autoscale) if cfg.autoscale is not None else None
    #: Global admission times per rid (fed by settle, read by span trees).
    admitted_g: dict[int, float] = {}

    ttft = LatencyStats("ttft")
    token_latency = LatencyStats("token")
    crashes = retries = hedges = hedge_wins = timeouts = 0
    scale_ups = scale_downs = 0
    fleet_clock = 0.0

    def run_segment(
        replica: int, group: list[_Flight], seg_t0: float
    ) -> tuple[Any | None, float]:
        """One engine world on ``replica``'s fault stream; returns
        ``(result, end_t)`` — result is None when the segment crashed."""
        nonlocal crashes, fleet_clock
        requests = [
            _fresh(f.template, max(0.0, f.ready - seg_t0))
            for f in sorted(group, key=lambda f: (f.ready, f.rid))
        ]
        session.record_event(
            "fleet_dispatch", t=seg_t0, replica=replica, requests=len(requests)
        )
        router.on_dispatch(replica, len(requests))
        try:
            result = run_serving(serve, network=network, requests=requests,
                                 faults=faults[replica])
        except ReproError as exc:
            crashes += 1
            partial_clocks = getattr(exc, "partial_clocks", None) or [0.0]
            crash_t = seg_t0 + max(partial_clocks)
            partial_context = getattr(exc, "partial_context", None)
            if partial_context is not None:
                session.absorb(partial_context, clock_offset=seg_t0)
            down_until = router.on_crash(replica, crash_t)
            session.record_event(
                "replica_crash",
                t=crash_t,
                replica=replica,
                failure=classify_failure(exc),
                rank=getattr(exc, "rank", None),
                requests=len(requests),
                down_until=down_until,
                **_crash_fields(exc),
            )
            session.metrics.counter(
                "fleet_crashes", failure=classify_failure(exc)
            ).inc()
            fleet_clock = max(fleet_clock, crash_t)
            return None, crash_t
        end_t = seg_t0 + result.simulated_time
        if result.context is not None:
            session.absorb(result.context, clock_offset=seg_t0)
        router.on_segment_done(replica, seg_t0, end_t, result.completed)
        fleet_clock = max(fleet_clock, end_t)
        return result, end_t

    def retry_or_evict(flight: _Flight, at: float, why: str) -> None:
        """Schedule a re-dispatch, or explicitly evict past the budget."""
        nonlocal retries
        flight.attempts += 1
        if flight.attempts > cfg.retry_max:
            flight.outcome = {
                "rid": flight.rid,
                "tier": flight.template.tier,
                "state": "evicted",
                "reason": "retries",
                "arrival": flight.template.arrival,
                "attempts": flight.attempts,
                "replica": None,
                "finish": at,
                "generated": 0,
                "tokens": [],
                "ttft": None,
                "latency": None,
                "hedged": flight.hedged,
            }
            session.record_event(
                "retries_exhausted", t=at, rid=flight.rid,
                attempts=flight.attempts,
            )
            session.metrics.counter("fleet_retries_exhausted").inc()
        else:
            retries += 1
            # A replica can crash before one of its requests even arrived;
            # re-dispatch never schedules ahead of the original arrival.
            flight.ready = max(at, flight.template.arrival)
            session.record_event(
                "redispatch", t=at, rid=flight.rid, attempt=flight.attempts,
                why=why,
            )
            session.metrics.counter("fleet_retries", why=why).inc()

    def settle(
        flight: _Flight,
        rec: dict,
        replica: int,
        seg_t0: float,
        admitted_local: float | None = None,
    ) -> None:
        """Fold one segment record into the flight's global outcome."""
        nonlocal timeouts
        dispatch_g = seg_t0 + rec["arrival"]
        if rec["state"] == "done":
            finish_g = seg_t0 + rec["finish"]
            service = rec["latency"]
            if timeout_s is not None and service > timeout_s:
                timeouts += 1
                session.record_event(
                    "timeout", t=dispatch_g + timeout_s, rid=flight.rid,
                    service=service,
                )
                session.metrics.counter("fleet_timeouts").inc()
                flight.history.append({
                    "kind": "timeout", "replica": replica,
                    "t_start": dispatch_g, "t_end": dispatch_g + timeout_s,
                })
                retry_or_evict(flight, dispatch_g + timeout_s, why="timeout")
                return
            first_token_g = (
                None if rec["ttft"] is None
                else dispatch_g + rec["ttft"]
            )
            flight.outcome = {
                "rid": flight.rid,
                "tier": rec["tier"],
                "state": "done",
                "reason": None,
                "arrival": flight.template.arrival,
                "attempts": flight.attempts,
                "replica": replica,
                "dispatch": dispatch_g,
                "first_token": first_token_g,
                "finish": finish_g,
                "generated": rec["generated"],
                "tokens": rec["tokens"],
                "ttft": (
                    None if first_token_g is None
                    else first_token_g - flight.template.arrival
                ),
                "latency": finish_g - flight.template.arrival,
                "hedged": flight.hedged,
            }
        else:
            # Explicit in-segment eviction (slo/cache) or admission shed —
            # a terminal outcome with its reason preserved.
            flight.outcome = {
                "rid": flight.rid,
                "tier": rec["tier"],
                "state": rec["state"],
                "reason": rec["reason"],
                "arrival": flight.template.arrival,
                "attempts": flight.attempts,
                "replica": replica,
                "finish": (
                    None if rec["finish"] is None else seg_t0 + rec["finish"]
                ),
                "generated": rec["generated"],
                "tokens": rec["tokens"],
                "ttft": None,
                "latency": None,
                "hedged": flight.hedged,
            }
        if admitted_local is not None and flight.outcome is not None:
            admitted_g[flight.rid] = seg_t0 + admitted_local

    def run_hedges(candidates: list[_Flight]) -> None:
        """Speculatively re-dispatch slow completions to second replicas."""
        nonlocal hedges, hedge_wins
        groups: dict[int, list[_Flight]] = {}
        for flight in candidates:
            alt = router.pick(
                flight.outcome["dispatch"] + hedge_s,
                exclude=(flight.outcome["replica"],),
            )
            if alt is None:
                continue
            flight.hedged = True
            flight.outcome["hedged"] = True
            groups.setdefault(alt.index, []).append(flight)
        for replica in sorted(groups):
            group = groups[replica]
            seg_t0 = max(
                router.states[replica].available_at,
                min(f.outcome["dispatch"] + hedge_s for f in group),
            )
            hedges += len(group)
            for flight in group:
                session.record_event(
                    "hedge", t=seg_t0, rid=flight.rid,
                    primary=flight.outcome["replica"], replica=replica,
                )
            session.metrics.counter("fleet_hedges").inc(len(group))
            saved_ready = {f.rid: f.ready for f in group}
            for flight in group:
                flight.ready = flight.outcome["dispatch"] + hedge_s
            result, seg_end = run_segment(replica, group, seg_t0)
            for flight in group:
                flight.ready = saved_ready[flight.rid]
            if result is None:
                # Hedge replica crashed; primaries stand. The doomed
                # speculative attempts still show in the span trees.
                for flight in group:
                    flight.history.append({
                        "kind": "hedge", "replica": replica,
                        "t_start": max(
                            seg_t0, flight.outcome["dispatch"] + hedge_s
                        ),
                        "t_end": seg_end, "winner": False, "role": "hedge",
                        "crashed": True,
                    })
                continue
            for rec in result.requests:
                flight = by_rid[rec["rid"]]
                if rec["state"] != "done":
                    continue
                finish_g = seg_t0 + rec["finish"]
                dispatch_g = seg_t0 + rec["arrival"]
                if finish_g < flight.outcome["finish"]:
                    hedge_wins += 1
                    session.metrics.counter("fleet_hedge_wins").inc()
                    first_token_g = (
                        None if rec["ttft"] is None
                        else dispatch_g + rec["ttft"]
                    )
                    # The beaten primary becomes the off-path attempt.
                    flight.history.append({
                        "kind": "hedge",
                        "replica": flight.outcome["replica"],
                        "t_start": flight.outcome["dispatch"],
                        "t_end": flight.outcome["finish"],
                        "winner": False, "role": "primary",
                    })
                    flight.outcome.update(
                        replica=replica,
                        dispatch=dispatch_g,
                        first_token=first_token_g,
                        finish=finish_g,
                        ttft=(
                            None if first_token_g is None
                            else first_token_g - flight.template.arrival
                        ),
                        latency=finish_g - flight.template.arrival,
                    )
                    adm = result.admitted_at.get(flight.rid)
                    if adm is not None:
                        admitted_g[flight.rid] = seg_t0 + adm
                    # Explicit winner marker (the on-path prefill/decode
                    # spans carry the same interval).
                    flight.history.append({
                        "kind": "hedge", "replica": replica,
                        "t_start": dispatch_g, "t_end": finish_g,
                        "winner": True, "role": "hedge",
                    })
                else:
                    flight.history.append({
                        "kind": "hedge", "replica": replica,
                        "t_start": dispatch_g, "t_end": finish_g,
                        "winner": False, "role": "hedge",
                    })

    rounds = 0
    dispatch_clock = 0.0
    slo_clock = 0.0
    resolved_rids: set[int] = set()
    while any(f.outcome is None for f in flights):
        rounds += 1
        if rounds > cfg.max_rounds:
            raise CommunicatorError(
                f"fleet dispatch did not converge in {cfg.max_rounds} rounds"
            )
        pending = sorted(
            (f for f in flights if f.outcome is None),
            key=lambda f: (f.ready, f.rid),
        )
        if scaler is not None:
            # Windowed dispatch: assign only work ready inside the next
            # dispatch window, so scale decisions interleave with the
            # arrival process instead of round one swallowing the ramp.
            horizon = dispatch_clock + cfg.autoscale.dispatch_window_s
            batch = [f for f in pending if f.ready <= horizon]
            if not batch:
                dispatch_clock = min(f.ready for f in pending)
                continue
            dispatch_clock = horizon
            pending = batch
        assignment: dict[int, list[_Flight]] = {}
        for flight in pending:
            choice = router.pick(flight.ready)
            assignment.setdefault(choice.index, []).append(flight)
            # Count queued work immediately so the next pick balances.
            router.on_dispatch(choice.index, 1)
        round_done: list[_Flight] = []
        for replica in sorted(assignment):
            group = assignment[replica]
            state = router.states[replica]
            # on_dispatch above already queued the group; reset before the
            # segment re-counts it, so outstanding is not double-counted.
            state.outstanding = 0
            seg_t0 = state.available_at
            result, end_t = run_segment(replica, group, seg_t0)
            if result is None:
                for flight in group:
                    flight.history.append({
                        "kind": "crash", "replica": replica,
                        "t_start": max(seg_t0, flight.ready), "t_end": end_t,
                    })
                    retry_or_evict(flight, end_t, why="crash")
                continue
            for rec in result.requests:
                flight = by_rid[rec["rid"]]
                settle(flight, rec, replica, seg_t0,
                       admitted_local=result.admitted_at.get(rec["rid"]))
                if flight.outcome is not None and flight.outcome["state"] == "done":
                    round_done.append(flight)
            token_latency.extend(result.token_latency.samples)
        if hedge_s is not None:
            candidates = [
                f for f in round_done
                if not f.hedged
                and f.outcome["finish"] - f.outcome["dispatch"] > hedge_s
            ]
            if candidates:
                run_hedges(candidates)

        # ---- windowed signals + control decisions, once per round ---- #
        newly = sorted(
            (f for f in flights
             if f.outcome is not None and f.rid not in resolved_rids),
            key=lambda f: (_signal_time(f.outcome), f.rid),
        )
        for flight in newly:
            resolved_rids.add(flight.rid)
            out = flight.outcome
            t_sig = _signal_time(out)
            if out["state"] == "done" and out["ttft"] is not None:
                session.metrics.histogram(
                    "fleet_ttft_seconds", tier=out["tier"]
                ).observe(out["ttft"], t=t_sig)
                if scaler is not None:
                    scaler.observe_ttft(t_sig, out["ttft"], out["tier"])
                for mon in monitors:
                    mon.observe(t_sig, out["ttft"], tier=out["tier"])
            else:
                # Shed / evicted requests burn the error budget outright.
                for mon in monitors:
                    mon.observe(t_sig, float("inf"), tier=out["tier"])
            # Evaluate at the signal's own timestamp (monotone-clamped):
            # burn windows are narrow relative to a round, so waiting for
            # the round's end would inspect them after they drained.
            slo_clock = max(slo_clock, t_sig)
            for mon in monitors:
                mon.evaluate(slo_clock, session)
        router.emit(session.metrics, fleet_clock)
        slo_clock = max(slo_clock, fleet_clock)
        for mon in monitors:
            mon.evaluate(slo_clock, session)
        if scaler is not None:
            backlog = sum(1 for f in flights if f.outcome is None)
            decision = scaler.decide(fleet_clock, router.active_count, backlog)
            if decision["action"] == "up":
                state = router.add_replica(
                    free_at=fleet_clock + cfg.autoscale.spawn_delay_s
                )
                while len(faults) < len(router.states):
                    r = len(faults)
                    faults.append(
                        FaultModel(
                            seed=derive_seed(serve.seed, "fleet-replica", r),
                            mtbf=cfg.mtbf,
                        )
                        if cfg.mtbf is not None
                        else None
                    )
                scale_ups += 1
                session.record_event(
                    "scale_up", t=fleet_clock, replica=state.index,
                    reason=decision["reason"], ttft_p95=decision["ttft_p95"],
                    backlog=backlog, replicas=router.active_count,
                )
                session.spans.instant(
                    f"scale_up:{state.index}", fleet_clock, kind="autoscale",
                    replica=state.index, reason=decision["reason"],
                    replicas=router.active_count,
                )
                session.metrics.counter("fleet_scale_up").inc(t=fleet_clock)
            elif decision["action"] == "down":
                cand = router.drain_candidate()
                if (
                    cand is not None
                    and router.active_count > cfg.autoscale.min_replicas
                ):
                    router.drain(cand.index)
                    scale_downs += 1
                    session.record_event(
                        "scale_down", t=fleet_clock, replica=cand.index,
                        reason=decision["reason"],
                        ttft_p95=decision["ttft_p95"], backlog=backlog,
                        replicas=router.active_count,
                    )
                    session.spans.instant(
                        f"scale_down:{cand.index}", fleet_clock,
                        kind="autoscale", replica=cand.index,
                        reason=decision["reason"],
                        replicas=router.active_count,
                    )
                    session.metrics.counter("fleet_scale_down").inc(
                        t=fleet_clock
                    )

    _emit_request_spans(session, flights, admitted_g)

    records = sorted((f.outcome for f in flights), key=lambda r: r["rid"])
    completed = evicted = shed = decode_tokens = 0
    shed_by_tier: dict[int, int] = {}
    for rec in records:
        if rec["state"] == "done":
            completed += 1
            decode_tokens += rec["generated"]
            if rec["ttft"] is not None:
                ttft.add(rec["ttft"])
        elif rec["state"] == "shed":
            shed += 1
            shed_by_tier[rec["tier"]] = shed_by_tier.get(rec["tier"], 0) + 1
        else:
            evicted += 1
            decode_tokens += rec["generated"]
        if rec["finish"] is not None:
            fleet_clock = max(fleet_clock, rec["finish"])

    registry = session.metrics
    registry.counter("fleet_completed").inc(completed)
    registry.counter("fleet_evicted").inc(evicted)
    for tier in sorted(shed_by_tier):
        registry.counter("fleet_shed", tier=tier).inc(shed_by_tier[tier])
    registry.counter("fleet_decode_tokens").inc(decode_tokens)
    goodput = decode_tokens / fleet_clock if fleet_clock > 0 else 0.0
    registry.gauge("fleet_goodput_tok_s").set(goodput)
    registry.gauge("fleet_makespan_seconds").set(fleet_clock)
    for mon in monitors:
        # Close out any alert still firing at end of run.
        mon.evaluate(fleet_clock, session)

    return FleetResult(
        config=cfg,
        completed=completed,
        evicted=evicted,
        shed=shed,
        decode_tokens=decode_tokens,
        simulated_time=fleet_clock,
        ttft=ttft,
        token_latency=token_latency,
        requests=records,
        crashes=crashes,
        retries=retries,
        hedges=hedges,
        hedge_wins=hedge_wins,
        timeouts=timeouts,
        shed_by_tier=shed_by_tier,
        replica_stats=[
            {
                "replica": s.index,
                "completed": s.completed,
                "crashes": s.crashes,
                "busy_time": s.busy_time,
                "free_at": s.free_at,
                "draining": s.draining,
            }
            for s in router.states
        ],
        context=session,
        scale_ups=scale_ups,
        scale_downs=scale_downs,
        replicas_final=router.active_count,
        slo=monitors,
        meta={
            "replicas": cfg.replicas,
            "ep_size": serve.ep_size,
            "rounds": rounds,
        },
    )
