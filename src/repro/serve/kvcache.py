"""Per-layer KV cache for incremental (O(1)-per-token) decoding.

Autoregressive decoding without a cache recomputes every key/value
projection of the whole window for each new token — O(T) work per token,
O(T^2) per sequence. The :class:`KVCache` stores the keys/values each layer
already produced so a decode step only projects the *new* tokens and
attends over cached history.

Storage is paged: each layer holds one (B, H, alloc, hd) buffer per
tensor, grown in ``block_size``-token blocks up to ``capacity`` tokens, so
short requests never pay for the full window. Rows are independent —
per-row committed lengths let ragged batches (continuous batching) share
one cache, and :meth:`reset` recycles a row's slot for the next request
without reallocating.

Writes are two-phase: :meth:`KVLayerView.append` stages the new tokens for
one layer and returns the padded cached views for attention; the *model*
calls :meth:`commit` once after all layers ran, advancing the shared
per-row lengths exactly once per forward.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CacheOverflow, ConfigError
from repro.utils.mathx import ceil_div

__all__ = ["KVCache", "KVLayerView"]


class KVCache:
    """Paged per-layer key/value storage shared by a batch of rows.

    Parameters
    ----------
    num_layers / batch_size / n_heads / head_dim:
        Shape of the transformer producing the keys/values.
    capacity:
        Maximum cached tokens per row; writes past it raise
        :class:`~repro.errors.CacheOverflow`.
    block_size:
        Allocation granularity in tokens (paged growth).
    token_budget:
        Optional cap on *total* committed tokens across all rows — the
        shared-memory pressure a real paged KV pool has. ``commit`` past
        the budget raises :class:`~repro.errors.CacheOverflow`; engines
        are expected to check :meth:`fits` first and evict a low-priority
        row instead of ever hitting the error (graceful degradation).
    """

    def __init__(
        self,
        num_layers: int,
        batch_size: int,
        n_heads: int,
        head_dim: int,
        capacity: int,
        block_size: int = 8,
        dtype=np.float32,
        token_budget: int | None = None,
    ):
        if min(num_layers, batch_size, n_heads, head_dim, capacity) < 1:
            raise ConfigError(
                "KVCache dims (layers, batch, heads, head_dim, capacity) "
                "must all be >= 1"
            )
        if block_size < 1:
            raise ConfigError(f"block_size must be >= 1, got {block_size}")
        if token_budget is not None and token_budget < 1:
            raise ConfigError(f"token_budget must be >= 1, got {token_budget}")
        self.num_layers = num_layers
        self.batch_size = batch_size
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.capacity = capacity
        self.block_size = block_size
        self.token_budget = token_budget
        self.dtype = dtype
        self._alloc = 0
        shape = (batch_size, n_heads, 0, head_dim)
        self._k = [np.zeros(shape, dtype=dtype) for _ in range(num_layers)]
        self._v = [np.zeros(shape, dtype=dtype) for _ in range(num_layers)]
        #: Committed cached tokens per row (shared by all layers).
        self.lengths = np.zeros(batch_size, dtype=np.int64)

    @classmethod
    def for_model(
        cls,
        model,
        batch_size: int,
        capacity: int | None = None,
        block_size: int = 8,
        token_budget: int | None = None,
    ) -> "KVCache":
        """Build a cache sized for ``model`` (a model or a ModelConfig)."""
        cfg = getattr(model, "config", model)
        return cls(
            num_layers=cfg.n_layers,
            batch_size=batch_size,
            n_heads=cfg.n_heads,
            head_dim=cfg.d_model // cfg.n_heads,
            capacity=cfg.max_seq_len if capacity is None else capacity,
            block_size=block_size,
            token_budget=token_budget,
        )

    # ------------------------------------------------------------------ #

    @property
    def max_length(self) -> int:
        """Longest committed row."""
        return int(self.lengths.max())

    @property
    def committed_tokens(self) -> int:
        """Total committed tokens across all rows (budget accounting)."""
        return int(self.lengths.sum())

    def fits(self, new_tokens: int) -> bool:
        """Would committing ``new_tokens`` more stay within the budget?"""
        if self.token_budget is None:
            return True
        return self.committed_tokens + int(new_tokens) <= self.token_budget

    @property
    def allocated_tokens(self) -> int:
        """Tokens of storage currently allocated per row."""
        return self._alloc

    @property
    def num_blocks(self) -> int:
        return ceil_div(self._alloc, self.block_size)

    @property
    def nbytes(self) -> int:
        """Bytes held across all layers' K and V buffers."""
        return sum(k.nbytes + v.nbytes for k, v in zip(self._k, self._v))

    def layer(self, index: int, rows: np.ndarray | None = None) -> "KVLayerView":
        """View of layer ``index`` restricted to ``rows`` (default: all)."""
        if not 0 <= index < self.num_layers:
            raise ConfigError(
                f"layer index {index} out of range [0, {self.num_layers})"
            )
        if rows is None:
            rows = np.arange(self.batch_size)
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.batch_size):
            raise ConfigError(
                f"cache rows out of range [0, {self.batch_size}): {rows}"
            )
        return KVLayerView(self, index, rows)

    def commit(self, rows: np.ndarray, valid: np.ndarray) -> None:
        """Advance committed lengths after a full forward wrote all layers."""
        rows = np.asarray(rows, dtype=np.int64)
        valid = np.asarray(valid, dtype=np.int64)
        new = self.lengths[rows] + valid
        if (new > self.capacity).any():
            raise CacheOverflow(
                f"commit to {int(new.max())} tokens exceeds capacity "
                f"{self.capacity}"
            )
        if not self.fits(int(valid.sum())):
            raise CacheOverflow(
                f"commit of {int(valid.sum())} tokens would push the cache "
                f"to {self.committed_tokens + int(valid.sum())} committed "
                f"tokens, over the {self.token_budget}-token budget; evict "
                "a row first"
            )
        self.lengths[rows] = new

    def reset(self, rows: np.ndarray | None = None) -> None:
        """Recycle rows for new requests (storage is reused in place)."""
        if rows is None:
            self.lengths[:] = 0
        else:
            self.lengths[np.asarray(rows, dtype=np.int64)] = 0

    def _ensure_alloc(self, tokens: int) -> None:
        if tokens <= self._alloc:
            return
        grow = ceil_div(tokens - self._alloc, self.block_size) * self.block_size
        new_alloc = min(self.capacity, self._alloc + grow)
        pad = (self.batch_size, self.n_heads, new_alloc - self._alloc, self.head_dim)
        for i in range(self.num_layers):
            self._k[i] = np.concatenate(
                [self._k[i], np.zeros(pad, dtype=self.dtype)], axis=2
            )
            self._v[i] = np.concatenate(
                [self._v[i], np.zeros(pad, dtype=self.dtype)], axis=2
            )
        self._alloc = new_alloc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KVCache(layers={self.num_layers}, batch={self.batch_size}, "
            f"len={self.max_length}/{self.capacity}, blocks={self.num_blocks})"
        )


class KVLayerView:
    """One layer's window into a :class:`KVCache` for a set of rows.

    The attention layer calls :meth:`append` with the freshly projected
    keys/values of the new tokens; the view writes them at each row's
    committed offset and hands back the padded cached tensors plus the
    per-row context lengths the causal mask needs.
    """

    def __init__(self, cache: KVCache, layer: int, rows: np.ndarray):
        self.cache = cache
        self.layer = layer
        self.rows = rows

    def append(
        self, k_new: np.ndarray, v_new: np.ndarray, valid: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stage ``valid[b]`` new tokens per row; return cached K/V + ctx.

        ``k_new``/``v_new`` are (B, H, t, hd) for this view's rows; entries
        past ``valid[b]`` are padding and are not written. Returns
        ``(k_all, v_all, ctx)`` where ``k_all``/``v_all`` are
        (B, H, Tmax, hd) padded views over cached + new tokens and ``ctx``
        is the (B,) committed length per row *before* this append.
        """
        cache = self.cache
        b = len(self.rows)
        if k_new.shape[0] != b or v_new.shape[0] != b:
            raise ConfigError(
                f"append batch {k_new.shape[0]} != view rows {b}"
            )
        valid = np.asarray(valid, dtype=np.int64)
        if valid.shape != (b,) or (valid < 1).any() or (valid > k_new.shape[2]).any():
            raise ConfigError(
                f"valid must be (B,) in [1, t={k_new.shape[2]}], got {valid}"
            )
        ctx = cache.lengths[self.rows].copy()
        need = int((ctx + valid).max())
        if need > cache.capacity:
            raise CacheOverflow(
                f"append to {need} tokens exceeds cache capacity "
                f"{cache.capacity}; reset() the row or re-prefill a window"
            )
        cache._ensure_alloc(need)
        ks, vs = cache._k[self.layer], cache._v[self.layer]
        for i, r in enumerate(self.rows):
            lo, hi = int(ctx[i]), int(ctx[i] + valid[i])
            ks[r, :, lo:hi] = k_new[i, :, : valid[i]]
            vs[r, :, lo:hi] = v_new[i, :, : valid[i]]
        k_all = ks[self.rows][:, :, :need]
        v_all = vs[self.rows][:, :, :need]
        return k_all, v_all, ctx
