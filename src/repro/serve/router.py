"""Replica router: health-checked, load-aware dispatch for a serving fleet.

The router is the policy half of the fault-tolerant fleet
(:mod:`repro.serve.fleet` is the mechanism half). It tracks per-replica
health on the virtual clock — a crashed replica is *down* until its
capped-exponential backoff (:class:`~repro.resilience.BackoffPolicy`, the
same schedule the training supervisor uses) expires — and scores dispatch
candidates by estimated completion time:

    score(replica) = max(available_at, request_ready) + mean_service * outstanding

i.e. "when could this replica start, plus how much queued work sits in
front of you", with the mean per-request service time learned from
completed segments. Ties break toward the least-loaded, then
lowest-index replica, so dispatch is deterministic and, before any
service time has been observed, exactly round-robin.

Everything here is pure bookkeeping on virtual timestamps — no threads,
no wall clock — so fleet schedules are reproducible bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.resilience.backoff import BackoffPolicy

__all__ = ["ReplicaRouter", "ReplicaState"]


@dataclass
class ReplicaState:
    """Health + load bookkeeping for one serving replica (virtual time)."""

    index: int
    #: When the replica finishes its currently dispatched segment.
    free_at: float = 0.0
    #: Crash recovery: no dispatch before this time (backoff gate).
    down_until: float = 0.0
    #: Requests currently dispatched and not yet resolved.
    outstanding: int = 0
    crashes: int = 0
    #: Consecutive failed segments (drives the backoff exponent).
    consecutive_failures: int = 0
    completed: int = 0
    #: Virtual seconds of segment makespan this replica has executed.
    busy_time: float = 0.0
    #: Draining replicas finish outstanding work but get no new dispatch
    #: (the autoscaler's scale-down mechanism).
    draining: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def available_at(self) -> float:
        """Earliest virtual time the replica can start new work."""
        return max(self.free_at, self.down_until)

    def healthy(self, now: float) -> bool:
        """Is the replica past its crash backoff at ``now``?"""
        return now >= self.down_until


class ReplicaRouter:
    """Deterministic dispatch + health policy over ``replicas`` replicas."""

    def __init__(self, replicas: int, backoff: BackoffPolicy | None = None):
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.states = [ReplicaState(index=i) for i in range(replicas)]
        self._service_time = 0.0
        self._service_count = 0

    # ------------------------------------------------------------------ #
    # Dispatch policy
    # ------------------------------------------------------------------ #

    @property
    def mean_service(self) -> float:
        """Learned mean virtual seconds per completed request (0 = unknown)."""
        if self._service_count == 0:
            return 0.0
        return self._service_time / self._service_count

    def score(self, state: ReplicaState, ready: float) -> float:
        """Estimated start-plus-queue time for a request ready at ``ready``."""
        return max(state.available_at, ready) + self.mean_service * state.outstanding

    def pick(
        self, ready: float, exclude: tuple[int, ...] = ()
    ) -> ReplicaState | None:
        """The replica estimated to serve a request ready at ``ready`` first.

        ``exclude`` removes candidates (a hedge never re-uses the primary);
        draining replicas are never candidates. Returns None when every
        replica is excluded.
        """
        candidates = [
            s for s in self.states if s.index not in exclude and not s.draining
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda s: (self.score(s, ready), s.outstanding, s.index),
        )

    def on_dispatch(self, replica: int, n: int = 1) -> None:
        """Record ``n`` requests dispatched to ``replica``."""
        self.states[replica].outstanding += n

    # ------------------------------------------------------------------ #
    # Health transitions
    # ------------------------------------------------------------------ #

    def on_segment_done(
        self, replica: int, t_start: float, t_end: float, served: int
    ) -> None:
        """A segment on ``replica`` over ``[t_start, t_end]`` served OK."""
        state = self.states[replica]
        state.free_at = t_end
        state.outstanding = 0
        state.consecutive_failures = 0
        state.completed += served
        state.busy_time += max(0.0, t_end - t_start)
        if served > 0:
            self._service_time += max(0.0, t_end - t_start)
            self._service_count += served

    def on_crash(self, replica: int, crash_t: float) -> float:
        """Mark ``replica`` crashed at ``crash_t``; returns its down-until.

        The replica is unavailable until the capped-exponential backoff
        for its consecutive-failure count expires — the same schedule the
        elastic training supervisor waits between relaunches.
        """
        state = self.states[replica]
        state.crashes += 1
        state.consecutive_failures += 1
        state.outstanding = 0
        state.free_at = crash_t
        state.down_until = crash_t + self.backoff.delay(state.consecutive_failures)
        return state.down_until

    def next_recovery(self, now: float) -> float:
        """Earliest down-until among replicas still in backoff (inf if none)."""
        pending = [s.down_until for s in self.states if s.down_until > now]
        return min(pending) if pending else float("inf")

    # ------------------------------------------------------------------ #
    # Elastic fleet membership (autoscaler mechanism)
    # ------------------------------------------------------------------ #

    @property
    def active_count(self) -> int:
        """Replicas currently eligible for dispatch (not draining)."""
        return sum(1 for s in self.states if not s.draining)

    def add_replica(self, free_at: float = 0.0) -> ReplicaState:
        """Grow the fleet by one replica, first dispatchable at ``free_at``.

        ``free_at`` models provisioning: a replica spawned at virtual
        time ``t`` with spawn delay ``d`` joins with ``free_at = t + d``.
        Un-drains and returns an existing draining replica instead when
        one exists (cheapest capacity: it is already provisioned).
        """
        for state in self.states:
            if state.draining:
                state.draining = False
                return state
        state = ReplicaState(index=len(self.states), free_at=free_at)
        self.states.append(state)
        return state

    def drain(self, replica: int) -> ReplicaState:
        """Mark ``replica`` draining: it finishes its work, gets no more."""
        state = self.states[replica]
        state.draining = True
        return state

    def drain_candidate(self) -> ReplicaState | None:
        """The replica to drain on scale-down: idle, healthy, highest index.

        Prefers replicas with nothing outstanding so a drain never
        strands in-flight work; returns None when every non-draining
        replica is busy (the caller holds and retries next round).
        """
        idle = [
            s for s in self.states
            if not s.draining and s.outstanding == 0
        ]
        if len(idle) < 1 or self.active_count <= 1:
            return None
        return max(idle, key=lambda s: s.index)

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #

    def emit(self, registry, now: float) -> None:
        """Export per-replica state as labeled gauges into ``registry``.

        Called by the fleet each dispatch round, so
        :func:`~repro.obs.export.to_prometheus` and run reports see the
        router's view: outstanding load, availability, health, drain
        status, plus the fleet-wide learned mean service time.
        """
        if not getattr(registry, "enabled", False):
            return
        for s in self.states:
            tag = str(s.index)
            registry.gauge("fleet_router_outstanding", replica=tag).set(s.outstanding)
            registry.gauge("fleet_router_free_at", replica=tag).set(s.free_at)
            registry.gauge("fleet_router_down_until", replica=tag).set(s.down_until)
            registry.gauge("fleet_router_healthy", replica=tag).set(
                1.0 if s.healthy(now) else 0.0
            )
            registry.gauge("fleet_router_draining", replica=tag).set(
                1.0 if s.draining else 0.0
            )
            registry.gauge("fleet_router_crashes", replica=tag).set(s.crashes)
            registry.gauge("fleet_router_completed", replica=tag).set(s.completed)
        registry.gauge("fleet_router_mean_service").set(self.mean_service)
        registry.gauge("fleet_router_replicas").set(len(self.states))
        registry.gauge("fleet_router_active_replicas").set(self.active_count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicaRouter(replicas={len(self.states)}, "
            f"mean_service={self.mean_service:.4g}, "
            f"crashes={[s.crashes for s in self.states]})"
        )
