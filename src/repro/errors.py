"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. still
propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration object was supplied."""


class CommunicatorError(ReproError):
    """Misuse of the simulated MPI layer (bad rank, dead communicator...)."""


class RankAbort(CommunicatorError):
    """Raised inside a rank thread to abort the whole SPMD program."""


class DeadlockError(CommunicatorError):
    """The SPMD engine detected that every live rank is blocked."""


class FaultInjected(CommunicatorError):
    """A fault-injection plan killed a message or a rank on purpose.

    ``rank`` identifies the world rank that was killed (None for message
    faults), so recovery drivers can attribute repeated failures to one
    node and exclude it from the next allocation.
    """

    def __init__(self, message: str = "", rank: int | None = None):
        super().__init__(message)
        self.rank = rank


class TopologyError(ReproError):
    """An invalid network topology description or node id out of range."""


class ShapeError(ReproError):
    """Tensor shapes are incompatible for the requested operation."""


class DtypeError(ReproError):
    """An unsupported or inconsistent dtype was requested."""


class OverflowDetected(ReproError):
    """Mixed-precision training saw a non-finite gradient this step."""


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or mismatches the model."""


class CacheOverflow(ReproError):
    """A KV-cache write would exceed the cache's token capacity."""


class PartitionError(ReproError):
    """A dataset or parameter partition request cannot be satisfied."""
