"""Analytic performance model: FLOPs, memory, per-step time, sweeps."""

from repro.perf.calibration import CalibrationResult, calibrate_efficiency
from repro.perf.flops import (
    BACKWARD_MULTIPLIER,
    forward_flops_per_token,
    step_flops,
    step_flops_per_token,
)
from repro.perf.memory import MemoryBreakdown, node_memory
from repro.perf.plan import ParallelPlan
from repro.perf.stepmodel import ComputeTimer, StepBreakdown, StepModel
from repro.perf.sweep import strong_scaling_rows, weak_scaling_rows

__all__ = [
    "BACKWARD_MULTIPLIER",
    "forward_flops_per_token",
    "step_flops",
    "step_flops_per_token",
    "CalibrationResult",
    "calibrate_efficiency",
    "MemoryBreakdown",
    "node_memory",
    "ParallelPlan",
    "ComputeTimer",
    "StepBreakdown",
    "StepModel",
    "strong_scaling_rows",
    "weak_scaling_rows",
]
