"""Calibrate the machine model against a measured run.

The analytic :class:`~repro.perf.StepModel` has one free scalar — the
machine's ``compute_efficiency`` (sustained/peak ratio). Given a *measured*
per-step time (e.g. from a simmpi run with a
:class:`~repro.perf.ComputeTimer`, or in principle from real hardware),
this module solves for the efficiency that makes the model reproduce it:

    measured = compute(eff) + comm
    compute(eff) = compute(eff=1) / eff
    =>  eff = compute(eff=1) / (measured - comm)

Communication time is efficiency-independent, so the fit is closed-form.
This is how a real reproduction would anchor its projections to a pilot
run before extrapolating to 96,000 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.hardware.specs import MachineSpec
from repro.models.configs import ModelConfig
from repro.network.costmodel import NetworkModel
from repro.perf.plan import ParallelPlan
from repro.perf.stepmodel import StepModel

__all__ = ["CalibrationResult", "calibrate_efficiency"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of an efficiency fit."""

    #: The fitted sustained/peak ratio.
    efficiency: float
    #: Machine spec carrying the fitted efficiency.
    machine: MachineSpec
    #: Model-predicted step time at the fitted efficiency (seconds).
    predicted_step_time: float
    #: The measurement the fit targeted (seconds).
    measured_step_time: float

    @property
    def relative_error(self) -> float:
        """|predicted - measured| / measured after the fit."""
        return abs(self.predicted_step_time - self.measured_step_time) / self.measured_step_time


def calibrate_efficiency(
    config: ModelConfig,
    machine: MachineSpec,
    network: NetworkModel,
    plan: ParallelPlan,
    measured_step_time: float,
    min_efficiency: float = 0.01,
    max_efficiency: float = 1.0,
) -> CalibrationResult:
    """Fit ``compute_efficiency`` so the model matches a measurement.

    Raises :class:`~repro.errors.ConfigError` when the measurement is
    faster than the communication floor (no efficiency can explain it) or
    implies an efficiency outside ``[min_efficiency, max_efficiency]``
    after clamping tolerance.
    """
    if measured_step_time <= 0:
        raise ConfigError(
            f"measured_step_time must be > 0, got {measured_step_time}"
        )
    if plan.overlap != 0.0:
        raise ConfigError(
            "calibrate against a non-overlapped plan (overlap=0); the "
            "closed-form fit assumes exposed communication"
        )
    # Communication does not depend on the efficiency scalar. The GPipe
    # bubble is idle time proportional to per-stage compute, so it scales
    # with 1/efficiency exactly like the compute terms and belongs on the
    # fitted side of the split.
    probe = replace(machine, compute_efficiency=1.0)
    bd = StepModel(config, probe, network).step_breakdown(plan)
    comm = bd.communication
    compute_at_full = bd.compute + bd.pipeline_bubble
    if measured_step_time <= comm:
        raise ConfigError(
            f"measured step time {measured_step_time:.4g}s is at or below "
            f"the modelled communication floor {comm:.4g}s — no compute "
            "efficiency can explain it (check the plan/network)"
        )
    eff = compute_at_full / (measured_step_time - comm)
    eff = min(max(eff, min_efficiency), max_efficiency)
    fitted = replace(machine, compute_efficiency=eff)
    predicted = StepModel(config, fitted, network).step_time(plan)
    return CalibrationResult(
        efficiency=eff,
        machine=fitted,
        predicted_step_time=predicted,
        measured_step_time=measured_step_time,
    )
