"""Parallel execution plans for the analytic performance model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.layout import ParallelLayout, validate_layout_for_model
from repro.models.configs import ModelConfig

__all__ = ["ParallelPlan"]


@dataclass(frozen=True)
class ParallelPlan:
    """How a model run maps onto the machine.

    One MPI rank per node (the Sunway layout: the 390 cores of a node act
    as one accelerator). EP groups are consecutive ranks, so choosing
    ``ep_size <= supernode_size`` keeps token alltoalls on intra-supernode
    links — the placement rule BaGuaLu exploits.

    Parameters
    ----------
    num_nodes:
        World size (ranks == nodes).
    ep_size:
        Expert-parallel group width; must divide num_nodes and the model's
        expert count.
    micro_batch:
        Sequences per rank per step.
    seq_len:
        Tokens per sequence.
    zero_shards:
        Optimizer-state sharding factor (1 = no ZeRO).
    alltoall / allreduce:
        Algorithm names for the cost model ("auto" default).
    load_imbalance:
        Multiplier (>= 1) on expert compute + alltoall payload from uneven
        routing; 1.0 for a perfectly balanced gate. Feed measured
        :attr:`~repro.moe.LoadStats.imbalance` here.
    """

    num_nodes: int
    ep_size: int
    micro_batch: int = 1
    seq_len: int = 2048
    zero_shards: int = 1
    alltoall: str | None = None
    allreduce: str | None = None
    load_imbalance: float = 1.0
    #: Activation recomputation: trades the per-layer activation memory
    #: for one extra forward pass (~1/3 more compute).
    recompute: bool = False
    #: Fraction of gradient-sync communication hidden behind backward
    #: compute (bucketed allreduce overlapping, as BaGuaLu-class systems
    #: do). 0 = fully exposed, 1 = hidden up to the compute time.
    overlap: float = 0.0
    #: Chunked async expert-dispatch width (analytic side of the measured
    #: ``overlap_chunks`` knob): >1 splits each MoE alltoall into that
    #: many pipelined chunks, paying extra per-chunk latency but hiding
    #: dispatch/combine behind expert compute; it also implies bucketed
    #: gradient-sync overlap (``overlap`` is treated as 1.0).
    overlap_chunks: int = 1
    #: Tensor-parallel width (analytic side of the tp/tp_ep strategies).
    tp_size: int = 1
    #: Pipeline stages (analytic side of the pipeline strategies).
    pp_size: int = 1
    #: Microbatches per step for pipeline plans (sets the GPipe bubble
    #: fraction ``(pp - 1) / num_microbatches``); irrelevant when pp=1.
    num_microbatches: int = 1

    def __post_init__(self) -> None:
        # Divisibility across every parallel axis is validated by the same
        # shared helper the measured runner uses, so an analytic plan and
        # a launchable TrainingRunConfig can never drift.
        _ = self.layout
        if self.micro_batch < 1 or self.seq_len < 1:
            raise ConfigError("micro_batch and seq_len must be >= 1")
        if self.num_microbatches < 1:
            raise ConfigError(
                f"num_microbatches must be >= 1, got {self.num_microbatches}"
            )
        if self.load_imbalance < 1.0:
            raise ConfigError(
                f"load_imbalance must be >= 1, got {self.load_imbalance}"
            )
        if not 0.0 <= self.overlap <= 1.0:
            raise ConfigError(f"overlap must be in [0, 1], got {self.overlap}")
        if self.overlap_chunks < 1:
            raise ConfigError(
                f"overlap_chunks must be >= 1, got {self.overlap_chunks}"
            )

    @property
    def layout(self) -> ParallelLayout:
        """The shared, validated layout descriptor for this plan."""
        return ParallelLayout(
            world_size=self.num_nodes,
            ep_size=self.ep_size,
            tp_size=self.tp_size,
            pp_size=self.pp_size,
            zero_shards=self.zero_shards,
        )

    @property
    def num_ep_groups(self) -> int:
        return self.num_nodes // self.ep_size

    @property
    def tokens_per_rank(self) -> int:
        return self.micro_batch * self.seq_len

    @property
    def global_tokens(self) -> int:
        """Tokens consumed machine-wide per step.

        Counts distinct data streams: TP peers consume the same shard and
        a pipeline's stages jointly process one stream, so the machine
        consumes ``world / (tp * pp)`` streams of ``tokens_per_rank`` each
        (equal to ``num_nodes`` streams for in-plane single-axis plans).
        """
        return self.tokens_per_rank * self.layout.data_streams

    def validate_against(self, config: ModelConfig) -> None:
        """Check the plan is compatible with a model config.

        Delegates the layout-vs-model checks to the shared
        :func:`~repro.layout.validate_layout_for_model` (the same
        implementation the measured runner dispatches through), with
        experts placed at *instance* granularity: the
        ``num_moe_layers * num_experts`` expert MLPs of the model are
        distributed over the EP group (BaGuaLu shards its experts over the
        whole machine, so a rank may own experts from only some layers).
        The only plan-specific check left here is ``seq_len``, which the
        layout does not carry.
        """
        validate_layout_for_model(
            self.layout, config, expert_granularity="instance"
        )
        if self.seq_len > config.max_seq_len:
            raise ConfigError(
                f"plan seq_len={self.seq_len} exceeds model "
                f"max_seq_len={config.max_seq_len}"
            )

    def expert_instances_per_rank(self, config: ModelConfig) -> float:
        """Average expert MLPs owned per rank (may be fractional)."""
        self.validate_against(config)
        return config.num_moe_layers * config.num_experts / self.ep_size
