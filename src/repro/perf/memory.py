"""Per-node memory accounting under a parallel plan.

Answers "does this brain-scale config fit on 96 GiB nodes?" — the
feasibility constraint that forces expert parallelism (replicating 14.5 T
parameters is impossible) and motivates ZeRO-style optimizer sharding
(experiment T4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.configs import ModelConfig
from repro.perf.plan import ParallelPlan
from repro.tensor.dtype import itemsize

__all__ = ["MemoryBreakdown", "node_memory"]

#: fp32 master + Adam m + v per parameter.
_OPTIMIZER_BYTES_PER_PARAM = 12

#: Crude activation multiplier: stored tensors per block relative to the
#: block input (pre-norm transformer with recomputation disabled).
#: Attention score buffers (B, H, T, T) are assumed *streamed*
#: (Flash-attention style) and therefore excluded: materializing them at
#: seq_len 2048 would dominate every other term and no system at this
#: scale does so.
_ACTIVATION_FACTOR = 8.0


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes per node, by category."""

    dense_params: float
    expert_params: float
    gradients: float
    optimizer_state: float
    activations: float

    @property
    def params(self) -> float:
        return self.dense_params + self.expert_params

    @property
    def total(self) -> float:
        return self.params + self.gradients + self.optimizer_state + self.activations

    def as_dict(self) -> dict[str, float]:
        return {
            "dense_params": self.dense_params,
            "expert_params": self.expert_params,
            "gradients": self.gradients,
            "optimizer_state": self.optimizer_state,
            "activations": self.activations,
            "total": self.total,
        }


def node_memory(
    config: ModelConfig,
    plan: ParallelPlan,
    replicate_experts: bool = False,
) -> MemoryBreakdown:
    """Memory footprint of one node under ``plan``.

    ``replicate_experts=True`` models the pure-data-parallel baseline
    (every node holds every expert) — the configuration the breakdown shows
    to be infeasible at brain scale.
    """
    plan.validate_against(config)
    param_b = itemsize(config.dtype)

    dense_count = (
        config.attention_params
        + config.dense_ffn_params
        + config.layernorm_params
        + config.embedding_params
        + config.num_moe_layers * config.d_model * config.num_experts  # routers
    )
    expert_total = config.num_moe_layers * config.num_experts * config.ffn_expert_params
    if replicate_experts:
        expert_count = expert_total
    else:
        # Instance-granularity sharding over the EP group.
        expert_count = expert_total / plan.ep_size

    local_params = dense_count + expert_count
    grads = local_params * param_b  # gradient buffers in the param dtype
    optimizer = local_params * _OPTIMIZER_BYTES_PER_PARAM / plan.zero_shards

    if plan.recompute:
        # Only segment boundaries survive: one residual-stream tensor per
        # layer, plus the live segment's internals (~2 layers' worth of
        # full activation state during its replay).
        acts = (
            plan.tokens_per_rank
            * config.d_model
            * (config.n_layers + _ACTIVATION_FACTOR * 2)
            * param_b
        )
    else:
        acts = (
            plan.tokens_per_rank
            * config.d_model
            * config.n_layers
            * _ACTIVATION_FACTOR
            * param_b
        )

    return MemoryBreakdown(
        dense_params=dense_count * param_b,
        expert_params=expert_count * param_b,
        gradients=grads,
        optimizer_state=optimizer,
        activations=acts,
    )
