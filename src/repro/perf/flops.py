"""FLOP accounting for MoE transformer training steps.

Uses the standard approximation: forward FLOPs/token ~ 2 x active
parameters plus the sequence-quadratic attention terms; backward costs 2x
forward. "Active" parameters count only the top_k experts a token visits —
the quantity that makes MoE models cheap to train at enormous total
parameter counts (the paper's central premise).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.models.configs import ModelConfig

__all__ = [
    "forward_flops_per_token",
    "step_flops_per_token",
    "step_flops",
    "BACKWARD_MULTIPLIER",
]

#: backward ~ 2x forward => one step = 3x forward FLOPs.
BACKWARD_MULTIPLIER = 2.0


def forward_flops_per_token(config: ModelConfig, seq_len: int | None = None) -> float:
    """Forward FLOPs per token (matmul terms; LN/softmax are negligible)."""
    t = config.max_seq_len if seq_len is None else seq_len
    if t < 1:
        raise ConfigError(f"seq_len must be >= 1, got {t}")
    dense = 2.0 * config.active_params_per_token
    # Attention score matmuls: QK^T and attn@V, each 2*T*d per token/layer.
    attn_quadratic = config.n_layers * 4.0 * t * config.d_model
    return dense + attn_quadratic


def step_flops_per_token(config: ModelConfig, seq_len: int | None = None) -> float:
    """Forward + backward FLOPs per token."""
    return (1.0 + BACKWARD_MULTIPLIER) * forward_flops_per_token(config, seq_len)


def step_flops(config: ModelConfig, num_tokens: int, seq_len: int | None = None) -> float:
    """Total training FLOPs for one step over ``num_tokens`` tokens."""
    if num_tokens < 0:
        raise ConfigError(f"num_tokens must be >= 0, got {num_tokens}")
    return num_tokens * step_flops_per_token(config, seq_len)
