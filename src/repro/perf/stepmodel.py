"""Analytic per-step time model: compute + communication under a plan.

This is the instrument that extends the measured small-scale simmpi runs to
the paper's 96,000-node regime. The same network cost model drives both
(the simmpi virtual clock calls it per operation; here we call it once per
step phase), so projected and measured curves are mutually consistent by
construction — validated by a calibration test.

Phases per training step (synchronous, conservatively non-overlapped):

* dense compute: forward+backward matmul time on the node roofline;
* expert compute: routed-row MLP time, scaled by the gate's load-imbalance
  factor (the slowest expert paces the group);
* token alltoall: 2 exchanges forward + 2 backward per MoE layer;
* dense-gradient allreduce over the world;
* expert-gradient allreduce over the expert-data-parallel group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.specs import MachineSpec
from repro.models.configs import ModelConfig
from repro.network.costmodel import NetworkModel
from repro.perf.flops import BACKWARD_MULTIPLIER, forward_flops_per_token
from repro.perf.plan import ParallelPlan
from repro.tensor.dtype import itemsize

__all__ = ["StepBreakdown", "StepModel", "ComputeTimer"]


@dataclass(frozen=True)
class StepBreakdown:
    """Seconds per step, by phase."""

    dense_compute: float
    expert_compute: float
    alltoall: float
    dense_allreduce: float
    expert_allreduce: float

    @property
    def compute(self) -> float:
        return self.dense_compute + self.expert_compute

    @property
    def communication(self) -> float:
        return self.alltoall + self.dense_allreduce + self.expert_allreduce

    @property
    def total(self) -> float:
        return self.compute + self.communication

    def as_dict(self) -> dict[str, float]:
        return {
            "dense_compute": self.dense_compute,
            "expert_compute": self.expert_compute,
            "alltoall": self.alltoall,
            "dense_allreduce": self.dense_allreduce,
            "expert_allreduce": self.expert_allreduce,
            "total": self.total,
        }


class ComputeTimer:
    """Per-operation compute-time estimates for *measured* simmpi runs.

    The SPMD runners advance each rank's virtual clock with these
    estimates, so small-scale measured runs include modelled compute on the
    same machine spec the analytic :class:`StepModel` uses — keeping
    measured and projected scaling curves consistent.
    """

    def __init__(self, config: ModelConfig, machine: MachineSpec, seq_len: int):
        self.config = config
        self.machine = machine
        self.seq_len = seq_len
        self._node_flops = (
            machine.node.flops(config.dtype) * machine.compute_efficiency
        )
        expert_fwd = config.top_k * 2.0 * config.ffn_expert_params * config.num_moe_layers
        self._dense_fwd_per_token = (
            forward_flops_per_token(config, seq_len) - expert_fwd
        )
        #: forward FLOPs for one routed row through one expert MLP.
        self._expert_fwd_per_row = 2.0 * config.ffn_expert_params

    def dense_step_time(self, num_tokens: int) -> float:
        """Forward+backward dense compute time for ``num_tokens`` tokens."""
        flops = num_tokens * self._dense_fwd_per_token * (1.0 + BACKWARD_MULTIPLIER)
        return flops / self._node_flops

    def expert_layer_time(self, rows: int) -> float:
        """Forward+backward time for ``rows`` routed through one MoE layer."""
        flops = rows * self._expert_fwd_per_row * (1.0 + BACKWARD_MULTIPLIER)
        return flops / self._node_flops


class StepModel:
    """Bind (model config, machine, network) and evaluate plans."""

    def __init__(self, config: ModelConfig, machine: MachineSpec, network: NetworkModel):
        self.config = config
        self.machine = machine
        self.network = network

    # ------------------------------------------------------------------ #
    # Component times
    # ------------------------------------------------------------------ #

    def _node_flops(self) -> float:
        return self.machine.node.flops(self.config.dtype) * self.machine.compute_efficiency

    def dense_compute_time(self, plan: ParallelPlan) -> float:
        """Per-node attention/backbone/router compute (fwd + bwd)."""
        cfg = self.config
        # Dense forward FLOPs/token = everything except the expert MLPs.
        expert_flops = (
            cfg.num_moe_layers * cfg.top_k * 2.0 * cfg.ffn_expert_params
        )
        dense_fwd = forward_flops_per_token(cfg, plan.seq_len) - expert_flops
        multiplier = 1.0 + BACKWARD_MULTIPLIER + (1.0 if plan.recompute else 0.0)
        total = plan.tokens_per_rank * dense_fwd * multiplier
        return total / self._node_flops()

    def expert_compute_time(self, plan: ParallelPlan) -> float:
        """Per-node expert MLP compute, paced by the most-loaded expert."""
        cfg = self.config
        # Rows hitting this node's experts per step under uniform routing:
        # every rank contributes tokens*top_k slots spread over ep_size.
        rows = plan.tokens_per_rank * cfg.top_k  # group-total = rows*ep_size,
        # per-node share is rows (uniform); imbalance scales the critical path.
        flops = rows * cfg.num_moe_layers * 2.0 * cfg.ffn_expert_params
        flops *= (1.0 + BACKWARD_MULTIPLIER) * plan.load_imbalance
        return flops / self._node_flops()

    def alltoall_time(self, plan: ParallelPlan) -> float:
        """Token exchanges: (2 fwd + 2 bwd) per MoE layer over the EP group."""
        cfg = self.config
        if plan.ep_size == 1:
            return 0.0
        bytes_per_token = cfg.d_model * itemsize(cfg.dtype)
        # Per-pair payload: this rank's routed slots spread over the group.
        per_pair = (
            plan.tokens_per_rank * cfg.top_k * bytes_per_token / plan.ep_size
        ) * plan.load_imbalance
        ranks = list(range(plan.ep_size))  # EP groups are consecutive ranks
        one = self.network.alltoall_time(per_pair, ranks, algorithm=plan.alltoall)
        return 4.0 * cfg.num_moe_layers * one

    def dense_allreduce_time(self, plan: ParallelPlan) -> float:
        """World-wide gradient allreduce of replicated parameters (fp32)."""
        if plan.num_nodes == 1:
            return 0.0
        cfg = self.config
        dense_count = (
            cfg.attention_params
            + cfg.dense_ffn_params
            + cfg.layernorm_params
            + cfg.embedding_params
            + cfg.num_moe_layers * cfg.d_model * cfg.num_experts
        )
        nbytes = dense_count * 4
        ranks = list(range(plan.num_nodes))
        return self.network.allreduce_time(nbytes, ranks, algorithm=plan.allreduce)

    def expert_allreduce_time(self, plan: ParallelPlan) -> float:
        """Expert-gradient allreduce across EP-group replicas (fp32)."""
        if plan.num_ep_groups == 1:
            return 0.0
        cfg = self.config
        total_expert_params = (
            cfg.num_moe_layers * cfg.num_experts * cfg.ffn_expert_params
        )
        nbytes = total_expert_params / plan.ep_size * 4
        # EDP peers: same EP position in every group -> stride ep_size.
        ranks = list(range(0, plan.num_nodes, plan.ep_size))
        return self.network.allreduce_time(nbytes, ranks, algorithm=plan.allreduce)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def step_breakdown(self, plan: ParallelPlan) -> StepBreakdown:
        """All phase times for one synchronous training step."""
        plan.validate_against(self.config)
        if plan.num_nodes > self.machine.num_nodes:
            raise ConfigError(
                f"plan uses {plan.num_nodes} nodes but machine has "
                f"{self.machine.num_nodes}"
            )
        return StepBreakdown(
            dense_compute=self.dense_compute_time(plan),
            expert_compute=self.expert_compute_time(plan),
            alltoall=self.alltoall_time(plan),
            dense_allreduce=self.dense_allreduce_time(plan),
            expert_allreduce=self.expert_allreduce_time(plan),
        )

    def step_time(self, plan: ParallelPlan) -> float:
        """Seconds per training step.

        ``plan.overlap`` hides that fraction of the gradient-sync
        communication behind backward compute (the token alltoalls are on
        the critical path and never overlap).
        """
        bd = self.step_breakdown(plan)
        sync = bd.dense_allreduce + bd.expert_allreduce
        hidden = min(sync, plan.overlap * bd.compute)
        return bd.total - hidden

    def tokens_per_second(self, plan: ParallelPlan) -> float:
        """Machine-wide training throughput."""
        return plan.global_tokens / self.step_time(plan)

    def achieved_flops(self, plan: ParallelPlan) -> float:
        """Sustained training FLOP/s (useful-work FLOPs / step time)."""
        from repro.perf.flops import step_flops

        return step_flops(self.config, plan.global_tokens, plan.seq_len) / self.step_time(plan)

    def parallel_efficiency(self, plan: ParallelPlan) -> float:
        """Achieved / (nodes x single-node sustained compute throughput)."""
        one = self.step_breakdown(
            ParallelPlan(
                num_nodes=1,
                ep_size=1,
                micro_batch=plan.micro_batch,
                seq_len=plan.seq_len,
            )
        ).compute
        per_node_ideal = plan.tokens_per_rank / one
        return self.tokens_per_second(plan) / (per_node_ideal * plan.num_nodes)
