"""Analytic per-step time model: compute + communication under a plan.

This is the instrument that extends the measured small-scale simmpi runs to
the paper's 96,000-node regime. The same network cost model drives both
(the simmpi virtual clock calls it per operation; here we call it once per
step phase), so projected and measured curves are mutually consistent by
construction — validated by a calibration test.

Phases per training step (synchronous, conservatively non-overlapped):

* dense compute: forward+backward matmul time on the node roofline, split
  over pipeline stages and (for the dense-FFN share) over the TP group;
* expert compute: routed-row MLP time, scaled by the gate's load-imbalance
  factor (the slowest expert paces the group);
* token alltoall: 2 exchanges forward + 2 backward per MoE layer;
* dense-gradient allreduce over the stage plane (TP-sharded FFN gradients
  sync separately over the same-shard group);
* expert-gradient allreduce over the expert-data-parallel group;
* TP activation allreduces (2 per sharded dense-FFN block, fwd + bwd);
* ZeRO-1 allgather of the updated fp32 master shards;
* pipeline p2p activation/grad transfers between adjacent stages;
* pipeline bubble: the GPipe fill/drain idle time,
  ``(pp - 1) / num_microbatches`` of the per-stage compute.

Every term maps onto :func:`~repro.obs.comm.profile_comm`'s op taxonomy via
:meth:`StepBreakdown.comm_by_op`, so a projected step and a measured comm
profile decompose along the same axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.specs import MachineSpec
from repro.models.configs import ModelConfig
from repro.network.costmodel import NetworkModel
from repro.perf.flops import BACKWARD_MULTIPLIER, forward_flops_per_token
from repro.perf.plan import ParallelPlan
from repro.tensor.dtype import itemsize

__all__ = ["StepBreakdown", "StepModel", "ComputeTimer"]


@dataclass(frozen=True)
class StepBreakdown:
    """Seconds per step, by phase.

    The classic MoDa terms are always present; the TP / ZeRO / pipeline
    terms default to zero so single-axis plans read exactly as before.
    """

    dense_compute: float
    expert_compute: float
    alltoall: float
    dense_allreduce: float
    expert_allreduce: float
    #: Activation allreduces over the TP group (2 per sharded FFN block).
    tp_allreduce: float = 0.0
    #: ZeRO-1 allgather of updated fp32 master shards over the ZeRO group.
    zero_allgather: float = 0.0
    #: GPipe activation/gradient sends between adjacent pipeline stages.
    pipeline_p2p: float = 0.0
    #: GPipe fill/drain idle time; scales with compute, not bandwidth.
    pipeline_bubble: float = 0.0

    @property
    def compute(self) -> float:
        return self.dense_compute + self.expert_compute

    @property
    def communication(self) -> float:
        return (
            self.alltoall
            + self.dense_allreduce
            + self.expert_allreduce
            + self.tp_allreduce
            + self.zero_allgather
            + self.pipeline_p2p
        )

    @property
    def total(self) -> float:
        return self.compute + self.communication + self.pipeline_bubble

    def as_dict(self) -> dict[str, float]:
        return {
            "dense_compute": self.dense_compute,
            "expert_compute": self.expert_compute,
            "alltoall": self.alltoall,
            "dense_allreduce": self.dense_allreduce,
            "expert_allreduce": self.expert_allreduce,
            "tp_allreduce": self.tp_allreduce,
            "zero_allgather": self.zero_allgather,
            "pipeline_p2p": self.pipeline_p2p,
            "pipeline_bubble": self.pipeline_bubble,
            "total": self.total,
        }

    def comm_by_op(self) -> dict[str, float]:
        """Communication seconds keyed by ``profile_comm``'s op taxonomy.

        The same names a measured run's comm profile reports (``alltoall``,
        ``allreduce``, ``allgather``, ``p2p``), so projected and measured
        communication decompose along identical axes.
        """
        return {
            "alltoall": self.alltoall,
            "allreduce": (
                self.dense_allreduce + self.expert_allreduce + self.tp_allreduce
            ),
            "allgather": self.zero_allgather,
            "p2p": self.pipeline_p2p,
        }


class ComputeTimer:
    """Per-operation compute-time estimates for *measured* simmpi runs.

    The SPMD runners advance each rank's virtual clock with these
    estimates, so small-scale measured runs include modelled compute on the
    same machine spec the analytic :class:`StepModel` uses — keeping
    measured and projected scaling curves consistent.

    ``tp_size`` discounts the dense-FFN share of the per-token FLOPs (the
    Megatron-sharded matmuls); the pipeline split is applied by the
    pipeline trainers themselves (each stage advances ``1/pp`` of the
    dense step time).
    """

    def __init__(
        self,
        config: ModelConfig,
        machine: MachineSpec,
        seq_len: int,
        tp_size: int = 1,
    ):
        if tp_size < 1:
            raise ConfigError(f"tp_size must be >= 1, got {tp_size}")
        self.config = config
        self.machine = machine
        self.seq_len = seq_len
        self.tp_size = tp_size
        self._node_flops = (
            machine.node.flops(config.dtype) * machine.compute_efficiency
        )
        expert_fwd = config.top_k * 2.0 * config.ffn_expert_params * config.num_moe_layers
        dense_fwd = forward_flops_per_token(config, seq_len) - expert_fwd
        # TP shards the dense-FFN matmuls (2 FLOPs/param fwd); everything
        # else (attention, LN, embeddings, routers) stays replicated.
        sharded_fwd = 2.0 * config.dense_ffn_params
        self._dense_fwd_per_token = (
            dense_fwd - sharded_fwd + sharded_fwd / tp_size
        )
        #: forward FLOPs for one routed row through one expert MLP.
        self._expert_fwd_per_row = 2.0 * config.ffn_expert_params

    def dense_step_time(self, num_tokens: int) -> float:
        """Forward+backward dense compute time for ``num_tokens`` tokens."""
        flops = num_tokens * self._dense_fwd_per_token * (1.0 + BACKWARD_MULTIPLIER)
        return flops / self._node_flops

    def dense_forward_time(self, num_tokens: int) -> float:
        """Forward-only share of the dense compute for ``num_tokens``."""
        return num_tokens * self._dense_fwd_per_token / self._node_flops

    def dense_backward_time(self, num_tokens: int) -> float:
        """Backward-only share — what overlapped gradient sync hides behind."""
        flops = num_tokens * self._dense_fwd_per_token * BACKWARD_MULTIPLIER
        return flops / self._node_flops

    def expert_layer_time(self, rows: int) -> float:
        """Forward+backward time for ``rows`` routed through one MoE layer."""
        flops = rows * self._expert_fwd_per_row * (1.0 + BACKWARD_MULTIPLIER)
        return flops / self._node_flops


class StepModel:
    """Bind (model config, machine, network) and evaluate plans.

    Every registered strategy is priceable: plans may set any combination
    of ``ep_size`` / ``tp_size`` / ``pp_size`` / ``zero_shards`` and each
    axis contributes its own :class:`StepBreakdown` term.
    """

    def __init__(self, config: ModelConfig, machine: MachineSpec, network: NetworkModel):
        self.config = config
        self.machine = machine
        self.network = network

    # ------------------------------------------------------------------ #
    # Component times
    # ------------------------------------------------------------------ #

    def _node_flops(self) -> float:
        return self.machine.node.flops(self.config.dtype) * self.machine.compute_efficiency

    def dense_compute_time(self, plan: ParallelPlan) -> float:
        """Per-node attention/backbone/router compute (fwd + bwd).

        The stage holds ``1/pp`` of the layers; the TP group shards the
        dense-FFN matmul share ``1/tp``-ways.
        """
        cfg = self.config
        # Dense forward FLOPs/token = everything except the expert MLPs.
        expert_flops = (
            cfg.num_moe_layers * cfg.top_k * 2.0 * cfg.ffn_expert_params
        )
        dense_fwd = forward_flops_per_token(cfg, plan.seq_len) - expert_flops
        if plan.tp_size > 1:
            sharded = 2.0 * cfg.dense_ffn_params
            dense_fwd = dense_fwd - sharded + sharded / plan.tp_size
        multiplier = 1.0 + BACKWARD_MULTIPLIER + (1.0 if plan.recompute else 0.0)
        total = plan.tokens_per_rank * dense_fwd * multiplier / plan.pp_size
        return total / self._node_flops()

    def expert_compute_time(self, plan: ParallelPlan) -> float:
        """Per-node expert MLP compute, paced by the most-loaded expert."""
        cfg = self.config
        # Rows hitting this node's experts per step under uniform routing:
        # every rank contributes tokens*top_k slots spread over ep_size.
        rows = plan.tokens_per_rank * cfg.top_k  # group-total = rows*ep_size,
        # per-node share is rows (uniform); imbalance scales the critical
        # path, and a stage sees only its 1/pp share of the MoE layers.
        flops = rows * cfg.num_moe_layers * 2.0 * cfg.ffn_expert_params / plan.pp_size
        flops *= (1.0 + BACKWARD_MULTIPLIER) * plan.load_imbalance
        return flops / self._node_flops()

    def alltoall_time(self, plan: ParallelPlan) -> float:
        """Token exchanges: (2 fwd + 2 bwd) per MoE layer over the EP group."""
        cfg = self.config
        if plan.ep_size == 1:
            return 0.0
        bytes_per_token = cfg.d_model * itemsize(cfg.dtype)
        # Per-pair payload: this rank's routed slots spread over the group.
        per_pair = (
            plan.tokens_per_rank * cfg.top_k * bytes_per_token / plan.ep_size
        ) * plan.load_imbalance
        ranks = list(range(plan.ep_size))  # EP groups are consecutive ranks
        # Chunked dispatch issues overlap_chunks smaller exchanges per
        # alltoall: the bandwidth term is unchanged but every chunk pays
        # the latency (alpha) term again — the price of overlap.
        chunks = plan.overlap_chunks
        one = chunks * self.network.alltoall_time(
            per_pair / chunks, ranks, algorithm=plan.alltoall
        )
        # A stage owns 1/pp of the MoE layers.
        return 4.0 * cfg.num_moe_layers * one / plan.pp_size

    def _dense_param_count(self) -> float:
        cfg = self.config
        return (
            cfg.attention_params
            + cfg.dense_ffn_params
            + cfg.layernorm_params
            + cfg.embedding_params
            + cfg.num_moe_layers * cfg.d_model * cfg.num_experts
        )

    def dense_allreduce_time(self, plan: ParallelPlan) -> float:
        """Per-stage gradient allreduce of replicated parameters (fp32).

        With ``pp > 1`` each stage syncs its own ``1/pp`` parameter slice
        over its plane; with ``tp > 1`` the TP-sharded dense-FFN gradients
        are excluded here and priced by :meth:`tp_grad_allreduce_time`.
        """
        layout = plan.layout
        if layout.plane_size == 1:
            return 0.0
        cfg = self.config
        dense_count = self._dense_param_count()
        if plan.tp_size > 1:
            dense_count -= cfg.dense_ffn_params
        nbytes = dense_count * 4 / plan.pp_size
        ranks = list(range(layout.plane_size))
        return self.network.allreduce_time(nbytes, ranks, algorithm=plan.allreduce)

    def tp_grad_allreduce_time(self, plan: ParallelPlan) -> float:
        """TP-sharded FFN gradients allreduced over the same-shard group."""
        layout = plan.layout
        if plan.tp_size == 1:
            return 0.0
        tpdp = [r for r in range(layout.plane_size) if layout.tp_rank_of(r) == 0]
        if len(tpdp) < 2:
            return 0.0
        nbytes = (
            self.config.dense_ffn_params / plan.tp_size * 4 / plan.pp_size
        )
        return self.network.allreduce_time(nbytes, tpdp, algorithm=plan.allreduce)

    def tp_activation_allreduce_time(self, plan: ParallelPlan) -> float:
        """Megatron activation allreduces: 2 per sharded FFN block (fwd+bwd)."""
        cfg = self.config
        if plan.tp_size == 1 or cfg.num_dense_ffn_layers == 0:
            return 0.0
        nbytes = plan.tokens_per_rank * cfg.d_model * itemsize(cfg.dtype)
        # TP peers sit at stride ep_size (EP is the innermost axis).
        ranks = [i * plan.ep_size for i in range(plan.tp_size)]
        one = self.network.allreduce_time(nbytes, ranks, algorithm=plan.allreduce)
        blocks = cfg.num_dense_ffn_layers / plan.pp_size
        return 2.0 * blocks * one

    def expert_allreduce_time(self, plan: ParallelPlan) -> float:
        """Expert-gradient allreduce across EP-group replicas (fp32)."""
        layout = plan.layout
        if layout.num_ep_groups == 1:
            return 0.0
        cfg = self.config
        total_expert_params = (
            cfg.num_moe_layers * cfg.num_experts * cfg.ffn_expert_params
        )
        nbytes = total_expert_params / plan.ep_size * 4 / plan.pp_size
        # EDP peers: same EP position in every group -> stride ep_size.
        ranks = list(range(0, layout.plane_size, plan.ep_size))
        return self.network.allreduce_time(nbytes, ranks, algorithm=plan.allreduce)

    def zero_allgather_time(self, plan: ParallelPlan) -> float:
        """ZeRO-1: allgather of the updated fp32 master shards.

        Mirrors :class:`~repro.parallel.zero.ZeroAdamW`: each rank updates
        its ``1/zero_shards`` slice of the replicated (dense) parameters in
        fp32 and allgathers the result over the (consecutive-rank) ZeRO
        group every step.
        """
        if plan.zero_shards == 1:
            return 0.0
        nbytes_per_rank = self._dense_param_count() * 4 / plan.zero_shards
        ranks = list(range(plan.zero_shards))
        return self.network.allgather_time(nbytes_per_rank, ranks)

    def pipeline_p2p_time(self, plan: ParallelPlan) -> float:
        """GPipe stage-boundary transfers: per microbatch, one activation
        send forward and one gradient send backward per adjacent pair."""
        layout = plan.layout
        if plan.pp_size == 1:
            return 0.0
        cfg = self.config
        micro_tokens = plan.tokens_per_rank / plan.num_microbatches
        nbytes = micro_tokens * cfg.d_model * itemsize(cfg.dtype)
        # Adjacent stages are plane_size ranks apart in the world order.
        one = self.network.p2p_time(nbytes, 0, layout.plane_size)
        return 2.0 * plan.num_microbatches * one

    def pipeline_bubble_time(self, plan: ParallelPlan) -> float:
        """GPipe fill/drain idle time: ``(pp-1)/m`` of the stage compute.

        The classic bubble fraction ``(pp-1)/(m+pp-1)`` of the pipelined
        makespan equals ``(pp-1)/m`` of the useful per-stage compute, which
        is the form that composes additively with the other terms.
        """
        if plan.pp_size == 1:
            return 0.0
        stage_compute = self.dense_compute_time(plan) + self.expert_compute_time(plan)
        return (plan.pp_size - 1) / plan.num_microbatches * stage_compute

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def step_breakdown(self, plan: ParallelPlan) -> StepBreakdown:
        """All phase times for one synchronous training step."""
        plan.validate_against(self.config)
        if plan.num_nodes > self.machine.num_nodes:
            raise ConfigError(
                f"plan uses {plan.num_nodes} nodes but machine has "
                f"{self.machine.num_nodes}"
            )
        return StepBreakdown(
            dense_compute=self.dense_compute_time(plan),
            expert_compute=self.expert_compute_time(plan),
            alltoall=self.alltoall_time(plan),
            dense_allreduce=self.dense_allreduce_time(plan),
            expert_allreduce=self.expert_allreduce_time(plan),
            tp_allreduce=(
                self.tp_activation_allreduce_time(plan)
                + self.tp_grad_allreduce_time(plan)
            ),
            zero_allgather=self.zero_allgather_time(plan),
            pipeline_p2p=self.pipeline_p2p_time(plan),
            pipeline_bubble=self.pipeline_bubble_time(plan),
        )

    def step_time(self, plan: ParallelPlan) -> float:
        """Seconds per training step.

        ``plan.overlap`` hides that fraction of the gradient-sync
        communication behind backward compute (the TP activation
        exchanges stay on the critical path and never overlap). With
        ``plan.overlap_chunks > 1`` the chunked dispatch pipeline also
        hides token alltoalls behind expert compute — all but the first
        dispatch and last combine (a ``(C-1)/C`` fraction) can overlap,
        with one dispatch and one combine in flight per compute window —
        and gradient sync is bucket-overlapped (``overlap`` -> 1).
        """
        bd = self.step_breakdown(plan)
        sync = bd.dense_allreduce + bd.expert_allreduce
        overlap = plan.overlap if plan.overlap_chunks == 1 else 1.0
        hidden = min(sync, overlap * bd.compute)
        if plan.overlap_chunks > 1:
            frac = (plan.overlap_chunks - 1) / plan.overlap_chunks
            hidden += min(bd.alltoall / 2.0 * frac, bd.expert_compute)
        return bd.total - hidden

    def tokens_per_second(self, plan: ParallelPlan) -> float:
        """Machine-wide training throughput."""
        return plan.global_tokens / self.step_time(plan)

    def achieved_flops(self, plan: ParallelPlan) -> float:
        """Sustained training FLOP/s (useful-work FLOPs / step time)."""
        from repro.perf.flops import step_flops

        return step_flops(self.config, plan.global_tokens, plan.seq_len) / self.step_time(plan)

    def parallel_efficiency(self, plan: ParallelPlan) -> float:
        """Achieved / (nodes x single-node sustained compute throughput)."""
        one = self.step_breakdown(
            ParallelPlan(
                num_nodes=1,
                ep_size=1,
                micro_batch=plan.micro_batch,
                seq_len=plan.seq_len,
            )
        ).compute
        per_node_ideal = plan.tokens_per_rank / one
        return self.tokens_per_second(plan) / (per_node_ideal * plan.num_nodes)
