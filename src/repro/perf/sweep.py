"""Scaling-sweep drivers that produce paper-style result rows."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.hardware.specs import MachineSpec
from repro.models.configs import ModelConfig
from repro.network.costmodel import NetworkModel
from repro.network.presets import cluster_preset
from repro.perf.flops import step_flops
from repro.perf.plan import ParallelPlan
from repro.perf.stepmodel import StepModel

__all__ = ["weak_scaling_rows", "strong_scaling_rows"]


def weak_scaling_rows(
    config: ModelConfig,
    machine: MachineSpec,
    node_counts: Sequence[int],
    ep_size: int,
    micro_batch: int = 1,
    seq_len: int | None = None,
    network_builder: Callable[[int], NetworkModel] | None = None,
    load_imbalance: float = 1.0,
    alltoall: str | None = None,
    allreduce: str | None = None,
) -> list[dict[str, float]]:
    """Fixed per-node load, growing node count (experiment F1).

    Returns one row per node count: step time, throughput, achieved
    FLOP/s, and parallel efficiency relative to the smallest run.
    ``network_builder`` defaults to the shared ``"sunway"`` entry of
    :data:`~repro.network.CLUSTER_PRESETS`.
    """
    network_builder = network_builder or cluster_preset("sunway").network
    seq = seq_len or config.max_seq_len
    rows: list[dict[str, float]] = []
    base_rate = None
    for n in node_counts:
        plan = ParallelPlan(
            num_nodes=n,
            ep_size=min(ep_size, n),
            micro_batch=micro_batch,
            seq_len=seq,
            load_imbalance=load_imbalance,
            alltoall=alltoall,
            allreduce=allreduce,
        )
        model = StepModel(config, machine.with_nodes(n), network_builder(n))
        t = model.step_time(plan)
        tput = plan.global_tokens / t
        per_node = tput / n
        if base_rate is None:
            base_rate = per_node
        rows.append(
            {
                "nodes": float(n),
                "cores": float(n * machine.node.cores),
                "step_time_s": t,
                "tokens_per_s": tput,
                "flops": step_flops(config, plan.global_tokens, seq) / t,
                "efficiency": per_node / base_rate,
            }
        )
    return rows


def strong_scaling_rows(
    config: ModelConfig,
    machine: MachineSpec,
    node_counts: Sequence[int],
    ep_size: int,
    global_batch_tokens: int,
    seq_len: int | None = None,
    network_builder: Callable[[int], NetworkModel] | None = None,
    load_imbalance: float = 1.0,
) -> list[dict[str, float]]:
    """Fixed global problem size, growing node count (experiment F2)."""
    network_builder = network_builder or cluster_preset("sunway").network
    seq = seq_len or config.max_seq_len
    rows: list[dict[str, float]] = []
    base_time = None
    for n in node_counts:
        per_rank_tokens = max(global_batch_tokens // n, seq)
        micro_batch = max(per_rank_tokens // seq, 1)
        plan = ParallelPlan(
            num_nodes=n,
            ep_size=min(ep_size, n),
            micro_batch=micro_batch,
            seq_len=seq,
            load_imbalance=load_imbalance,
        )
        model = StepModel(config, machine.with_nodes(n), network_builder(n))
        t = model.step_time(plan)
        if base_time is None:
            base_time = t * n  # node-seconds of the smallest run
        rows.append(
            {
                "nodes": float(n),
                "step_time_s": t,
                "speedup_vs_linear": (base_time / n) / t,
                "tokens_per_s": plan.global_tokens / t,
            }
        )
    return rows
