"""Emulated numeric dtypes.

Training numerics are dtype-faithful without paying NumPy's slow float16
arithmetic: values are *stored* in float32 (float64 for "fp64") but passed
through a quantizer that rounds them onto the fp16 / bf16 grid after every
operation, reproducing precision loss, overflow-to-inf, and gradient
underflow — the phenomena dynamic loss scaling exists to counter.

* ``fp16``: IEEE binary16 via a float16 round-trip (round-to-nearest-even,
  overflow to ±inf, subnormal flush handled by NumPy).
* ``bf16``: bfloat16 via round-to-nearest-even truncation of the low 16
  mantissa bits of the binary32 representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DtypeError

__all__ = [
    "DTYPES",
    "DTypeSpec",
    "as_dtype",
    "quantize",
    "promote",
    "storage_dtype",
    "itemsize",
]


@dataclass(frozen=True)
class DTypeSpec:
    """Description of one emulated dtype."""

    name: str
    #: NumPy dtype used for in-memory storage.
    storage: np.dtype
    #: Bytes per element *on the modelled machine* (not in our emulation).
    nbytes: int
    #: Max finite representable magnitude (for overflow emulation docs).
    max_value: float
    #: Promotion priority: higher wins when mixing dtypes.
    priority: int


DTYPES: dict[str, DTypeSpec] = {
    "fp64": DTypeSpec("fp64", np.dtype(np.float64), 8, float(np.finfo(np.float64).max), 3),
    "fp32": DTypeSpec("fp32", np.dtype(np.float32), 4, float(np.finfo(np.float32).max), 2),
    "bf16": DTypeSpec("bf16", np.dtype(np.float32), 2, 3.3895314e38, 1),
    "fp16": DTypeSpec("fp16", np.dtype(np.float32), 2, 65504.0, 0),
}


def as_dtype(dtype: str | DTypeSpec) -> DTypeSpec:
    """Look up a dtype by name (idempotent for DTypeSpec inputs)."""
    if isinstance(dtype, DTypeSpec):
        return dtype
    try:
        return DTYPES[dtype]
    except KeyError:
        raise DtypeError(f"unknown dtype {dtype!r}; known: {sorted(DTYPES)}") from None


def storage_dtype(dtype: str | DTypeSpec) -> np.dtype:
    """NumPy storage dtype for an emulated dtype."""
    return as_dtype(dtype).storage


def itemsize(dtype: str | DTypeSpec) -> int:
    """Bytes per element on the modelled machine."""
    return as_dtype(dtype).nbytes


def _quantize_bf16(arr: np.ndarray) -> np.ndarray:
    """Round float32 values to the nearest bfloat16 (ties to even)."""
    a = np.ascontiguousarray(arr, dtype=np.float32)
    bits = a.view(np.uint32)
    # Round-to-nearest-even on the low 16 bits.
    rounding_bias = ((bits >> 16) & 1) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    # NaNs must stay NaN (the bias trick can walk a NaN payload to inf).
    out = rounded.view(np.float32).copy()
    nan_mask = np.isnan(a)
    if nan_mask.any():
        out[nan_mask] = np.nan
    return out


def quantize(arr: np.ndarray, dtype: str | DTypeSpec) -> np.ndarray:
    """Project ``arr`` onto the representable grid of ``dtype``.

    Returns an array in the dtype's *storage* type. fp32/fp64 are casts;
    fp16 and bf16 emulate rounding and overflow of the narrow format.
    """
    spec = as_dtype(dtype)
    if spec.name == "fp64":
        return np.asarray(arr, dtype=np.float64)
    if spec.name == "fp32":
        return np.asarray(arr, dtype=np.float32)
    if spec.name == "fp16":
        # Overflow to inf is the *intended* emulation of binary16; silence
        # NumPy's cast warning for it.
        with np.errstate(over="ignore"):
            return np.asarray(arr, dtype=np.float16).astype(np.float32)
    if spec.name == "bf16":
        return _quantize_bf16(np.asarray(arr, dtype=np.float32))
    raise DtypeError(f"unhandled dtype {spec.name!r}")  # pragma: no cover


def promote(a: str | DTypeSpec, b: str | DTypeSpec) -> DTypeSpec:
    """Result dtype when mixing two dtypes (higher priority wins)."""
    sa, sb = as_dtype(a), as_dtype(b)
    return sa if sa.priority >= sb.priority else sb
