"""Fused neural-network operations with hand-written backward passes.

These are the hot kernels of transformer training; fusing them keeps the
autograd graph small (important for pure-Python overhead) and matches how
real frameworks implement them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, _make

__all__ = [
    "relu",
    "gelu",
    "silu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "layer_norm",
    "embedding",
    "dropout",
    "gather_rows",
    "scatter_rows",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    data = np.maximum(x.data, 0.0)
    mask = x.data > 0.0

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g * mask,)

    return _make(data, x.dtype, (x,), backward)


_GELU_C = float(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation (as used by GPT-style models)."""
    v = x.data
    inner = _GELU_C * (v + 0.044715 * v**3)
    t = np.tanh(inner)
    data = 0.5 * v * (1.0 + t)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        dinner = _GELU_C * (1.0 + 3 * 0.044715 * v**2)
        dt = (1.0 - t * t) * dinner
        return (g * (0.5 * (1.0 + t) + 0.5 * v * dt),)

    return _make(data, x.dtype, (x,), backward)


def silu(x: Tensor) -> Tensor:
    """SiLU / swish activation: x * sigmoid(x)."""
    v = x.data
    s = np.where(v >= 0, 1.0 / (1.0 + np.exp(-v)), np.exp(v) / (1.0 + np.exp(v)))
    data = v * s

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g * (s + v * s * (1.0 - s)),)

    return _make(data, x.dtype, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    data = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        dot = (g * data).sum(axis=axis, keepdims=True)
        return (data * (g - dot),)

    return _make(data, x.dtype, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - logsum
    soft = np.exp(data)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return _make(data, x.dtype, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int | None = None) -> Tensor:
    """Mean token-level cross-entropy.

    Parameters
    ----------
    logits:
        Tensor of shape (N, V) — one row of vocabulary scores per token.
    targets:
        Integer array of shape (N,).
    ignore_index:
        Optional target value excluded from the loss (e.g. padding).

    The loss and its gradient are computed in fp32 regardless of the logit
    dtype (the standard "loss in high precision" practice), while the
    gradient handed back *to the logits* is quantized by the autograd
    engine to the logits' dtype.
    """
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, V) logits, got {logits.shape}")
    targets = np.asarray(targets)
    if targets.shape != (logits.shape[0],):
        raise ShapeError(
            f"targets shape {targets.shape} does not match logits rows {logits.shape[0]}"
        )
    x = logits.data.astype(np.float64)
    shifted = x - x.max(axis=1, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - logsum  # (N, V)

    if ignore_index is not None:
        valid = targets != ignore_index
    else:
        valid = np.ones_like(targets, dtype=bool)
    count = max(int(valid.sum()), 1)
    safe_targets = np.where(valid, targets, 0)
    picked = logp[np.arange(len(targets)), safe_targets]
    loss = -(picked * valid).sum() / count

    soft = np.exp(logp)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        grad = soft.copy()
        grad[np.arange(len(targets)), safe_targets] -= 1.0
        grad *= (valid[:, None] / count)
        return (np.asarray(g) * grad.astype(logits.data.dtype),)

    return _make(np.asarray(loss), logits.dtype if logits.dtype.name == "fp64" else _fp32(), (logits,), backward)


def _fp32():
    from repro.tensor.dtype import as_dtype
    return as_dtype("fp32")


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension.

    Statistics are computed in fp32 (standard practice in fp16 training),
    then scale/shift applied with ``weight`` and ``bias`` of shape (D,).
    """
    d = x.shape[-1]
    if weight.shape != (d,) or bias.shape != (d,):
        raise ShapeError(
            f"layer_norm weight/bias must have shape ({d},), got {weight.shape}/{bias.shape}"
        )
    # Stats in fp32 for low-precision inputs (standard practice); fp64
    # inputs keep full precision so gradcheck stays meaningful.
    v = x.data if x.data.dtype == np.float64 else x.data.astype(np.float32)
    mu = v.mean(axis=-1, keepdims=True)
    var = v.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (v - mu) * inv
    data = xhat * weight.data + bias.data

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        gw = (g * xhat).sum(axis=tuple(range(g.ndim - 1)))
        gb = g.sum(axis=tuple(range(g.ndim - 1)))
        gx_hat = g * weight.data
        # d/dx of (x - mu) * inv with mu, var functions of x:
        m1 = gx_hat.mean(axis=-1, keepdims=True)
        m2 = (gx_hat * xhat).mean(axis=-1, keepdims=True)
        gx = inv * (gx_hat - m1 - xhat * m2)
        return gx.astype(x.data.dtype), gw, gb

    return _make(data, x.dtype, (x, weight, bias), backward)


def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` (V, D) by integer ``ids`` (any shape).

    Backward scatter-adds into the embedding table — the memory-bound
    operation that dominates the input layer of large LMs.
    """
    ids = np.asarray(ids)
    if not np.issubdtype(ids.dtype, np.integer):
        raise ShapeError("embedding ids must be integers")
    if ids.size and (ids.min() < 0 or ids.max() >= weight.shape[0]):
        raise ShapeError(
            f"embedding ids out of range [0, {weight.shape[0]}): "
            f"[{ids.min()}, {ids.max()}]"
        )
    data = weight.data[ids]

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        gw = np.zeros_like(weight.data)
        np.add.at(gw, ids, g)
        return (gw,)

    return _make(data, weight.dtype, (weight,), backward)


def gather_rows(x: Tensor, idx: np.ndarray) -> Tensor:
    """Select rows ``x[idx]`` of a (N, D) tensor; backward scatter-adds.

    This is the token-dispatch primitive of MoE routing: the same row may
    be gathered multiple times (top-k > 1) and gradients accumulate.
    """
    idx = np.asarray(idx)
    data = x.data[idx]

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        gx = np.zeros_like(x.data)
        np.add.at(gx, idx, g)
        return (gx,)

    return _make(data, x.dtype, (x,), backward)


def scatter_rows(src: Tensor, idx: np.ndarray, num_rows: int) -> Tensor:
    """Scatter-add rows of ``src`` (M, D) into a (num_rows, D) output.

    The token-combine primitive of MoE routing (inverse of
    :func:`gather_rows`); duplicate indices accumulate.
    """
    idx = np.asarray(idx)
    if idx.shape != (src.shape[0],):
        raise ShapeError(
            f"scatter_rows idx shape {idx.shape} must be ({src.shape[0]},)"
        )
    out = np.zeros((num_rows,) + src.shape[1:], dtype=src.data.dtype)
    np.add.at(out, idx, src.data)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g[idx],)

    return _make(out, src.dtype, (src,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout with an explicit RNG (determinism by construction)."""
    if not 0.0 <= p < 1.0:
        raise ShapeError(f"dropout p must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep) / keep
    data = x.data * mask

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g * mask,)

    return _make(data, x.dtype, (x,), backward)
