"""Numerical gradient checking (central differences in float64)."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["numerical_grad", "gradcheck"]


def numerical_grad(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``fn(inputs).sum()`` w.r.t. one input.

    The inputs are perturbed in-place (restored afterwards), so the passed
    tensors should be fp64 for meaningful comparisons.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(fn(inputs).data.sum())
        flat[i] = orig - eps
        minus = float(fn(inputs).data.sum())
        flat[i] = orig
        gflat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    rtol: float = 1e-4,
    atol: float = 1e-6,
    eps: float = 1e-5,
) -> bool:
    """Compare autograd gradients of every ``requires_grad`` input to
    numerical gradients; raises AssertionError with a diagnostic on failure.

    ``fn`` must be a pure function of ``inputs`` returning a Tensor; the
    scalar objective is ``fn(inputs).sum()``.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(inputs)
    out.backward(np.ones_like(out.data))
    ok = True
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        num = numerical_grad(fn, inputs, i, eps=eps)
        ana = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(ana, num, rtol=rtol, atol=atol):
            worst = np.abs(np.asarray(ana, dtype=np.float64) - num).max()
            raise AssertionError(
                f"gradcheck failed for input {i} (shape {t.shape}): "
                f"max abs diff {worst:.3e}\nanalytic:\n{ana}\nnumerical:\n{num}"
            )
    return ok
