"""NumPy autograd engine with emulated low-precision dtypes."""

from repro.tensor.dtype import DTYPES, DTypeSpec, as_dtype, itemsize, promote, quantize, storage_dtype
from repro.tensor.tensor import Tensor, is_grad_enabled, no_grad, ones, tensor, unbroadcast, zeros
from repro.tensor import ops
from repro.tensor.functional import (
    cross_entropy,
    dropout,
    embedding,
    gather_rows,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    scatter_rows,
    silu,
    softmax,
)
from repro.tensor.checkpoint import checkpoint
from repro.tensor.gradcheck import gradcheck, numerical_grad

__all__ = [
    "DTYPES",
    "DTypeSpec",
    "as_dtype",
    "itemsize",
    "promote",
    "quantize",
    "storage_dtype",
    "Tensor",
    "is_grad_enabled",
    "no_grad",
    "ones",
    "tensor",
    "unbroadcast",
    "zeros",
    "ops",
    "cross_entropy",
    "dropout",
    "embedding",
    "gather_rows",
    "scatter_rows",
    "gelu",
    "layer_norm",
    "log_softmax",
    "relu",
    "silu",
    "softmax",
    "checkpoint",
    "gradcheck",
    "numerical_grad",
]
