"""Primitive differentiable operations.

Each op computes its forward result in NumPy, quantizes onto the output
dtype grid, and registers a backward closure returning one gradient per
parent (already unbroadcast to the parent's shape).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, _coerce, _make, result_dtype, unbroadcast

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "power",
    "matmul",
    "exp",
    "log",
    "tanh",
    "sigmoid",
    "maximum",
    "where",
    "reshape",
    "transpose",
    "getitem",
    "concat",
    "sum_",
    "mean",
    "max_",
    "clip",
]


# ---------------------------------------------------------------------- #
# Elementwise binary
# ---------------------------------------------------------------------- #

def add(a: Any, b: Any) -> Tensor:
    """Elementwise ``a + b`` with broadcasting."""
    if not isinstance(a, Tensor):
        a = _coerce(a, b)
    b = _coerce(b, a)
    out_dtype = result_dtype(a, b)
    data = a.data + b.data

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return unbroadcast(g, a.shape), unbroadcast(g, b.shape)

    return _make(data, out_dtype, (a, b), backward)


def sub(a: Any, b: Any) -> Tensor:
    """Elementwise ``a - b`` with broadcasting."""
    if not isinstance(a, Tensor):
        a = _coerce(a, b)
    b = _coerce(b, a)
    out_dtype = result_dtype(a, b)
    data = a.data - b.data

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return unbroadcast(g, a.shape), unbroadcast(-g, b.shape)

    return _make(data, out_dtype, (a, b), backward)


def mul(a: Any, b: Any) -> Tensor:
    """Elementwise ``a * b`` with broadcasting."""
    if not isinstance(a, Tensor):
        a = _coerce(a, b)
    b = _coerce(b, a)
    out_dtype = result_dtype(a, b)
    data = a.data * b.data

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return unbroadcast(g * b.data, a.shape), unbroadcast(g * a.data, b.shape)

    return _make(data, out_dtype, (a, b), backward)


def div(a: Any, b: Any) -> Tensor:
    """Elementwise ``a / b`` with broadcasting."""
    if not isinstance(a, Tensor):
        a = _coerce(a, b)
    b = _coerce(b, a)
    out_dtype = result_dtype(a, b)
    data = a.data / b.data

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        ga = unbroadcast(g / b.data, a.shape)
        gb = unbroadcast(-g * a.data / (b.data * b.data), b.shape)
        return ga, gb

    return _make(data, out_dtype, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    """Elementwise negation."""
    return _make(-a.data, a.dtype, (a,), lambda g: (-g,))


def power(a: Tensor, exponent: float) -> Tensor:
    """Elementwise ``a ** p`` for a scalar exponent."""
    p = float(exponent)
    data = a.data ** p

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g * p * a.data ** (p - 1.0),)

    return _make(data, a.dtype, (a,), backward)


def maximum(a: Any, b: Any) -> Tensor:
    """Elementwise max; gradient routes to the winner (ties go to ``a``)."""
    if not isinstance(a, Tensor):
        a = _coerce(a, b)
    b = _coerce(b, a)
    out_dtype = result_dtype(a, b)
    data = np.maximum(a.data, b.data)
    mask = (a.data >= b.data)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return unbroadcast(g * mask, a.shape), unbroadcast(g * ~mask, b.shape)

    return _make(data, out_dtype, (a, b), backward)


def where(cond: np.ndarray, a: Any, b: Any) -> Tensor:
    """Select ``a`` where ``cond`` else ``b``; ``cond`` is non-differentiable."""
    cond = np.asarray(cond, dtype=bool)
    if not isinstance(a, Tensor) and not isinstance(b, Tensor):
        raise ShapeError("where() needs at least one Tensor operand")
    if not isinstance(a, Tensor):
        a = _coerce(a, b)
    b = _coerce(b, a)
    out_dtype = result_dtype(a, b)
    data = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (
            unbroadcast(np.where(cond, g, 0.0), a.shape),
            unbroadcast(np.where(cond, 0.0, g), b.shape),
        )

    return _make(data, out_dtype, (a, b), backward)


# ---------------------------------------------------------------------- #
# Elementwise unary
# ---------------------------------------------------------------------- #

def exp(a: Tensor) -> Tensor:
    """Elementwise natural exponential."""
    data = np.exp(a.data)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g * data,)

    return _make(data, a.dtype, (a,), backward)


def log(a: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    data = np.log(a.data)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g / a.data,)

    return _make(data, a.dtype, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    data = np.tanh(a.data)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g * (1.0 - data * data),)

    return _make(data, a.dtype, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    """Numerically-stable logistic sigmoid."""
    x = a.data
    data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g * data * (1.0 - data),)

    return _make(data, a.dtype, (a,), backward)


def clip(a: Tensor, lo: float, hi: float) -> Tensor:
    """Clamp values to [lo, hi]; gradient is zero outside the interval."""
    data = np.clip(a.data, lo, hi)
    mask = (a.data >= lo) & (a.data <= hi)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g * mask,)

    return _make(data, a.dtype, (a,), backward)


# ---------------------------------------------------------------------- #
# Linear algebra
# ---------------------------------------------------------------------- #

def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Batched matrix multiplication with NumPy's ``@`` broadcasting."""
    if not isinstance(a, Tensor) or not isinstance(b, Tensor):
        raise ShapeError("matmul requires Tensor operands")
    out_dtype = result_dtype(a, b)
    data = a.data @ b.data

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        if a.ndim == 1 and b.ndim == 1:
            # Inner product: g is scalar.
            return g * b.data, g * a.data
        if a.ndim == 1:
            # (K,) @ (..., K, N) -> (..., N)
            ga = (g[..., None, :] @ np.swapaxes(b.data, -1, -2)).reshape(b.data.shape[:-2] + a.shape)
            ga = unbroadcast(ga, a.shape)
            gb = unbroadcast(a.data[..., :, None] @ g[..., None, :], b.shape)
            return ga, gb
        if b.ndim == 1:
            # (..., M, K) @ (K,) -> (..., M)
            ga = unbroadcast(g[..., :, None] @ b.data[None, :], a.shape)
            gb = unbroadcast(np.swapaxes(a.data, -1, -2) @ g[..., :, None], (b.shape[0], 1)).reshape(b.shape)
            return ga, gb
        ga = unbroadcast(g @ np.swapaxes(b.data, -1, -2), a.shape)
        gb = unbroadcast(np.swapaxes(a.data, -1, -2) @ g, b.shape)
        return ga, gb

    return _make(data, out_dtype, (a, b), backward)


# ---------------------------------------------------------------------- #
# Shape manipulation
# ---------------------------------------------------------------------- #

def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reshape preserving order; grad reshapes back."""
    data = a.data.reshape(shape)
    src_shape = a.shape

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (g.reshape(src_shape),)

    return _make(data, a.dtype, (a,), backward)


def transpose(a: Tensor, axes: tuple[int, ...] | None = None) -> Tensor:
    """Axis permutation; grad applies the inverse permutation."""
    data = np.transpose(a.data, axes)
    if axes is None:
        inv = None
    else:
        inv = tuple(np.argsort(axes))

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        return (np.transpose(g, inv),)

    return _make(data, a.dtype, (a,), backward)


def getitem(a: Tensor, index: Any) -> Tensor:
    """Basic/advanced indexing; grad scatter-adds into the source shape."""
    data = a.data[index]
    src_shape = a.shape
    src_np = a.data.dtype

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        out = np.zeros(src_shape, dtype=src_np)
        np.add.at(out, index, g)
        return (out,)

    return _make(data, a.dtype, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis``; grad splits back."""
    if not tensors:
        raise ShapeError("concat() of an empty sequence")
    out_dtype = tensors[0].dtype
    for t in tensors[1:]:
        out_dtype = result_dtype_pair(out_dtype, t.dtype)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        grads = []
        for i in range(len(tensors)):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(sl)])
        return grads

    return _make(data, out_dtype, tuple(tensors), backward)


def result_dtype_pair(a, b):
    """Promote two DTypeSpec values (helper for n-ary ops)."""
    from repro.tensor.dtype import promote
    return promote(a, b)


# ---------------------------------------------------------------------- #
# Reductions
# ---------------------------------------------------------------------- #

def sum_(a: Tensor, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> Tensor:
    """Sum over ``axis`` (all axes by default)."""
    data = a.data.sum(axis=axis, keepdims=keepdims)
    src_shape = a.shape

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        gg = g
        if not keepdims and axis is not None:
            gg = np.expand_dims(g, axis)
        elif not keepdims and axis is None:
            gg = np.asarray(g).reshape((1,) * len(src_shape))
        return (np.broadcast_to(gg, src_shape).copy(),)

    return _make(data, a.dtype, (a,), backward)


def mean(a: Tensor, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> Tensor:
    """Arithmetic mean over ``axis``."""
    data = a.data.mean(axis=axis, keepdims=keepdims)
    src_shape = a.shape
    count = a.data.size if axis is None else np.prod(
        [src_shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        gg = g
        if not keepdims and axis is not None:
            gg = np.expand_dims(g, axis)
        elif not keepdims and axis is None:
            gg = np.asarray(g).reshape((1,) * len(src_shape))
        return (np.broadcast_to(gg, src_shape) / count,)

    return _make(data, a.dtype, (a,), backward)


def max_(a: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    """Max reduction; gradient flows to (all) argmax positions."""
    data = a.data.max(axis=axis, keepdims=keepdims)
    expanded = a.data.max(axis=axis, keepdims=True) if axis is not None else a.data.max()
    mask = (a.data == expanded)

    def backward(g: np.ndarray) -> Sequence[np.ndarray]:
        gg = g
        if not keepdims and axis is not None:
            gg = np.expand_dims(g, axis)
        elif not keepdims and axis is None:
            gg = np.asarray(g).reshape((1,) * a.ndim)
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        return (np.broadcast_to(gg, a.shape) * mask / counts,)

    return _make(data, a.dtype, (a,), backward)
