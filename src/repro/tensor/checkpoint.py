"""Activation recomputation (gradient checkpointing).

At brain scale, storing every intermediate activation is impossible:
``checkpoint(fn, *xs)`` runs ``fn`` forward *without* building its internal
graph (so the intermediates are garbage-collected), keeping only the
inputs; on backward it re-executes ``fn`` with grad enabled and
differentiates through the fresh subgraph. Memory for the segment drops to
its inputs + outputs at the cost of one extra forward (~1/3 extra step
compute) — the standard trade the memory model's ``recompute`` knob prices.

Determinism caveat: ``fn`` must be a pure function of its tensor inputs
(no consumed RNG state), otherwise the replay would diverge. Dropout
layers should be given replayable generators or be outside segments.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, is_grad_enabled, no_grad

__all__ = ["checkpoint"]


def checkpoint(fn: Callable[..., Tensor], *inputs: Tensor) -> Tensor:
    """Run ``fn(*inputs)`` without storing its internal graph.

    Returns a tensor whose backward recomputes the segment. Only Tensor
    positional inputs participate in autograd; ``fn`` must return a single
    Tensor.
    """
    if not inputs:
        raise ShapeError("checkpoint() needs at least one tensor input")
    for x in inputs:
        if not isinstance(x, Tensor):
            raise ShapeError("checkpoint() inputs must be Tensors")

    with no_grad():
        out = fn(*inputs)
    if not isinstance(out, Tensor):
        raise ShapeError("checkpoint() function must return a Tensor")

    def backward(g: np.ndarray) -> Sequence[np.ndarray | None]:
        # Replay with fresh leaves so gradients are isolated to this call.
        leaves = [
            Tensor(x.data, requires_grad=True, dtype=x.dtype, name=x.name)
            for x in inputs
        ]
        replay = fn(*leaves)
        if replay.shape != out.shape:
            raise ShapeError(
                "checkpoint() replay produced a different shape "
                f"({replay.shape} vs {out.shape}); fn must be pure"
            )
        replay.backward(g)
        return [leaf.grad for leaf in leaves]

    # Track unconditionally (unlike ordinary ops): fn may close over
    # parameters that need gradients even when no *input* requires them.
    track = is_grad_enabled()
    return Tensor(
        out.data,
        requires_grad=False,
        dtype=out.dtype,
        _parents=tuple(inputs) if track else (),
        _backward=backward if track else None,
    )
