"""A minimal reverse-mode autograd engine over NumPy.

Design follows the classic tape-free graph approach (each output tensor
holds references to its parents and a backward closure); all math is
vectorized NumPy. Every operation quantizes its output onto the tensor's
emulated dtype grid (see :mod:`repro.tensor.dtype`), so fp16/bf16 runs
faithfully reproduce rounding and overflow behaviour.

Gradients are accumulated in the tensor's own dtype: an fp16 tensor gets
fp16-quantized gradients, which is what makes dynamic loss scaling (in
:mod:`repro.amp`) observable and necessary, exactly as on real hardware.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.dtype import DTypeSpec, as_dtype, promote, quantize, storage_dtype

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones", "unbroadcast"]


class _GradMode(threading.local):
    enabled = True


_grad_mode = _GradMode()


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the ``with`` block (thread-local)."""
    prev = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = prev


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _grad_mode.enabled


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting.

    Sums over axes that were added or expanded by broadcasting; the inverse
    of the implicit expand in forward ops.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that broadcasting prepended.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(f"cannot unbroadcast grad of shape {grad.shape} to {shape}")
    return grad


class Tensor:
    """An n-dimensional array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like initial value; stored quantized to ``dtype``.
    requires_grad:
        Whether to accumulate gradients into ``.grad`` on backward.
    dtype:
        Emulated dtype name ("fp64", "fp32", "fp16", "bf16").
    name:
        Optional label used in error messages and parameter listings.
    """

    __slots__ = ("data", "dtype", "requires_grad", "grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: Any,
        requires_grad: bool = False,
        dtype: str | DTypeSpec = "fp32",
        name: str | None = None,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], Sequence[np.ndarray | None]] | None = None,
    ):
        spec = as_dtype(dtype)
        self.data: np.ndarray = quantize(np.asarray(data), spec)
        self.dtype: DTypeSpec = spec
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying storage array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Python scalar for 1-element tensors."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_err()

    def _item_err(self) -> float:
        raise ShapeError(f"item() requires a 1-element tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.dtype, name=self.name)

    def astype(self, dtype: str | DTypeSpec) -> "Tensor":
        """Cast to another emulated dtype (differentiable: grad casts back)."""
        spec = as_dtype(dtype)
        out = _make(quantize(self.data, spec), spec, (self,),
                    lambda g: (g.astype(storage_dtype(self.dtype), copy=False),))
        return out

    # ------------------------------------------------------------------ #
    # Autograd
    # ------------------------------------------------------------------ #

    def _accumulate(self, g: np.ndarray) -> None:
        """Add ``g`` into ``.grad``, quantized to this tensor's dtype."""
        g = quantize(g, self.dtype)
        if self.grad is None:
            self.grad = g.copy()
        else:
            self.grad = quantize(self.grad + g, self.dtype)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (scalar outputs in practice). Gradients
        accumulate into ``.grad`` of every reachable tensor that has
        ``requires_grad=True``; call :meth:`zero_grad` between steps.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.shape:
                raise ShapeError(
                    f"backward grad shape {grad.shape} != tensor shape {self.shape}"
                )

        # Topological order via iterative DFS (recursion-free: deep MoE
        # stacks easily exceed Python's recursion limit).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad:
                node._accumulate(g)
            if node._backward is None:
                continue
            parent_grads = node._backward(g)
            for parent, pg in zip(node._parents, parent_grads):
                if pg is None:
                    continue
                pid = id(parent)
                if pid in grads:
                    grads[pid] = grads[pid] + pg
                else:
                    grads[pid] = pg

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Operator sugar (implementations live in repro.tensor.ops)
    # ------------------------------------------------------------------ #

    def __add__(self, other):  # noqa: D105
        from repro.tensor import ops
        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):  # noqa: D105
        from repro.tensor import ops
        return ops.sub(self, other)

    def __rsub__(self, other):  # noqa: D105
        from repro.tensor import ops
        return ops.sub(other, self)

    def __mul__(self, other):  # noqa: D105
        from repro.tensor import ops
        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):  # noqa: D105
        from repro.tensor import ops
        return ops.div(self, other)

    def __rtruediv__(self, other):  # noqa: D105
        from repro.tensor import ops
        return ops.div(other, self)

    def __neg__(self):  # noqa: D105
        from repro.tensor import ops
        return ops.neg(self)

    def __matmul__(self, other):  # noqa: D105
        from repro.tensor import ops
        return ops.matmul(self, other)

    def __pow__(self, exponent):  # noqa: D105
        from repro.tensor import ops
        return ops.power(self, exponent)

    def __getitem__(self, index):  # noqa: D105
        from repro.tensor import ops
        return ops.getitem(self, index)

    def reshape(self, *shape):  # noqa: D102
        from repro.tensor import ops
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, *axes):  # noqa: D102
        from repro.tensor import ops
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return ops.transpose(self, axes or None)

    def sum(self, axis=None, keepdims=False):  # noqa: D102
        from repro.tensor import ops
        return ops.sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):  # noqa: D102
        from repro.tensor import ops
        return ops.mean(self, axis=axis, keepdims=keepdims)

    def exp(self):  # noqa: D102
        from repro.tensor import ops
        return ops.exp(self)

    def log(self):  # noqa: D102
        from repro.tensor import ops
        return ops.log(self)

    def tanh(self):  # noqa: D102
        from repro.tensor import ops
        return ops.tanh(self)

    def sqrt(self):  # noqa: D102
        from repro.tensor import ops
        return ops.power(self, 0.5)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"Tensor(shape={self.shape}, dtype={self.dtype.name}, "
            f"requires_grad={self.requires_grad}{label})"
        )


def _make(
    data: np.ndarray,
    dtype: DTypeSpec,
    parents: tuple[Tensor, ...],
    backward: Callable[[np.ndarray], Sequence[np.ndarray | None]] | None,
) -> Tensor:
    """Internal op-output constructor; drops the graph under no_grad."""
    track = _grad_mode.enabled and any(p.requires_grad or p._parents for p in parents)
    return Tensor(
        data,
        requires_grad=False,
        dtype=dtype,
        _parents=parents if track else (),
        _backward=backward if track else None,
    )


def tensor(data: Any, requires_grad: bool = False, dtype: str | DTypeSpec = "fp32") -> Tensor:
    """Construct a leaf tensor (convenience alias of the constructor)."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape: int | Iterable[int], dtype: str | DTypeSpec = "fp32", requires_grad: bool = False) -> Tensor:
    """A tensor of zeros."""
    shape = (shape,) if isinstance(shape, int) else tuple(shape)
    return Tensor(np.zeros(shape), requires_grad=requires_grad, dtype=dtype)


def ones(shape: int | Iterable[int], dtype: str | DTypeSpec = "fp32", requires_grad: bool = False) -> Tensor:
    """A tensor of ones."""
    shape = (shape,) if isinstance(shape, int) else tuple(shape)
    return Tensor(np.ones(shape), requires_grad=requires_grad, dtype=dtype)


def _coerce(x: Any, like: Tensor) -> Tensor:
    """Promote scalars/arrays to tensors matching ``like``'s dtype."""
    if isinstance(x, Tensor):
        return x
    return Tensor(np.asarray(x), dtype=like.dtype)


def result_dtype(a: Tensor, b: Tensor) -> DTypeSpec:
    """Output dtype for a binary op."""
    return promote(a.dtype, b.dtype)
