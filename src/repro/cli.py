"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``train``       single-process training on the synthetic corpus
``distributed`` simulated multi-rank training with virtual timing; any
                registered strategy (dp/ep/moda/tp/zero/pipeline and
                composites) via ``--ep/--tp/--pp/--zero/--strategy``
``resilient``   supervised fault-tolerant training: stochastic faults
                (``--mtbf``, ``--dead-node``, ``--straggler``), capped
                backoff, and elastic shrink-and-reshard restarts
``serve``       KV-cached continuous-batching inference over expert-
                parallel ranks (``--requests/--arrival-rate/--ep/--slo-ms``)
``report``      render a run's JSONL metrics file into a deterministic
                markdown run report (phases, comm, router, SLO)
``plan``        auto-parallelism planner: enumerate every launchable
                (dp, tp, pp, ep, zero) layout, rank analytically, verify
                the top-k with short simulated runs, calibrate, and emit
                a deterministic markdown plan report
``project``     brain-scale performance/memory projection
``configs``     print the model configuration table

Every command prints human-readable output and (optionally) logs metrics
to a JSONL/CSV file via ``--metrics``. ``distributed``, ``resilient`` and
``serve`` accept ``--observe``: the run carries a live metric registry +
router telemetry, and JSONL metrics gain typed observability records
(``record`` ∈ ``context``/``comm``/``router``/``metric``) that ``report``
renders.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import (
    BRAIN_SCALE_CONFIGS,
    build_model,
    generate,
    small_config,
    tiny_config,
)
from repro.train import Adam, Trainer, WarmupCosineLR
from repro.train.metrics import MetricsLogger
from repro.utils import format_bytes, format_count, format_flops, format_time

__all__ = ["main", "build_parser"]

_CONFIGS = {"tiny": tiny_config, "small": small_config}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BaGuaLu reproduction: MoE training on a simulated Sunway",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="single-process training run")
    p_train.add_argument("--config", choices=sorted(_CONFIGS), default="tiny")
    p_train.add_argument("--steps", type=int, default=100)
    p_train.add_argument("--batch-size", type=int, default=8)
    p_train.add_argument("--seq-len", type=int, default=16)
    p_train.add_argument("--lr", type=float, default=3e-3)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--experts", type=int, default=None)
    p_train.add_argument("--gate", choices=["topk", "noisy-topk", "balanced", "random"],
                         default=None)
    p_train.add_argument("--fp16", action="store_true", help="mixed precision")
    p_train.add_argument("--metrics", default=None, help="JSONL/CSV metrics file")
    p_train.add_argument("--sample", type=int, default=0,
                         help="generate N tokens after training")

    p_dist = sub.add_parser(
        "distributed", help="simulated distributed training (any strategy)"
    )
    p_dist.add_argument("--config", choices=sorted(_CONFIGS), default="tiny")
    p_dist.add_argument("--world", type=int, default=8)
    p_dist.add_argument("--ep", type=int, default=4)
    p_dist.add_argument("--tp", type=int, default=1,
                        help="tensor-parallel width (shards dense FFNs)")
    p_dist.add_argument("--pp", type=int, default=1,
                        help="pipeline stages (GPipe)")
    p_dist.add_argument("--zero", type=int, default=1,
                        help="ZeRO-1 optimizer-state shards (1 = off)")
    p_dist.add_argument("--strategy", default="auto",
                        help="registry name (see repro.parallel."
                             "available_strategies()) or 'auto'")
    p_dist.add_argument("--microbatches", type=int, default=2,
                        help="microbatches per step (pipeline strategies)")
    p_dist.add_argument("--steps", type=int, default=5)
    p_dist.add_argument("--batch-size", type=int, default=4)
    p_dist.add_argument("--seq-len", type=int, default=16)
    p_dist.add_argument("--supernode", type=int, default=256)
    p_dist.add_argument("--alltoall", choices=["flat", "hierarchical"], default=None)
    p_dist.add_argument("--allreduce", choices=["ring", "tree", "hierarchical"],
                        default=None)
    p_dist.add_argument("--overlap-chunks", type=int, default=1,
                        help="comm/compute overlap width: >1 pipelines "
                             "expert dispatch in chunks and overlaps the "
                             "gradient allreduce with backward compute "
                             "(bitwise-identical losses)")
    p_dist.add_argument("--fp16", action="store_true")
    p_dist.add_argument("--seed", type=int, default=0)
    p_dist.add_argument("--metrics", default=None)
    p_dist.add_argument("--trace", default=None, metavar="OUT_JSON",
                        help="write a Chrome-tracing JSON of the run")
    p_dist.add_argument("--observe", action="store_true",
                        help="carry a live metric registry + router "
                             "telemetry; JSONL metrics gain typed "
                             "observability records for 'report'")

    p_3d = sub.add_parser("3d", help="simulated pipe x data x expert training")
    p_3d.add_argument("--config", choices=sorted(_CONFIGS), default="tiny")
    p_3d.add_argument("--world", type=int, default=8)
    p_3d.add_argument("--pipe", type=int, default=2)
    p_3d.add_argument("--ep", type=int, default=2)
    p_3d.add_argument("--steps", type=int, default=4)
    p_3d.add_argument("--microbatches", type=int, default=2)
    p_3d.add_argument("--batch-size", type=int, default=4)
    p_3d.add_argument("--seq-len", type=int, default=16)
    p_3d.add_argument("--seed", type=int, default=0)

    p_res = sub.add_parser(
        "resilient",
        help="supervised fault-tolerant training (stochastic faults, "
             "backoff, elastic shrink-and-reshard)",
    )
    p_res.add_argument("--config", choices=sorted(_CONFIGS), default="tiny")
    p_res.add_argument("--world", type=int, default=4)
    p_res.add_argument("--ep", type=int, default=2)
    p_res.add_argument("--steps", type=int, default=8)
    p_res.add_argument("--batch-size", type=int, default=4)
    p_res.add_argument("--seq-len", type=int, default=8)
    p_res.add_argument("--checkpoint-every", type=int, default=2)
    p_res.add_argument("--checkpoint-dir", default=None,
                       help="snapshot directory (default: a fresh temp dir)")
    p_res.add_argument("--seed", type=int, default=0,
                       help="seed for both training and the fault model")
    p_res.add_argument("--mtbf", type=float, default=None,
                       help="per-node mean time between failures "
                            "(virtual seconds; exponential draws)")
    p_res.add_argument("--dead-node", type=int, action="append", default=None,
                       metavar="NODE", help="permanently failed node "
                       "(repeatable)")
    p_res.add_argument("--straggler", action="append", default=None,
                       metavar="NODE:FACTOR",
                       help="slow node, e.g. '2:1.5' (repeatable)")
    p_res.add_argument("--elastic", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="shrink-and-reshard after repeated failures "
                            "of one node (--no-elastic: always relaunch "
                            "at full width)")
    p_res.add_argument("--shrink-after", type=int, default=2,
                       help="blamed failures on one node before shrinking")
    p_res.add_argument("--min-world", type=int, default=1)
    p_res.add_argument("--max-restarts", type=int, default=5)
    p_res.add_argument("--backoff-base", type=float, default=5.0,
                       help="first-retry backoff (virtual seconds)")
    p_res.add_argument("--metrics", default=None,
                       help="JSONL metrics file (losses + lifecycle events)")
    p_res.add_argument("--trace", default=None, metavar="OUT_JSON",
                       help="write a Chrome-tracing JSON of the session")
    p_res.add_argument("--observe", action="store_true",
                       help="carry a live metric registry + router "
                            "telemetry across launches")

    p_srv = sub.add_parser(
        "serve",
        help="KV-cached continuous-batching inference on simulated EP ranks",
    )
    p_srv.add_argument("--config", choices=sorted(_CONFIGS), default="tiny")
    p_srv.add_argument("--ep", type=int, default=4,
                       help="expert-parallel world size")
    p_srv.add_argument("--requests", type=int, default=16)
    p_srv.add_argument("--arrival-rate", type=float, default=None,
                       help="requests per *virtual* second (Poisson); "
                            "default: all arrive at t=0")
    p_srv.add_argument("--slo-ms", type=float, default=None,
                       help="per-request completion deadline in virtual "
                            "milliseconds (expired requests are evicted)")
    p_srv.add_argument("--prompt-len", type=int, default=8)
    p_srv.add_argument("--prompt-len-max", type=int, default=None,
                       help="ragged prompts in [--prompt-len, this]")
    p_srv.add_argument("--max-new", type=int, default=16)
    p_srv.add_argument("--batch", type=int, default=8,
                       help="max concurrently active requests per rank")
    p_srv.add_argument("--expert-capacity", type=int, default=None,
                       help="absolute per-expert rows per step "
                            "(inference-side capacity; drops overflow)")
    p_srv.add_argument("--alltoall", choices=["flat", "hierarchical"],
                       default=None)
    p_srv.add_argument("--overlap-chunks", type=int, default=1,
                        help="chunked async expert dispatch width for "
                             "decode alltoalls (>1 overlaps dispatch with "
                             "expert compute)")
    p_srv.add_argument("--supernode", type=int, default=256)
    p_srv.add_argument("--replicas", type=int, default=1,
                       help="serving replicas behind the retry router "
                            "(>1 or --mtbf engages the fleet path)")
    p_srv.add_argument("--mtbf", type=float, default=None,
                       help="mean virtual seconds between crashes per "
                            "replica (fault injection)")
    p_srv.add_argument("--retry-max", type=int, default=3,
                       help="re-dispatches per request before explicit "
                            "eviction")
    p_srv.add_argument("--hedge-after-ms", type=float, default=None,
                       help="speculatively re-dispatch a request to a "
                            "second replica past this service latency")
    p_srv.add_argument("--request-timeout-ms", type=float, default=None,
                       help="force a retry when a request's service "
                            "latency exceeds this")
    p_srv.add_argument("--backoff-base", type=float, default=0.5,
                       help="first-retry backoff for a crashed replica "
                            "(virtual seconds, capped exponential)")
    p_srv.add_argument("--tiers", type=int, default=1,
                       help="SLO classes for the workload (tier 0 is "
                            "premium)")
    p_srv.add_argument("--shed-tier", type=int, default=None,
                       help="shed arrivals of this tier and above when "
                            "the backlog exceeds --queue-depth")
    p_srv.add_argument("--queue-depth", type=int, default=None,
                       help="backlog cap that triggers shedding "
                            "(default: 2x --batch when --shed-tier set)")
    p_srv.add_argument("--kv-budget", type=int, default=None,
                       help="total committed KV tokens per rank; over "
                            "budget, the lowest-priority slot is evicted")
    p_srv.add_argument("--sample", action="store_true",
                       help="sample instead of greedy decoding")
    p_srv.add_argument("--baseline", action="store_true",
                       help="also run the sequential uncached generate() "
                            "baseline and report the speedup")
    p_srv.add_argument("--seed", type=int, default=0)
    p_srv.add_argument("--metrics", default=None,
                       help="JSONL/CSV metrics file (summary + per-request "
                            "records on JSONL)")
    p_srv.add_argument("--trace", default=None, metavar="OUT_JSON",
                       help="write a Chrome-tracing JSON of the run")
    p_srv.add_argument("--observe", action="store_true",
                       help="carry a live metric registry + router "
                            "telemetry; JSONL metrics gain typed "
                            "observability records for 'report'")
    p_srv.add_argument("--arrival-ramp", default=None, metavar="T:RATE,...",
                       help="piecewise-constant Poisson arrival schedule, "
                            "e.g. '0:2,10:8,20:32' (first segment must "
                            "start at 0; excludes --arrival-rate)")
    p_srv.add_argument("--autoscale", action="store_true",
                       help="grow/shrink the replica set from windowed "
                            "TTFT p95 + backlog signals (engages the "
                            "fleet path; --replicas is the floor)")
    p_srv.add_argument("--max-replicas", type=int, default=4,
                       help="autoscaler ceiling on live replicas")
    p_srv.add_argument("--ttft-slo-ms", type=float, default=None,
                       help="premium-tier TTFT objective in virtual ms; "
                            "runs a burn-rate SLO monitor (and sets the "
                            "autoscaler target, default 500ms)")
    p_srv.add_argument("--span-dump", default=None, metavar="OUT_JSON",
                       help="write the per-request span trees as "
                            "deterministic JSON (implies --observe)")

    p_rep = sub.add_parser(
        "report",
        help="render a JSONL metrics file into a markdown run report",
    )
    p_rep.add_argument("metrics", help="JSONL metrics file from a run "
                                       "(--metrics out.jsonl)")
    p_rep.add_argument("--out", default=None, metavar="OUT_MD",
                       help="write the report here (default: stdout)")
    p_rep.add_argument("--title", default=None,
                       help="report title (default: derived from the file)")

    from repro.network.presets import CLUSTER_PRESETS

    p_plan = sub.add_parser(
        "plan",
        help="search parallel layouts: enumerate, rank analytically, "
             "verify the top-k with short simulated runs",
    )
    p_plan.add_argument("--config", choices=sorted(_CONFIGS), default="tiny")
    p_plan.add_argument("--nodes", type=int, default=8)
    p_plan.add_argument("--cluster", choices=sorted(CLUSTER_PRESETS),
                        default="toy",
                        help="cluster preset (network + machine models)")
    p_plan.add_argument("--batch-size", type=int, default=4,
                        help="sequences per rank per step")
    p_plan.add_argument("--seq-len", type=int, default=16)
    p_plan.add_argument("--microbatches", type=int, default=2,
                        help="microbatches per step for pipeline candidates")
    p_plan.add_argument("--experts", type=int, default=None,
                        help="override the model's expert count")
    p_plan.add_argument("--layers", type=int, default=None,
                        help="override the model's layer count")
    p_plan.add_argument("--moe-every", type=int, default=None,
                        help="override MoE block spacing (2 = alternate "
                             "dense/MoE, giving TP something to shard)")
    p_plan.add_argument("--max-tp", type=int, default=8)
    p_plan.add_argument("--max-zero", type=int, default=8)
    p_plan.add_argument("--overlap-chunks", type=int, default=1,
                        help="price candidates with this comm/compute "
                             "overlap width (pipeline layouts stay at 1)")
    p_plan.add_argument("--top-k", type=int, default=2,
                        help="candidates to verify with measured runs")
    p_plan.add_argument("--steps", type=int, default=2,
                        help="training steps per verification run")
    p_plan.add_argument("--verify", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="--no-verify skips the measured runs (ranking "
                             "only)")
    p_plan.add_argument("--out", default=None, metavar="OUT_MD",
                        help="write the markdown plan report here")
    p_plan.add_argument("--metrics", default=None,
                        help="write typed planner records (JSONL)")

    p_proj = sub.add_parser("project", help="brain-scale projection")
    p_proj.add_argument("--model", choices=sorted(BRAIN_SCALE_CONFIGS), default="14.5T")
    p_proj.add_argument("--nodes", type=int, default=96_000)
    p_proj.add_argument("--micro-batch", type=int, default=8)
    p_proj.add_argument("--zero", type=int, default=64)
    p_proj.add_argument("--recompute", action="store_true")
    p_proj.add_argument("--imbalance", type=float, default=1.05)

    sub.add_parser("configs", help="print the model configuration table")
    return parser


def _cmd_train(args: argparse.Namespace) -> int:
    cfg = _CONFIGS[args.config]()
    overrides = {}
    if args.experts is not None:
        overrides["num_experts"] = args.experts
    if args.gate is not None:
        overrides["gate"] = args.gate
    if overrides:
        cfg = cfg.scaled(**overrides)
    model = build_model(cfg, seed=args.seed)
    scaler = None
    if args.fp16:
        from repro.amp import DynamicLossScaler, cast_model

        cast_model(model, "fp16")
        scaler = DynamicLossScaler(init_scale=2.0**12, growth_interval=50)
    print(f"training {cfg.name}: {format_count(model.num_parameters())} params, "
          f"{cfg.num_experts} experts" + (" [fp16]" if args.fp16 else ""))

    corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=args.seed)
    loader = ShardedLoader(corpus, args.batch_size, args.seq_len)
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=args.lr),
        schedule=WarmupCosineLR(args.lr, max(args.steps // 10, 1), args.steps),
        scaler=scaler,
        grad_clip=1.0,
    )
    logger = MetricsLogger(args.metrics) if args.metrics else None
    try:
        history = trainer.fit(
            loader,
            args.steps,
            log_every=max(args.steps // 5, 1),
            on_step=(lambda r: logger.log(
                {"step": r.step, "loss": r.loss, "lr": r.lr, "skipped": r.skipped}
            )) if logger else None,
        )
    finally:
        if logger:
            logger.close()
    print(f"final loss: {history[-1].loss:.4f} (from {history[0].loss:.4f})")

    if args.sample > 0:
        prompt = np.array([[corpus.sample(1)[0]]])
        out = generate(model, prompt, args.sample, greedy=True)
        print("greedy sample:", out[0].tolist())
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from repro.network import sunway_network
    from repro.parallel import TrainingRunConfig, run_distributed_training

    cfg = _CONFIGS[args.config]()
    if cfg.num_experts % args.ep != 0:
        cfg = cfg.scaled(num_experts=args.ep * max(cfg.num_experts // args.ep, 1))
    if args.tp > 1 and cfg.moe_every == 1:
        # TP shards dense FFN blocks; give the model some to shard.
        cfg = cfg.scaled(n_layers=max(cfg.n_layers, 4), moe_every=2)
    run_cfg = TrainingRunConfig(
        model=cfg,
        world_size=args.world,
        ep_size=args.ep,
        num_steps=args.steps,
        batch_size=args.batch_size,
        seq_len=args.seq_len,
        alltoall_algorithm=args.alltoall,
        allreduce_algorithm=args.allreduce,
        mixed_precision=args.fp16,
        seed=args.seed,
        tp_size=args.tp,
        pp_size=args.pp,
        zero_shards=args.zero,
        num_microbatches=args.microbatches,
        overlap_chunks=args.overlap_chunks,
        strategy=args.strategy,
        trace=args.trace is not None,
        observe=args.observe,
    )
    net = sunway_network(args.world, supernode_size=args.supernode)
    print(f"launching {args.world} simulated ranks via strategy "
          f"'{run_cfg.resolve_strategy().name}' "
          f"({run_cfg.layout.describe()}, supernode={args.supernode})")
    result = run_distributed_training(run_cfg, network=net)
    logger = MetricsLogger(args.metrics) if args.metrics else None
    try:
        for step, loss in enumerate(result.losses):
            print(f"  step {step:3d}  global loss {loss:.4f}")
            if logger:
                logger.log({"step": step, "loss": loss})
        if logger and logger.path.suffix == ".jsonl" and result.context is not None:
            # CSV headers are fixed by the per-step records, so the
            # context snapshot (different keys) goes to JSONL sinks only.
            logger.log_context(result.context, strategy=result.meta["strategy"])
            if args.observe:
                from repro.obs import collect_run_records

                logger.log_events(collect_run_records(result.context, network=net))
    finally:
        if logger:
            logger.close()
    if args.trace:
        path = result.context.write_chrome_trace(args.trace)
        print(f"chrome trace       : {path} "
              f"({len(result.trace)} events)")
    print(f"simulated step time: {format_time(result.step_time)}")
    print(f"load imbalance     : {result.load_imbalance:.2f}")
    for phase, seconds in result.phase_seconds.items():
        print(f"  phase {phase:<10}: {format_time(seconds)}")
    print(f"traffic            : {format_bytes(result.traffic['total_bytes'])}")
    return 0


def _cmd_3d(args: argparse.Namespace) -> int:
    from repro.data import ShardedLoader
    from repro.network import sunway_network
    from repro.parallel import Trainer3D, build_groups3d
    from repro.simmpi import run_spmd
    from repro.train import Adam

    cfg = _CONFIGS[args.config]()
    if cfg.num_experts % args.ep != 0:
        cfg = cfg.scaled(num_experts=args.ep * max(cfg.num_experts // args.ep, 1))

    def program(comm):
        groups = build_groups3d(comm, pipe_size=args.pipe, ep_size=args.ep)
        trainer = Trainer3D(cfg, groups, num_microbatches=args.microbatches,
                            seed=args.seed)
        trainer.attach_optimizer(Adam(trainer.stage.parameters(), lr=3e-3))
        corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9,
                                 seed=args.seed)
        loader = ShardedLoader(corpus, args.batch_size, args.seq_len,
                               dp_rank=groups.pipeline_id,
                               dp_size=groups.grid.plane_size)
        return [trainer.train_step(loader.get_batch(s)).global_loss
                for s in range(args.steps)]

    print(f"3D grid: pipe={args.pipe} x dp="
          f"{args.world // args.pipe // args.ep} x ep={args.ep} "
          f"on {args.world} simulated ranks")
    res = run_spmd(program, args.world, network=sunway_network(args.world),
                   timeout=600)
    for step, loss in enumerate(res.returns[0]):
        print(f"  step {step:3d}  global loss {loss:.4f}")
    print(f"simulated time: {format_time(res.simulated_time)}")
    return 0


def _cmd_resilient(args: argparse.Namespace) -> int:
    import tempfile

    from repro.errors import ConfigError
    from repro.resilience import ElasticRunConfig, Supervisor
    from repro.simmpi import FaultModel

    cfg = _CONFIGS[args.config]()
    if cfg.num_experts % args.ep != 0:
        cfg = cfg.scaled(num_experts=args.ep * max(cfg.num_experts // args.ep, 1))

    stragglers = {}
    for spec in args.straggler or []:
        try:
            node, factor = spec.split(":")
            stragglers[int(node)] = float(factor)
        except ValueError:
            raise ConfigError(
                f"--straggler wants NODE:FACTOR (e.g. 2:1.5), got {spec!r}"
            ) from None
    faults = None
    if args.mtbf is not None or args.dead_node or stragglers:
        faults = FaultModel(
            seed=args.seed,
            mtbf=args.mtbf,
            dead_nodes=tuple(args.dead_node or ()),
            stragglers=stragglers or None,
        )

    ckpt_dir = args.checkpoint_dir or tempfile.mkdtemp(prefix="repro-ckpt-")
    run_cfg = ElasticRunConfig(
        model=cfg,
        world_size=args.world,
        ep_size=args.ep,
        total_steps=args.steps,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=ckpt_dir,
        batch_size=args.batch_size,
        seq_len=args.seq_len,
        seed=args.seed,
        max_restarts=args.max_restarts,
        backoff_base=args.backoff_base,
        elastic=args.elastic,
        shrink_after=args.shrink_after,
        min_world_size=args.min_world,
        trace=args.trace is not None,
        observe=args.observe,
    )
    fault_desc = "healthy machine" if faults is None else (
        f"mtbf={args.mtbf} dead={tuple(args.dead_node or ())} "
        f"stragglers={stragglers or {}}"
    )
    print(f"supervising {args.world} ranks (ep={args.ep}) for {args.steps} "
          f"steps [{fault_desc}]")
    print(f"checkpoints: {ckpt_dir}")
    result = Supervisor(run_cfg, faults=faults).run()

    for event in result.context.events:
        extra = {k: v for k, v in event.items() if k not in ("kind", "t")}
        detail = " ".join(f"{k}={v}" for k, v in extra.items())
        print(f"  [t={event['t']:.3g}s] {event['kind']:<16} {detail}")
    for step, loss in zip(
        range(result.first_step, result.first_step + len(result.losses)),
        result.losses,
    ):
        print(f"  step {step:3d}  global loss {loss:.4f}")
    print(f"restarts / shrinks : {result.restarts} / {result.shrinks}")
    print(f"world history      : {' -> '.join(map(str, result.world_history))}")
    print(f"lost step-work     : {result.lost_steps} steps")
    print(f"useful / lost / backoff time: {format_time(result.useful_time)} / "
          f"{format_time(result.lost_time)} / {format_time(result.backoff_time)}")
    print(f"goodput            : {result.goodput:.1%}")
    print(f"availability       : {result.availability:.1%}")

    if args.metrics:
        with MetricsLogger(args.metrics) as logger:
            for step, loss in zip(
                range(result.first_step, result.first_step + len(result.losses)),
                result.losses,
            ):
                logger.log({"record": "step", "step": step, "loss": loss})
            if logger.path.suffix == ".jsonl":
                logger.log_events(result.context.events, record="event")
                logger.log({"record": "summary", **result.metrics_record()})
                if args.observe:
                    from repro.obs import collect_run_records

                    logger.log_events(collect_run_records(result.context))
        print(f"metrics            : {args.metrics}")
    if args.trace:
        path = result.context.write_chrome_trace(args.trace)
        print(f"chrome trace       : {path}")
    return 0


def _parse_arrival_ramp(spec: str):
    """``'0:2,10:8'`` -> ``((0.0, 2.0), (10.0, 8.0))`` for ServeConfig."""
    from repro.errors import ConfigError

    try:
        segments = tuple(
            (float(part.split(":")[0]), float(part.split(":")[1]))
            for part in spec.split(",")
        )
    except (ValueError, IndexError):
        raise ConfigError(
            f"--arrival-ramp expects 'T:RATE,T:RATE,...', got {spec!r}"
        ) from None
    return segments


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, run_sequential_baseline, run_serving

    cfg = _CONFIGS[args.config]()
    if cfg.num_experts % args.ep != 0:
        cfg = cfg.scaled(num_experts=args.ep * max(cfg.num_experts // args.ep, 1))
    serve_cfg = ServeConfig(
        model=cfg,
        ep_size=args.ep,
        num_requests=args.requests,
        arrival_rate=args.arrival_rate,
        arrival_ramp=(
            _parse_arrival_ramp(args.arrival_ramp)
            if args.arrival_ramp else None
        ),
        prompt_len=args.prompt_len,
        prompt_len_max=args.prompt_len_max,
        max_new_tokens=args.max_new,
        max_batch_size=args.batch,
        slo_ms=args.slo_ms,
        greedy=not args.sample,
        seed=args.seed,
        expert_capacity=args.expert_capacity,
        alltoall_algorithm=args.alltoall,
        overlap_chunks=args.overlap_chunks,
        supernode_size=args.supernode,
        num_tiers=args.tiers,
        shed_tier=args.shed_tier,
        queue_depth=args.queue_depth,
        kv_token_budget=args.kv_budget,
        trace=args.trace is not None,
        observe=args.observe or args.span_dump is not None,
    )
    if args.replicas > 1 or args.mtbf is not None or args.autoscale:
        return _serve_fleet(args, serve_cfg)
    if args.arrival_ramp:
        arrival = f"ramp {args.arrival_ramp}"
    elif args.arrival_rate is not None:
        arrival = f"Poisson {args.arrival_rate:g} req/s"
    else:
        arrival = "all at t=0"
    print(f"serving {args.requests} requests on {args.ep} EP ranks "
          f"(batch={args.batch}, {arrival}"
          + (f", slo={args.slo_ms:g}ms" if args.slo_ms is not None else "")
          + ")")
    result = run_serving(serve_cfg)
    if args.span_dump:
        from repro.serve.engine import emit_request_spans

        emit_request_spans(result)

    print(f"completed / evicted: {result.completed} / {result.evicted}")
    if result.shed:
        print(f"shed (admission)   : {result.shed}")
    print(f"decode tokens      : {result.decode_tokens}")
    print(f"makespan           : {format_time(result.simulated_time)}")
    print(f"throughput         : {result.throughput:,.0f} tok/s (virtual)")
    if result.ttft.count:
        print(f"ttft               : p50 {format_time(result.ttft.percentile(50))}"
              f"  p95 {format_time(result.ttft.percentile(95))}")
    if result.token_latency.count:
        print(f"token latency      : "
              f"p50 {format_time(result.token_latency.percentile(50))}"
              f"  p95 {format_time(result.token_latency.percentile(95))}")
    if result.context is not None:
        for phase, seconds in result.context.phase_seconds.items():
            print(f"  phase {phase:<10}: {format_time(seconds)}")

    baseline = None
    if args.baseline:
        baseline = run_sequential_baseline(serve_cfg)
        speedup = (result.throughput / baseline.throughput
                   if baseline.throughput > 0 else float("inf"))
        print(f"sequential baseline: {baseline.throughput:,.0f} tok/s in "
              f"{format_time(baseline.simulated_time)} "
              f"-> speedup {speedup:.2f}x")

    if args.metrics:
        with MetricsLogger(args.metrics) as logger:
            logger.log({"record": "summary", **result.metrics_record()})
            if baseline is not None:
                logger.log({"record": "baseline", **baseline.metrics_record()})
            if logger.path.suffix == ".jsonl":
                for rec in result.requests:
                    logger.log({"record": "request", **rec})
                if ((args.observe or args.span_dump is not None)
                        and result.context is not None):
                    from repro.obs import collect_run_records

                    logger.log_events(collect_run_records(result.context))
        print(f"metrics            : {args.metrics}")
    if args.trace:
        path = result.context.write_chrome_trace(args.trace)
        print(f"chrome trace       : {path}")
    if args.span_dump and result.context is not None:
        path = result.context.spans.write_json(args.span_dump)
        print(f"span dump          : {path}")
    return 0


def _serve_fleet(args: argparse.Namespace, serve_cfg) -> int:
    """The replicated path of ``serve``: router + retries + fault injection."""
    from repro.serve import FleetConfig, run_fleet_serving

    autoscale = None
    slos = ()
    ttft_slo_ms = args.ttft_slo_ms
    if args.autoscale:
        from repro.serve import AutoscalerConfig

        ttft_slo_ms = 500.0 if ttft_slo_ms is None else ttft_slo_ms
        autoscale = AutoscalerConfig(
            min_replicas=args.replicas,
            max_replicas=args.max_replicas,
            ttft_slo_s=ttft_slo_ms / 1e3,
        )
    if ttft_slo_ms is not None:
        from repro.obs import SLOObjective

        slos = (SLOObjective(name="premium-ttft", threshold_s=ttft_slo_ms / 1e3,
                             metric="ttft", tier=0),)
    fleet_cfg = FleetConfig(
        serve=serve_cfg,
        replicas=args.replicas,
        mtbf=args.mtbf,
        retry_max=args.retry_max,
        hedge_after_ms=args.hedge_after_ms,
        request_timeout_ms=args.request_timeout_ms,
        backoff_base=args.backoff_base,
        autoscale=autoscale,
        slos=slos,
    )
    faults = ("healthy" if args.mtbf is None
              else f"mtbf {args.mtbf:g}s per replica")
    scale = ("" if autoscale is None
             else f", autoscale {args.replicas}..{args.max_replicas}")
    print(f"fleet: {args.requests} requests over {args.replicas} replicas "
          f"x {args.ep} EP ranks ({faults}, retry_max={args.retry_max}"
          f"{scale})")
    result = run_fleet_serving(fleet_cfg)

    print(f"completed / evicted: {result.completed} / {result.evicted}")
    if result.shed:
        tiers = ", ".join(
            f"tier{t}={n}" for t, n in sorted(result.shed_by_tier.items())
        )
        print(f"shed (admission)   : {result.shed} ({tiers})")
    print(f"decode tokens      : {result.decode_tokens}")
    print(f"makespan           : {format_time(result.simulated_time)}")
    print(f"goodput            : {result.goodput:,.0f} tok/s (virtual)")
    print(f"crashes / retries  : {result.crashes} / {result.retries}")
    if result.hedges:
        print(f"hedges (wins)      : {result.hedges} ({result.hedge_wins})")
    if result.timeouts:
        print(f"timeouts           : {result.timeouts}")
    if result.config.autoscale is not None:
        print(f"autoscale          : +{result.scale_ups} / "
              f"-{result.scale_downs} "
              f"(final {result.replicas_final} replicas)")
    for mon in result.slo:
        s = mon.summary()
        print(f"slo {s['slo']:<14}: bad {s['bad']}/{s['good'] + s['bad']} "
              f"alerts fired {s['alerts_fired']} "
              f"resolved {s['alerts_resolved']}")
    if result.ttft.count:
        print(f"ttft               : p50 {format_time(result.ttft.percentile(50))}"
              f"  p95 {format_time(result.ttft.percentile(95))}")
    for stat in result.replica_stats:
        print(f"  replica {stat['replica']}: completed {stat['completed']:>4}  "
              f"crashes {stat['crashes']:>2}  "
              f"busy {format_time(stat['busy_time'])}")

    if args.metrics:
        with MetricsLogger(args.metrics) as logger:
            logger.log({"record": "summary", **result.metrics_record()})
            if logger.path.suffix == ".jsonl":
                for rec in result.requests:
                    logger.log({"record": "request", **rec})
                if ((args.observe or args.span_dump is not None)
                        and result.context is not None):
                    from repro.obs import collect_run_records

                    logger.log_events(collect_run_records(result.context))
        print(f"metrics            : {args.metrics}")
    if args.trace:
        path = result.context.write_chrome_trace(args.trace)
        print(f"chrome trace       : {path}")
    if args.span_dump and result.context is not None:
        path = result.context.spans.write_json(args.span_dump)
        print(f"span dump          : {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import generate_run_report

    report = generate_run_report(args.metrics, out_path=args.out, title=args.title)
    if args.out:
        print(f"report written to {args.out} "
              f"({len(report.splitlines())} lines)")
    else:
        print(report, end="")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.plan import (
        PlannerConfig,
        generate_plan_report,
        search_plans,
        verify_plans,
        write_plan_records,
    )

    cfg = _CONFIGS[args.config]()
    overrides = {}
    if args.experts is not None:
        overrides["num_experts"] = args.experts
    if args.layers is not None:
        overrides["n_layers"] = args.layers
    if args.moe_every is not None:
        overrides["moe_every"] = args.moe_every
    if overrides:
        cfg = cfg.scaled(**overrides)

    planner = PlannerConfig(
        model=cfg,
        num_nodes=args.nodes,
        cluster=args.cluster,
        micro_batch=args.batch_size,
        seq_len=args.seq_len,
        num_microbatches=args.microbatches,
        max_tp=args.max_tp,
        max_zero=args.max_zero,
        overlap_chunks=args.overlap_chunks,
    )
    print(f"planning {cfg.name} on {args.nodes} '{args.cluster}' nodes "
          f"(batch={args.batch_size}, seq={args.seq_len}"
          + (f", overlap_chunks={args.overlap_chunks}"
             if args.overlap_chunks > 1 else "")
          + ")")
    result = search_plans(planner)
    print(f"  {len(result.candidates)} launchable layouts, "
          f"{len(result.rejected)} rejected")
    if args.verify and result.candidates:
        result = verify_plans(result, top_k=args.top_k, num_steps=args.steps)

    for rank, cand in enumerate(result.candidates[:max(args.top_k, 5)], start=1):
        print(f"  #{rank}: {cand.layout.describe()} [{cand.strategy}] "
              f"-> {format_time(cand.predicted_step_time)}/step predicted")
    for v in result.verified:
        cal = ("" if v.calibrated_relative_error is None
               else f", {v.calibrated_relative_error:.1%} calibrated")
        print(f"  verified {v.candidate.layout.describe()}: measured "
              f"{format_time(v.measured_step_time)}/step "
              f"(error {v.relative_error:.1%}{cal})")
    if result.calibration is not None:
        print(f"  fitted compute efficiency: "
              f"{result.calibration.efficiency:.3f}")
    med = result.median_relative_error
    if med is not None:
        print(f"  median model-vs-measured error: {med:.1%}")
    if result.candidates:
        print(f"  best layout: {result.best.layout.describe()} "
              f"[{result.best.strategy}]")

    if args.out:
        report = generate_plan_report(
            result, out_path=args.out,
            title=f"Plan report: {cfg.name} on {args.nodes} "
                  f"{args.cluster} nodes",
        )
        print(f"  plan report: {args.out} ({len(report.splitlines())} lines)")
    if args.metrics:
        write_plan_records(result, args.metrics)
        print(f"  planner records: {args.metrics}")
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from repro.hardware import SUNWAY_NODE, sunway_machine
    from repro.network import sunway_network
    from repro.perf import ParallelPlan, StepModel, node_memory

    cfg = BRAIN_SCALE_CONFIGS[args.model]()
    instances = cfg.num_moe_layers * cfg.num_experts
    ep = args.nodes
    while ep > instances or args.nodes % ep != 0:
        ep //= 2
    plan = ParallelPlan(
        num_nodes=args.nodes, ep_size=ep, micro_batch=args.micro_batch,
        seq_len=2048, zero_shards=args.zero, recompute=args.recompute,
        load_imbalance=args.imbalance,
    )
    machine = sunway_machine(args.nodes)
    sm = StepModel(cfg, machine, sunway_network(args.nodes))
    mem = node_memory(cfg, plan)
    bd = sm.step_breakdown(plan)
    print(f"{cfg.name} on {args.nodes:,} nodes "
          f"({format_count(machine.total_cores)} cores)")
    print(f"  total params : {format_count(cfg.total_params)}")
    print(f"  node memory  : {format_bytes(mem.total)} "
          f"(budget {format_bytes(SUNWAY_NODE.memory_bytes)})")
    print(f"  step time    : {format_time(bd.total)} "
          f"(compute {bd.compute / bd.total:.0%})")
    print(f"  sustained    : {format_flops(sm.achieved_flops(plan))}")
    print(f"  tokens/s     : {format_count(sm.tokens_per_second(plan))}")
    return 0


def _cmd_configs(_args: argparse.Namespace) -> int:
    print(f"{'model':<16} {'layers':>6} {'d_model':>8} {'experts':>8} "
          f"{'total':>10} {'active/tok':>11}")
    for factory in list(_CONFIGS.values()) + [
        BRAIN_SCALE_CONFIGS[k] for k in sorted(BRAIN_SCALE_CONFIGS)
    ]:
        cfg = factory()
        print(f"{cfg.name:<16} {cfg.n_layers:>6} {cfg.d_model:>8} "
              f"{cfg.num_experts:>8} {format_count(cfg.total_params):>10} "
              f"{format_count(cfg.active_params_per_token):>11}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "distributed": _cmd_distributed,
        "3d": _cmd_3d,
        "resilient": _cmd_resilient,
        "serve": _cmd_serve,
        "report": _cmd_report,
        "plan": _cmd_plan,
        "project": _cmd_project,
        "configs": _cmd_configs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
