"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``train``       single-process training on the synthetic corpus
``distributed`` simulated multi-rank training with virtual timing; any
                registered strategy (dp/ep/moda/tp/zero/pipeline and
                composites) via ``--ep/--tp/--pp/--zero/--strategy``
``project``     brain-scale performance/memory projection
``configs``     print the model configuration table

Every command prints human-readable output and (optionally) logs metrics
to a JSONL/CSV file via ``--metrics``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import (
    BRAIN_SCALE_CONFIGS,
    build_model,
    generate,
    small_config,
    tiny_config,
)
from repro.train import Adam, Trainer, WarmupCosineLR
from repro.train.metrics import MetricsLogger
from repro.utils import format_bytes, format_count, format_flops, format_time

__all__ = ["main", "build_parser"]

_CONFIGS = {"tiny": tiny_config, "small": small_config}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BaGuaLu reproduction: MoE training on a simulated Sunway",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="single-process training run")
    p_train.add_argument("--config", choices=sorted(_CONFIGS), default="tiny")
    p_train.add_argument("--steps", type=int, default=100)
    p_train.add_argument("--batch-size", type=int, default=8)
    p_train.add_argument("--seq-len", type=int, default=16)
    p_train.add_argument("--lr", type=float, default=3e-3)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--experts", type=int, default=None)
    p_train.add_argument("--gate", choices=["topk", "noisy-topk", "balanced", "random"],
                         default=None)
    p_train.add_argument("--fp16", action="store_true", help="mixed precision")
    p_train.add_argument("--metrics", default=None, help="JSONL/CSV metrics file")
    p_train.add_argument("--sample", type=int, default=0,
                         help="generate N tokens after training")

    p_dist = sub.add_parser(
        "distributed", help="simulated distributed training (any strategy)"
    )
    p_dist.add_argument("--config", choices=sorted(_CONFIGS), default="tiny")
    p_dist.add_argument("--world", type=int, default=8)
    p_dist.add_argument("--ep", type=int, default=4)
    p_dist.add_argument("--tp", type=int, default=1,
                        help="tensor-parallel width (shards dense FFNs)")
    p_dist.add_argument("--pp", type=int, default=1,
                        help="pipeline stages (GPipe)")
    p_dist.add_argument("--zero", type=int, default=1,
                        help="ZeRO-1 optimizer-state shards (1 = off)")
    p_dist.add_argument("--strategy", default="auto",
                        help="registry name (see repro.parallel."
                             "available_strategies()) or 'auto'")
    p_dist.add_argument("--microbatches", type=int, default=2,
                        help="microbatches per step (pipeline strategies)")
    p_dist.add_argument("--steps", type=int, default=5)
    p_dist.add_argument("--batch-size", type=int, default=4)
    p_dist.add_argument("--seq-len", type=int, default=16)
    p_dist.add_argument("--supernode", type=int, default=256)
    p_dist.add_argument("--alltoall", choices=["flat", "hierarchical"], default=None)
    p_dist.add_argument("--allreduce", choices=["ring", "tree", "hierarchical"],
                        default=None)
    p_dist.add_argument("--fp16", action="store_true")
    p_dist.add_argument("--seed", type=int, default=0)
    p_dist.add_argument("--metrics", default=None)
    p_dist.add_argument("--trace", default=None, metavar="OUT_JSON",
                        help="write a Chrome-tracing JSON of the run")

    p_3d = sub.add_parser("3d", help="simulated pipe x data x expert training")
    p_3d.add_argument("--config", choices=sorted(_CONFIGS), default="tiny")
    p_3d.add_argument("--world", type=int, default=8)
    p_3d.add_argument("--pipe", type=int, default=2)
    p_3d.add_argument("--ep", type=int, default=2)
    p_3d.add_argument("--steps", type=int, default=4)
    p_3d.add_argument("--microbatches", type=int, default=2)
    p_3d.add_argument("--batch-size", type=int, default=4)
    p_3d.add_argument("--seq-len", type=int, default=16)
    p_3d.add_argument("--seed", type=int, default=0)

    p_proj = sub.add_parser("project", help="brain-scale projection")
    p_proj.add_argument("--model", choices=sorted(BRAIN_SCALE_CONFIGS), default="14.5T")
    p_proj.add_argument("--nodes", type=int, default=96_000)
    p_proj.add_argument("--micro-batch", type=int, default=8)
    p_proj.add_argument("--zero", type=int, default=64)
    p_proj.add_argument("--recompute", action="store_true")
    p_proj.add_argument("--imbalance", type=float, default=1.05)

    sub.add_parser("configs", help="print the model configuration table")
    return parser


def _cmd_train(args: argparse.Namespace) -> int:
    cfg = _CONFIGS[args.config]()
    overrides = {}
    if args.experts is not None:
        overrides["num_experts"] = args.experts
    if args.gate is not None:
        overrides["gate"] = args.gate
    if overrides:
        cfg = cfg.scaled(**overrides)
    model = build_model(cfg, seed=args.seed)
    scaler = None
    if args.fp16:
        from repro.amp import DynamicLossScaler, cast_model

        cast_model(model, "fp16")
        scaler = DynamicLossScaler(init_scale=2.0**12, growth_interval=50)
    print(f"training {cfg.name}: {format_count(model.num_parameters())} params, "
          f"{cfg.num_experts} experts" + (" [fp16]" if args.fp16 else ""))

    corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=args.seed)
    loader = ShardedLoader(corpus, args.batch_size, args.seq_len)
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=args.lr),
        schedule=WarmupCosineLR(args.lr, max(args.steps // 10, 1), args.steps),
        scaler=scaler,
        grad_clip=1.0,
    )
    logger = MetricsLogger(args.metrics) if args.metrics else None
    try:
        history = trainer.fit(
            loader,
            args.steps,
            log_every=max(args.steps // 5, 1),
            on_step=(lambda r: logger.log(
                {"step": r.step, "loss": r.loss, "lr": r.lr, "skipped": r.skipped}
            )) if logger else None,
        )
    finally:
        if logger:
            logger.close()
    print(f"final loss: {history[-1].loss:.4f} (from {history[0].loss:.4f})")

    if args.sample > 0:
        prompt = np.array([[corpus.sample(1)[0]]])
        out = generate(model, prompt, args.sample, greedy=True)
        print("greedy sample:", out[0].tolist())
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from repro.network import sunway_network
    from repro.parallel import TrainingRunConfig, run_distributed_training

    cfg = _CONFIGS[args.config]()
    if cfg.num_experts % args.ep != 0:
        cfg = cfg.scaled(num_experts=args.ep * max(cfg.num_experts // args.ep, 1))
    if args.tp > 1 and cfg.moe_every == 1:
        # TP shards dense FFN blocks; give the model some to shard.
        cfg = cfg.scaled(n_layers=max(cfg.n_layers, 4), moe_every=2)
    run_cfg = TrainingRunConfig(
        model=cfg,
        world_size=args.world,
        ep_size=args.ep,
        num_steps=args.steps,
        batch_size=args.batch_size,
        seq_len=args.seq_len,
        alltoall_algorithm=args.alltoall,
        allreduce_algorithm=args.allreduce,
        mixed_precision=args.fp16,
        seed=args.seed,
        tp_size=args.tp,
        pp_size=args.pp,
        zero_shards=args.zero,
        num_microbatches=args.microbatches,
        strategy=args.strategy,
        trace=args.trace is not None,
    )
    net = sunway_network(args.world, supernode_size=args.supernode)
    print(f"launching {args.world} simulated ranks via strategy "
          f"'{run_cfg.resolve_strategy().name}' "
          f"({run_cfg.layout.describe()}, supernode={args.supernode})")
    result = run_distributed_training(run_cfg, network=net)
    logger = MetricsLogger(args.metrics) if args.metrics else None
    try:
        for step, loss in enumerate(result.losses):
            print(f"  step {step:3d}  global loss {loss:.4f}")
            if logger:
                logger.log({"step": step, "loss": loss})
        if logger and logger.path.suffix == ".jsonl" and result.context is not None:
            # CSV headers are fixed by the per-step records, so the
            # context snapshot (different keys) goes to JSONL sinks only.
            logger.log_context(result.context, strategy=result.meta["strategy"])
    finally:
        if logger:
            logger.close()
    if args.trace:
        path = result.context.write_chrome_trace(args.trace)
        print(f"chrome trace       : {path} "
              f"({len(result.trace)} events)")
    print(f"simulated step time: {format_time(result.step_time)}")
    print(f"load imbalance     : {result.load_imbalance:.2f}")
    for phase, seconds in result.phase_seconds.items():
        print(f"  phase {phase:<10}: {format_time(seconds)}")
    print(f"traffic            : {format_bytes(result.traffic['total_bytes'])}")
    return 0


def _cmd_3d(args: argparse.Namespace) -> int:
    from repro.data import ShardedLoader
    from repro.network import sunway_network
    from repro.parallel import Trainer3D, build_groups3d
    from repro.simmpi import run_spmd
    from repro.train import Adam

    cfg = _CONFIGS[args.config]()
    if cfg.num_experts % args.ep != 0:
        cfg = cfg.scaled(num_experts=args.ep * max(cfg.num_experts // args.ep, 1))

    def program(comm):
        groups = build_groups3d(comm, pipe_size=args.pipe, ep_size=args.ep)
        trainer = Trainer3D(cfg, groups, num_microbatches=args.microbatches,
                            seed=args.seed)
        trainer.attach_optimizer(Adam(trainer.stage.parameters(), lr=3e-3))
        corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9,
                                 seed=args.seed)
        loader = ShardedLoader(corpus, args.batch_size, args.seq_len,
                               dp_rank=groups.pipeline_id,
                               dp_size=groups.grid.plane_size)
        return [trainer.train_step(loader.get_batch(s)).global_loss
                for s in range(args.steps)]

    print(f"3D grid: pipe={args.pipe} x dp="
          f"{args.world // args.pipe // args.ep} x ep={args.ep} "
          f"on {args.world} simulated ranks")
    res = run_spmd(program, args.world, network=sunway_network(args.world),
                   timeout=600)
    for step, loss in enumerate(res.returns[0]):
        print(f"  step {step:3d}  global loss {loss:.4f}")
    print(f"simulated time: {format_time(res.simulated_time)}")
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from repro.hardware import SUNWAY_NODE, sunway_machine
    from repro.network import sunway_network
    from repro.perf import ParallelPlan, StepModel, node_memory

    cfg = BRAIN_SCALE_CONFIGS[args.model]()
    instances = cfg.num_moe_layers * cfg.num_experts
    ep = args.nodes
    while ep > instances or args.nodes % ep != 0:
        ep //= 2
    plan = ParallelPlan(
        num_nodes=args.nodes, ep_size=ep, micro_batch=args.micro_batch,
        seq_len=2048, zero_shards=args.zero, recompute=args.recompute,
        load_imbalance=args.imbalance,
    )
    machine = sunway_machine(args.nodes)
    sm = StepModel(cfg, machine, sunway_network(args.nodes))
    mem = node_memory(cfg, plan)
    bd = sm.step_breakdown(plan)
    print(f"{cfg.name} on {args.nodes:,} nodes "
          f"({format_count(machine.total_cores)} cores)")
    print(f"  total params : {format_count(cfg.total_params)}")
    print(f"  node memory  : {format_bytes(mem.total)} "
          f"(budget {format_bytes(SUNWAY_NODE.memory_bytes)})")
    print(f"  step time    : {format_time(bd.total)} "
          f"(compute {bd.compute / bd.total:.0%})")
    print(f"  sustained    : {format_flops(sm.achieved_flops(plan))}")
    print(f"  tokens/s     : {format_count(sm.tokens_per_second(plan))}")
    return 0


def _cmd_configs(_args: argparse.Namespace) -> int:
    print(f"{'model':<16} {'layers':>6} {'d_model':>8} {'experts':>8} "
          f"{'total':>10} {'active/tok':>11}")
    for factory in list(_CONFIGS.values()) + [
        BRAIN_SCALE_CONFIGS[k] for k in sorted(BRAIN_SCALE_CONFIGS)
    ]:
        cfg = factory()
        print(f"{cfg.name:<16} {cfg.n_layers:>6} {cfg.d_model:>8} "
              f"{cfg.num_experts:>8} {format_count(cfg.total_params):>10} "
              f"{format_count(cfg.active_params_per_token):>11}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "distributed": _cmd_distributed,
        "3d": _cmd_3d,
        "project": _cmd_project,
        "configs": _cmd_configs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
