"""Capped exponential backoff, shared by training and serving recovery.

Both recovery drivers in this codebase wait between retries the same way:
the :class:`~repro.resilience.supervisor.Supervisor` before relaunching a
crashed training world, and the serving
:class:`~repro.serve.router.ReplicaRouter` before re-enlisting a crashed
replica or re-dispatching a failed request. The schedule used to live
inline in the supervisor; it is one policy object now, so the two drivers
cannot drift (a test asserts their schedules are identical).

The policy is *stateless*: ``delay(n)`` is a pure function of the attempt
count, and the optional jitter is derived from ``(seed, n)`` — the same
call always returns the same virtual-seconds wait, which keeps every
recovery timeline bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.seeding import derive_seed

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """``min(cap, base * factor**(n-1))`` virtual seconds before retry n.

    Parameters
    ----------
    base / factor / cap:
        First-retry wait, growth factor (>= 1), and ceiling, all in
        virtual seconds.
    jitter:
        Optional fraction in [0, 1): the delay is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]``, seeded by
        ``(seed, n)`` so the draw is deterministic per attempt index.
        0 (the default) reproduces the historical supervisor schedule
        exactly.
    """

    base: float = 5.0
    factor: float = 2.0
    cap: float = 60.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0 or self.cap < 0 or self.factor < 1.0:
            raise ConfigError(
                "backoff wants base >= 0, cap >= 0 and factor >= 1.0; got "
                f"base={self.base} factor={self.factor} cap={self.cap}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, consecutive: int) -> float:
        """Wait before the ``consecutive``-th consecutive retry (1-based)."""
        if consecutive < 1:
            raise ConfigError(
                f"consecutive failure count must be >= 1, got {consecutive}"
            )
        wait = min(self.cap, self.base * self.factor ** (consecutive - 1))
        if self.jitter > 0.0:
            rng = np.random.default_rng(
                derive_seed(self.seed, "backoff", consecutive)
            )
            wait *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return wait

    def schedule(self, retries: int) -> list[float]:
        """The first ``retries`` delays, in order (handy for tests/docs)."""
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        return [self.delay(n) for n in range(1, retries + 1)]
