"""Recovery supervisor: classify, back off, restart — and shrink if needed.

At BaGuaLu scale (96,000 nodes / 37M cores), failures are not
exceptional; they are the steady state. The original system survived
them with checkpoint-restart. This module reproduces that loop on the
simulated machine and extends it with what production schedulers add on
top of plain restart:

* **failure classification** — a rank killed by the fault model
  (:class:`~repro.errors.FaultInjected`), a hang from dropped messages
  (:class:`~repro.errors.DeadlockError`) and a loss-scale blow-up
  (:class:`~repro.errors.OverflowDetected`) are all *modelled* failures
  and recoverable; programming errors propagate immediately, exactly as
  :mod:`repro.errors` prescribes;
* **capped exponential backoff** — consecutive failures wait
  ``base * factor**(n-1)`` virtual seconds (capped) before relaunching,
  charged to the session clock and recorded as a ``backoff`` phase;
* **blame-driven elastic restart** — when the same node keeps killing
  runs (``shrink_after`` strikes), the supervisor excludes it from the
  fault model's rank↦node map, halves the world, and resumes from the
  latest verified snapshot. The layout-independent checkpoint format
  (:mod:`repro.parallel.dist_checkpoint`) reshards experts and optimizer
  state into the new world, and the fold-carry driver
  (:mod:`repro.resilience.elastic`) reproduces the full-world loss
  trajectory on the shrunken world;
* **goodput accounting** — every launch, failure, backoff, shrink and
  reshard lands in one session :class:`~repro.simmpi.RunContext`
  (absorbing each launch's own context, including the partial context of
  crashed attempts), yielding virtual-time goodput, availability,
  lost step-work and restart overhead.

All supervisor time is *virtual* (simulated-machine seconds), so
goodput numbers are reproducible bit for bit across hosts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import (
    CommunicatorError,
    ConfigError,
    DeadlockError,
    FaultInjected,
    OverflowDetected,
    ReproError,
)
from repro.models.configs import ModelConfig
from repro.parallel.dist_checkpoint import latest_snapshot
from repro.parallel.runner import TrainingRunConfig
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.elastic import SegmentProgress, SegmentSpec, run_elastic_segment
from repro.simmpi import RunContext, run_spmd

__all__ = [
    "ElasticRunConfig",
    "ElasticRunResult",
    "Supervisor",
    "classify_failure",
    "run_elastic_training",
]

#: Strategies the elastic driver can accumulate for (dense/expert axes).
_IN_PLANE = ("dp", "ep", "moda")


def classify_failure(exc: BaseException) -> str:
    """Name the failure class of a modelled error.

    ``fault`` (a rank killed by the plan/model), ``deadlock`` (lost
    messages / real hangs hitting the wall-clock deadline), ``overflow``
    (loss-scale exhaustion), or the exception class name for any other
    :class:`~repro.errors.ReproError`. Non-``ReproError`` exceptions are
    programming errors — the supervisor never catches them, but this
    helper still names them for logs.
    """
    if isinstance(exc, FaultInjected):
        return "fault"
    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, OverflowDetected):
        return "overflow"
    return type(exc).__name__


@dataclass(frozen=True)
class ElasticRunConfig:
    """Setup for a supervised, elastically-restartable training run."""

    model: ModelConfig
    world_size: int
    ep_size: int
    total_steps: int
    checkpoint_every: int
    checkpoint_dir: str | Path
    batch_size: int = 4
    seq_len: int = 8
    lr: float = 1e-3
    seed: int = 0
    corpus_predictability: float = 0.8
    strategy: str = "auto"
    allreduce_algorithm: str | None = None
    alltoall_algorithm: str | None = None
    max_restarts: int = 5
    #: Backoff before relaunch n consecutive failures in:
    #: ``min(cap, base * factor**(n-1))`` virtual seconds.
    backoff_base: float = 5.0
    backoff_factor: float = 2.0
    backoff_cap: float = 60.0
    #: Shrink the world when one node accumulates ``shrink_after`` blamed
    #: failures (set False to always relaunch at full width).
    elastic: bool = True
    shrink_after: int = 2
    min_world_size: int = 1
    model_compute_time: bool = True
    timeout: float = 120.0
    trace: bool = False
    #: Give the session (and every launch) a live metric registry +
    #: router telemetry; the session context absorbs each launch's.
    observe: bool = False

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ConfigError(f"world_size must be >= 1, got {self.world_size}")
        if self.world_size % self.ep_size != 0:
            raise ConfigError(
                f"ep_size={self.ep_size} must divide world_size={self.world_size}"
            )
        if self.total_steps < 1 or self.checkpoint_every < 1:
            raise ConfigError("total_steps and checkpoint_every must be >= 1")
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        # Delegated: BackoffPolicy owns the schedule validation, so the
        # supervisor and the serving fleet router reject the same inputs.
        self.backoff_policy()
        if self.shrink_after < 1:
            raise ConfigError(f"shrink_after must be >= 1, got {self.shrink_after}")
        if not 1 <= self.min_world_size <= self.world_size:
            raise ConfigError(
                f"min_world_size must be in [1, {self.world_size}], "
                f"got {self.min_world_size}"
            )

    def backoff_policy(self) -> BackoffPolicy:
        """The capped-exponential schedule this run waits between retries."""
        return BackoffPolicy(
            base=self.backoff_base,
            factor=self.backoff_factor,
            cap=self.backoff_cap,
        )


@dataclass
class ElasticRunResult:
    """Outcome + goodput accounting of a supervised run.

    ``losses`` covers the contiguous range ``[first_step, total_steps)``
    executed by surviving segments (losses computed by a crashed attempt
    died with it, as on a real machine). All times are virtual seconds
    on the session clock.
    """

    #: Global loss for steps ``first_step .. total_steps - 1``.
    losses: list[float]
    #: Step index of ``losses[0]``.
    first_step: int
    #: Relaunches after a failure.
    restarts: int
    #: How many times the world was shrunk (elastic restarts).
    shrinks: int
    checkpoint_steps: list[int]
    #: World size of each launch, in launch order.
    world_history: list[int]
    final_world_size: int
    final_ep_size: int
    #: Steps computed by crashed attempts past their last durable
    #: checkpoint — work that had to be redone.
    lost_steps: int
    #: Virtual makespan of the successful segments (productive time).
    useful_time: float
    #: Virtual makespan of crashed attempts (restart overhead).
    lost_time: float
    #: Virtual time spent waiting between relaunches.
    backoff_time: float
    #: Session-aggregated instrumentation (events, phases, traffic).
    context: RunContext
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Session makespan: useful + lost + backoff virtual seconds."""
        return self.useful_time + self.lost_time + self.backoff_time

    @property
    def goodput(self) -> float:
        """Fraction of session time that produced surviving step-work."""
        total = self.total_time
        return self.useful_time / total if total > 0 else 1.0

    @property
    def availability(self) -> float:
        """Fraction of session time the world was up and training."""
        total = self.total_time
        return (total - self.backoff_time) / total if total > 0 else 1.0

    def metrics_record(self) -> dict[str, Any]:
        """One flat record (for :class:`~repro.train.metrics.MetricsLogger`)."""
        record = dict(self.context.metrics_record())
        record.update(
            first_step=self.first_step,
            restarts=self.restarts,
            shrinks=self.shrinks,
            lost_steps=self.lost_steps,
            useful_time=self.useful_time,
            lost_time=self.lost_time,
            backoff_time=self.backoff_time,
            total_time=self.total_time,
            goodput=self.goodput,
            availability=self.availability,
            final_world_size=self.final_world_size,
            final_ep_size=self.final_ep_size,
        )
        return record


class Supervisor:
    """Drives a training job to completion through failures.

    Parameters
    ----------
    cfg:
        The run setup, including backoff and elasticity policy.
    faults:
        A persistent :class:`~repro.simmpi.FaultModel` shared by every
        launch (it re-draws failure times per launch and remembers
        excluded nodes), or a scripted :class:`~repro.simmpi.FaultPlan`
        injected into every launch. ``None`` = healthy machine.
    fault_plans:
        Alternative scripting hook (supersedes ``faults``):
        ``fault_plans[i]`` is injected into the i-th launch only, the
        way :func:`~repro.parallel.resilient.run_resilient_training`
        tests script deterministic failure sequences.
    network_factory / machine_factory:
        ``world_size -> NetworkModel / MachineSpec`` for each launch
        (defaults: the Sunway presets). The factories are re-invoked
        after a shrink so the modelled machine matches the world.
    """

    def __init__(
        self,
        cfg: ElasticRunConfig,
        faults: Any | None = None,
        fault_plans: list[Any] | None = None,
        network_factory: Callable[[int], Any] | None = None,
        machine_factory: Callable[[int], Any] | None = None,
    ):
        self.cfg = cfg
        self.faults = faults
        self.fault_plans = fault_plans
        if network_factory is None:
            from repro.network.presets import sunway_network

            network_factory = sunway_network
        self._network_factory = network_factory
        if machine_factory is None:
            from repro.hardware.specs import sunway_machine

            def machine_factory(world: int):
                return sunway_machine(num_nodes=world)

        self._machine_factory = machine_factory

    # ------------------------------------------------------------------ #
    # Launch-plumbing helpers
    # ------------------------------------------------------------------ #

    def _run_cfg(self, world: int, ep: int) -> TrainingRunConfig:
        cfg = self.cfg
        run_cfg = TrainingRunConfig(
            model=cfg.model,
            world_size=world,
            ep_size=ep,
            num_steps=cfg.total_steps,
            batch_size=cfg.batch_size,
            seq_len=cfg.seq_len,
            lr=cfg.lr,
            seed=cfg.seed,
            corpus_predictability=cfg.corpus_predictability,
            alltoall_algorithm=cfg.alltoall_algorithm,
            allreduce_algorithm=cfg.allreduce_algorithm,
            model_compute_time=cfg.model_compute_time,
            timeout=cfg.timeout,
            strategy=cfg.strategy,
            trace=cfg.trace,
            observe=cfg.observe,
        )
        strategy = run_cfg.resolve_strategy()
        if strategy.name not in _IN_PLANE:
            raise ConfigError(
                f"the elastic supervisor drives in-plane strategies "
                f"{_IN_PLANE}, not {strategy.name!r}"
            )
        strategy.validate(run_cfg)
        return run_cfg

    def _plan_for(self, attempt: int) -> Any | None:
        if self.fault_plans is not None:
            return self.fault_plans[attempt] if attempt < len(self.fault_plans) else None
        return self.faults

    def _blame_key(self, exc: BaseException) -> int | None:
        """Node (preferred) or rank to blame for a failure, if known."""
        rank = getattr(exc, "rank", None)
        if rank is None:
            return None
        node_of_rank = getattr(self.faults, "node_of_rank", None)
        if node_of_rank is not None:
            try:
                return int(node_of_rank(rank))
            except ReproError:
                return int(rank)
        return int(rank)

    def _shrunk(self, world: int, ep: int) -> tuple[int, int]:
        """Halve the world; shrink EP only if it must (keeps exactness)."""
        new_world = world // 2
        new_ep = ep
        while new_ep > 1 and (
            new_world % new_ep != 0 or self.cfg.model.num_experts % new_ep != 0
        ):
            new_ep //= 2
        return new_world, new_ep

    # ------------------------------------------------------------------ #
    # The supervision loop
    # ------------------------------------------------------------------ #

    def run(self) -> ElasticRunResult:
        """Drive training to ``total_steps``; raise after ``max_restarts``
        consecutive failed launches."""
        cfg = self.cfg
        backoff_policy = cfg.backoff_policy()
        ckpt_dir = Path(cfg.checkpoint_dir)
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        session = RunContext(trace=cfg.trace, observe=cfg.observe)

        world = cfg.world_size
        ep = cfg.ep_size
        clock = 0.0
        useful_time = lost_time = backoff_time = 0.0
        lost_steps = 0
        restarts = 0
        shrinks = 0
        attempt = 0
        consecutive = 0
        blame: Counter[int] = Counter()
        world_history: list[int] = []
        loss_by_step: dict[int, float] = {}
        all_ckpts: set[int] = set()

        while True:
            if attempt > cfg.max_restarts:
                raise CommunicatorError(f"training failed {attempt} times; giving up")
            resume_dir, start = latest_snapshot(ckpt_dir)
            progress = SegmentProgress(completed_step=start, durable_step=start)
            run_cfg = self._run_cfg(world, ep)
            spec = SegmentSpec(
                run_cfg=run_cfg,
                logical_world=cfg.world_size,
                logical_ep=cfg.ep_size,
                total_steps=cfg.total_steps,
                checkpoint_every=cfg.checkpoint_every,
                checkpoint_dir=str(ckpt_dir),
                resume_dir=str(resume_dir) if resume_dir is not None else None,
                progress=progress,
                machine=(
                    self._machine_factory(world) if cfg.model_compute_time else None
                ),
            )
            world_history.append(world)
            session.record_event(
                "launch",
                t=clock,
                attempt=attempt,
                world_size=world,
                ep_size=ep,
                start_step=start,
                strategy=run_cfg.resolve_strategy().name,
            )
            launch_span = session.spans.begin(
                f"launch:{attempt}", clock, kind="launch",
                attempt=attempt, world_size=world, ep_size=ep,
                start_step=start,
            )
            try:
                res = run_spmd(
                    run_elastic_segment,
                    world,
                    network=self._network_factory(world),
                    timeout=cfg.timeout,
                    faults=self._plan_for(attempt),
                    args=(spec,),
                    trace=cfg.trace,
                    observe=cfg.observe,
                )
            except ReproError as exc:
                # A modelled failure: charge the crashed attempt's virtual
                # makespan and partial observations to the session, then
                # back off and relaunch. Programming errors propagate.
                attempt += 1
                restarts += 1
                consecutive += 1
                partial_clocks = getattr(exc, "partial_clocks", None) or [0.0]
                crashed_time = max(partial_clocks)
                partial_context = getattr(exc, "partial_context", None)
                if partial_context is not None:
                    session.absorb(partial_context, clock_offset=clock)
                clock += crashed_time
                session.spans.end(
                    launch_span, clock, outcome="failure",
                    failure=classify_failure(exc),
                )
                lost_time += crashed_time
                wasted = progress.completed_step - progress.durable_step
                lost_steps += wasted
                key = self._blame_key(exc)
                # The engine ships every rank's final recorded operations
                # on the exception; reference the evidence in the failure
                # event (the full dump was already folded into the session
                # flight recorder via the partial context).
                flight = getattr(exc, "flight_dump", None)
                flight_fields: dict[str, Any] = {}
                if flight is not None:
                    last_op = flight.get("last_op", {})
                    blamed_rank = getattr(exc, "rank", None)
                    flight_fields["flight_events"] = sum(
                        len(v) for v in flight.get("ranks", {}).values()
                    )
                    flight_fields["flight_last_op"] = last_op.get(
                        blamed_rank, None
                    ) if blamed_rank is not None else None
                session.record_event(
                    "failure",
                    t=clock,
                    failure=classify_failure(exc),
                    attempt=attempt - 1,
                    world_size=world,
                    rank=getattr(exc, "rank", None),
                    node=key,
                    lost_steps=wasted,
                    durable_step=progress.durable_step,
                    **flight_fields,
                )
                session.metrics.counter(
                    "session_failures", failure=classify_failure(exc)
                ).inc()
                session.metrics.counter("session_lost_steps").inc(wasted)
                if key is not None and cfg.elastic:
                    blame[key] += 1
                    if (
                        blame[key] >= cfg.shrink_after
                        and world > 1
                        and world // 2 >= cfg.min_world_size
                    ):
                        new_world, new_ep = self._shrunk(world, ep)
                        exclude = getattr(self.faults, "exclude_node", None)
                        if exclude is not None:
                            exclude(key)
                        session.record_event(
                            "elastic_restart",
                            t=clock,
                            node=key,
                            strikes=int(blame[key]),
                            from_world=world,
                            to_world=new_world,
                        )
                        session.record_event(
                            "reshard",
                            t=clock,
                            from_world=world,
                            to_world=new_world,
                            from_ep=ep,
                            to_ep=new_ep,
                            microsteps=cfg.world_size // new_world,
                        )
                        world, ep = new_world, new_ep
                        shrinks += 1
                        session.metrics.counter("session_shrinks").inc()
                        del blame[key]
                backoff = backoff_policy.delay(consecutive)
                clock += backoff
                backoff_time += backoff
                session.add_phase("backoff", backoff)
                session.record_event(
                    "backoff", t=clock, seconds=backoff, consecutive=consecutive
                )
                session.spans.add(
                    "backoff", clock - backoff, clock, parent=launch_span,
                    kind="backoff", seconds=backoff, consecutive=consecutive,
                )
                session.metrics.counter("session_restarts").inc()
                session.metrics.histogram("session_backoff_seconds").observe(backoff)
                continue

            # Success: fold the segment into the session and finish.
            attempt += 1
            consecutive = 0
            if res.context is not None:
                session.absorb(res.context, clock_offset=clock)
            clock += res.simulated_time
            session.spans.end(launch_span, clock, outcome="complete")
            useful_time += res.simulated_time
            seg = res.returns[0]
            for i, value in enumerate(seg["losses"]):
                loss_by_step[seg["start"] + i] = value
            all_ckpts.update(seg["ckpts"])
            session.record_event(
                "complete",
                t=clock,
                attempt=attempt - 1,
                world_size=world,
                steps=len(seg["losses"]),
            )
            session.metrics.gauge("session_final_world_size").set(world)
            session.metrics.gauge("session_useful_time").set(useful_time)
            session.metrics.gauge("session_lost_time").set(lost_time)
            session.metrics.gauge("session_backoff_time").set(backoff_time)
            break

        covered = sorted(loss_by_step)
        return ElasticRunResult(
            losses=[loss_by_step[s] for s in covered],
            first_step=covered[0] if covered else 0,
            restarts=restarts,
            shrinks=shrinks,
            checkpoint_steps=sorted(all_ckpts),
            world_history=world_history,
            final_world_size=world,
            final_ep_size=ep,
            lost_steps=lost_steps,
            useful_time=useful_time,
            lost_time=lost_time,
            backoff_time=backoff_time,
            context=session,
            meta={
                "world_size": cfg.world_size,
                "ep_size": cfg.ep_size,
                "elastic": cfg.elastic,
            },
        )


def run_elastic_training(
    cfg: ElasticRunConfig,
    faults: Any | None = None,
    fault_plans: list[Any] | None = None,
    network_factory: Callable[[int], Any] | None = None,
    machine_factory: Callable[[int], Any] | None = None,
) -> ElasticRunResult:
    """Convenience wrapper: build a :class:`Supervisor` and run it."""
    return Supervisor(
        cfg,
        faults=faults,
        fault_plans=fault_plans,
        network_factory=network_factory,
        machine_factory=machine_factory,
    ).run()
