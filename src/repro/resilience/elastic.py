"""Elastic training segments: run a logical world on fewer ranks, exactly.

The supervisor's central trick is *shrink-and-reshard*: when a node is
gone for good, finish the job on half the ranks. The catch is
reproducibility — this repo's training is deterministic, and the
resilience tests (like BaGuaLu-class production debugging) demand that a
recovered run reproduce the healthy trajectory bit for bit. Naively
re-sharding data across a smaller world changes both the batch→rank
assignment and the floating-point reduction order, which changes every
loss after the restore point.

:class:`ElasticStepDriver` avoids both: a world of ``W`` ranks executes a
*logical* world of ``W0 = k*W`` ranks by running ``k`` accumulation
microsteps per optimizer step. At microstep ``m``, physical rank ``r``
plays logical rank ``m*W + r``:

* **data**: the microstep loader reads logical rank ``m*W + r``'s stream
  (``dp_size = W0``), so every batch lands exactly where the full world
  would have put it;
* **experts**: the EP width is preserved, and because EP groups are
  consecutive ranks, microstep ``m``'s EP groups are exactly logical EP
  groups ``m*W/ep .. (m+1)*W/ep - 1`` — all MoE alltoalls and expert
  matmuls replay bitwise;
* **reductions**: the simulated allreduce left-folds contributions in
  group-rank order, so the healthy fold ``((g0+g1)+g2)+g3`` is reproduced
  by *fold-carry* accumulation — at microstep ``m``, group rank 0
  contributes ``acc + g`` (the carried partial sum plus its fresh
  gradient), making the chained fold associate exactly like one wide
  fold. The final accumulator divides by the **logical** group size.

The same fold-carry chain reproduces the world-averaged loss. When the
EP width itself must shrink, expert-gradient matmuls regroup their row
reductions, so equality is only guaranteed up to float reassociation —
in practice the test configurations reproduce bitwise there too (each
row's forward is independent, and the split accumulations agree), and
the supervisor preserves ``ep`` whenever it divides the shrunken world.

Exactness assumes deterministic routing (the default ``topk`` gate);
stochastic gates draw per-rank RNG whose streams do not survive the
rank remapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.data import ShardedLoader, SyntheticCorpus
from repro.errors import ConfigError
from repro.parallel.dist_checkpoint import load_distributed, save_distributed
from repro.parallel.dp import flatten_grads, unflatten_grads
from repro.parallel.runner import TrainingRunConfig
from repro.train.clip import global_grad_norm

__all__ = ["ElasticStepDriver", "ElasticStepResult", "SegmentProgress", "SegmentSpec"]


@dataclass
class ElasticStepResult:
    """Per-rank metrics from one (possibly microstepped) elastic step."""

    step: int
    loss: float
    global_loss: float
    lr: float
    grad_norm: float
    microsteps: int


@dataclass
class SegmentProgress:
    """Mutable side-channel between a running segment and the supervisor.

    ``run_spmd`` passes args by reference, so rank 0's updates stay
    visible to the supervisor even when the launch later dies — this is
    how lost step-work (completed but not yet durable) is measured.
    """

    completed_step: int = 0
    durable_step: int = 0


@dataclass(frozen=True)
class SegmentSpec:
    """Everything one elastic training segment needs, shipped to ranks."""

    run_cfg: TrainingRunConfig
    #: The original (full) world size whose trajectory we reproduce.
    logical_world: int
    #: The original EP width (sets the expert-gradient divisor).
    logical_ep: int
    total_steps: int
    checkpoint_every: int
    checkpoint_dir: str
    resume_dir: str | None
    progress: SegmentProgress
    machine: Any = None


class ElasticStepDriver:
    """Drives ``k = logical_world / world`` accumulation microsteps per step.

    Wraps a built in-plane rank trainer (the strategy registry's
    ``_PlaneTrainer``: a :class:`~repro.parallel.strategy.HybridTrainer`
    plus timer/comm), replacing its single-batch step with the fold-carry
    accumulation described in the module docstring. With
    ``logical_world == world`` this degenerates to the plain
    MoDa/Hybrid step (``k=1``) and produces bitwise-identical updates.
    """

    def __init__(self, plane, logical_world: int, logical_ep: int, cfg: TrainingRunConfig):
        trainer = getattr(plane, "trainer", None)
        if trainer is None or not hasattr(trainer, "sync_groups"):
            raise ConfigError(
                "elastic training needs an in-plane strategy trainer "
                "(dp/ep/moda); got an incompatible rank trainer"
            )
        self.trainer = trainer
        self.model = plane.model
        self.timer = plane.timer
        self.comm = plane.comm
        self.tokens = plane.tokens
        self.logical_world = int(logical_world)
        self.logical_ep = int(logical_ep)
        world = self.comm.size
        if self.logical_world % world != 0:
            raise ConfigError(
                f"logical world {self.logical_world} must be a multiple of "
                f"the physical world {world}"
            )
        if self.logical_world % self.logical_ep != 0:
            raise ConfigError(
                f"logical ep {self.logical_ep} must divide logical world "
                f"{self.logical_world}"
            )
        self.k = self.logical_world // world
        #: Final divisors: the *logical* group sizes, so accumulated
        #: gradients average exactly as the full world's would.
        self.divisors = {
            "dense": float(self.logical_world),
            "expert": float(self.logical_world // self.logical_ep),
        }
        corpus = SyntheticCorpus(
            vocab_size=cfg.model.vocab_size,
            predictability=cfg.corpus_predictability,
            seed=cfg.seed,
        )
        # Microstep m reads logical rank (m*W + r)'s data stream.
        self.loaders = [
            ShardedLoader(
                corpus,
                cfg.batch_size,
                cfg.seq_len,
                dp_rank=m * world + self.comm.rank,
                dp_size=self.logical_world,
            )
            for m in range(self.k)
        ]

    def train_step(self, step: int) -> ElasticStepResult:
        """One optimizer step = ``k`` fold-carry accumulation microsteps."""
        trainer = self.trainer
        world = trainer.groups.world
        for label, _, _ in trainer.sync_groups:
            if label not in self.divisors:
                raise ConfigError(
                    f"elastic accumulation cannot average sync group "
                    f"{label!r} (only dense/expert axes are supported)"
                )
        lr = trainer.schedule(trainer.step_count)
        trainer.optimizer.lr = lr

        acc: dict[str, np.ndarray] = {}
        loss_fold = 0.0
        loss_value = 0.0
        t_forward = t_backward = t_sync = 0.0
        for m in range(self.k):
            batch = self.loaders[m].get_batch(step)
            self.model.zero_grad()
            if self.timer is not None:
                self.comm.advance(self.timer.dense_step_time(self.tokens))
            t0 = world.clock
            loss = self.model.loss(batch.tokens, batch.targets)
            loss_value = float(loss.item())
            t_forward += world.clock - t0
            t1 = world.clock
            loss.backward(np.asarray(1.0, dtype=loss.data.dtype))
            t_backward += world.clock - t1
            t2 = world.clock
            for label, params, comm_g in trainer.sync_groups:
                flat = flatten_grads(params)
                if comm_g.rank == 0 and m > 0:
                    # Fold-carry: group rank 0 contributes the carried
                    # partial sum + its fresh gradient, so the chained
                    # fold associates exactly like the full-world fold.
                    flat = acc[label] + flat
                acc[label] = comm_g.allreduce(
                    flat, algorithm=trainer.allreduce_algorithm
                )
            fold = loss_fold + loss_value if (world.rank == 0 and m > 0) else loss_value
            loss_fold = float(world.allreduce(fold))
            t_sync += world.clock - t2

        for label, params, _ in trainer.sync_groups:
            unflatten_grads(params, acc[label] / self.divisors[label])
        grad_norm = global_grad_norm(trainer.optimizer.params)
        trainer.optimizer.step()
        global_loss = loss_fold / self.logical_world

        context = world.context
        if world.rank == 0:
            context.add_phase("forward", t_forward)
            context.add_phase("backward", t_backward)
            context.add_phase("grad_sync", t_sync)
            if context.observing:
                self._emit_observations(context, step, global_loss)

        result = ElasticStepResult(
            step=trainer.step_count,
            loss=loss_value,
            global_loss=global_loss,
            lr=lr,
            grad_norm=grad_norm,
            microsteps=self.k,
        )
        trainer.step_count += 1
        return result

    def _emit_observations(self, context, step: int, global_loss: float) -> None:
        """Mirror the strategy adapters' per-step emission for elastic
        steps, so resilient runs land in the same registry/router as the
        measured runs (microstep loads are summed — the logical step's
        totals)."""
        from repro.parallel.strategy import _imbalance_of

        modules = list(self.model.moe_layers())
        registry = context.metrics
        registry.counter("train_steps", strategy="elastic").inc()
        registry.gauge("train_loss", strategy="elastic").set(global_loss)
        registry.histogram("train_imbalance", strategy="elastic").observe(
            _imbalance_of(modules)
        )
        if context.router is None:
            return
        layer = 0
        for module in modules:
            load = getattr(module, "last_global_load", None)
            if load is None:
                continue
            context.router.record(
                step,
                layer,
                load,
                drop_fraction=float(getattr(module, "last_drop_fraction", 0.0) or 0.0),
            )
            layer += 1


def run_elastic_segment(comm, spec: SegmentSpec) -> dict[str, Any]:
    """SPMD rank program: train from the latest snapshot to completion.

    Builds the rank trainer through the strategy registry, restores the
    resume snapshot (parameters *and* optimizer state, under any layout),
    then steps the :class:`ElasticStepDriver`, checkpointing every
    ``checkpoint_every`` steps. Dies wherever the fault plan/model says.
    """
    cfg = spec.run_cfg
    strategy = cfg.resolve_strategy()
    plane = strategy.build(comm, cfg, spec.machine)
    trainer = plane.trainer
    model = plane.model
    start = 0
    if spec.resume_dir is not None:
        meta = load_distributed(
            Path(spec.resume_dir), model, optimizer=trainer.optimizer
        )
        start = int(meta["step"])
    trainer.step_count = start
    driver = ElasticStepDriver(plane, spec.logical_world, spec.logical_ep, cfg)

    losses: list[float] = []
    ckpts: list[int] = []
    for step in range(start, spec.total_steps):
        out = driver.train_step(step)
        losses.append(out.global_loss)
        done = step + 1
        if comm.rank == 0:
            spec.progress.completed_step = done
        if done % spec.checkpoint_every == 0 or done == spec.total_steps:
            save_distributed(
                Path(spec.checkpoint_dir) / f"step-{done:06d}",
                model,
                trainer.groups,
                step=done,
                optimizer=trainer.optimizer,
            )
            ckpts.append(done)
            if comm.rank == 0:
                spec.progress.durable_step = done
    return {"losses": losses, "start": start, "ckpts": ckpts}
