"""Elastic fault-tolerant training: fault models, supervision, resharding.

The production story this package reproduces (see
:mod:`repro.parallel.resilient` for the plain checkpoint-restart
predecessor it generalizes):

* :mod:`repro.simmpi.faults` injects failures — scripted
  (:class:`~repro.simmpi.FaultPlan`) or stochastic
  (:class:`~repro.simmpi.FaultModel`: MTBF crashes, dead nodes,
  stragglers, flaky links);
* :class:`~repro.resilience.supervisor.Supervisor` classifies failures,
  backs off exponentially, relaunches from the latest verified snapshot,
  and — when one node keeps failing — performs an *elastic restart*:
  exclude the node, halve the world, reshard through the
  layout-independent checkpoint, resume;
* :class:`~repro.resilience.elastic.ElasticStepDriver` makes the
  shrunken world reproduce the full world's loss trajectory exactly via
  fold-carry gradient accumulation.
"""

from repro.resilience.backoff import BackoffPolicy
from repro.resilience.elastic import (
    ElasticStepDriver,
    ElasticStepResult,
    SegmentProgress,
    SegmentSpec,
    run_elastic_segment,
)
from repro.resilience.supervisor import (
    ElasticRunConfig,
    ElasticRunResult,
    Supervisor,
    classify_failure,
    run_elastic_training,
)

__all__ = [
    "BackoffPolicy",
    "ElasticRunConfig",
    "ElasticRunResult",
    "ElasticStepDriver",
    "ElasticStepResult",
    "SegmentProgress",
    "SegmentSpec",
    "Supervisor",
    "classify_failure",
    "run_elastic_segment",
    "run_elastic_training",
]
