"""Auxiliary load-balancing losses and imbalance metrics.

The Switch-Transformer auxiliary loss pushes the router toward uniform
expert utilization; the z-loss keeps router logits small (fp16 safety).
Imbalance metrics quantify what the gating strategies achieve — the
quantity experiment F5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor
from repro.tensor import ops as T

__all__ = ["load_balance_loss", "router_z_loss", "LoadStats", "load_stats"]


def load_balance_loss(probs: Tensor, indices: np.ndarray, num_experts: int) -> Tensor:
    """Switch-style auxiliary loss: ``E * sum_e f_e * P_e``.

    ``f_e`` is the fraction of tokens whose *first* routing slot chose
    expert e (a constant w.r.t. the router), ``P_e`` the mean router
    probability for e (differentiable). Minimized (=1) at uniform routing.
    """
    if probs.ndim != 2 or probs.shape[1] != num_experts:
        raise ConfigError(f"probs must be (N, {num_experts}), got {probs.shape}")
    n = probs.shape[0]
    if n == 0:
        raise ConfigError("load_balance_loss needs at least one token")
    first = indices[:, 0]
    f = np.bincount(first, minlength=num_experts).astype(np.float64) / n
    mean_p = probs.mean(axis=0)  # (E,) Tensor
    weighted = mean_p * Tensor(f, dtype=probs.dtype)
    return T.sum_(weighted) * float(num_experts)


def router_z_loss(logits: Tensor) -> Tensor:
    """ST-MoE z-loss: mean of log-sum-exp(logits)^2 (keeps logits bounded)."""
    if logits.ndim != 2:
        raise ConfigError(f"logits must be 2-D, got shape {logits.shape}")
    # logsumexp via the stable decomposition on raw data + autograd exp/log.
    m = T.max_(logits, axis=1, keepdims=True)
    z = T.log(T.sum_(T.exp(logits - m), axis=1, keepdims=True)) + m
    return T.mean(z * z)


@dataclass(frozen=True)
class LoadStats:
    """Summary of per-expert token counts."""

    loads: np.ndarray
    mean: float
    max: float
    min: float
    #: max load / mean load — 1.0 is perfect balance; the step-time
    #: multiplier for synchronous expert parallelism.
    imbalance: float
    #: coefficient of variation (std / mean).
    cv: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LoadStats(mean={self.mean:.1f}, max={self.max:.0f}, "
            f"imbalance={self.imbalance:.2f}, cv={self.cv:.2f})"
        )


def load_stats(loads: np.ndarray) -> LoadStats:
    """Compute balance statistics from per-expert token counts."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.ndim != 1 or loads.size == 0:
        raise ConfigError("loads must be a non-empty 1-D array")
    mean = float(loads.mean())
    if mean == 0.0:
        return LoadStats(loads=loads, mean=0.0, max=0.0, min=0.0, imbalance=1.0, cv=0.0)
    return LoadStats(
        loads=loads,
        mean=mean,
        max=float(loads.max()),
        min=float(loads.min()),
        imbalance=float(loads.max() / mean),
        cv=float(loads.std() / mean),
    )
