"""Mixture-of-Experts routing: gates, capacity, dispatch, load balance."""

from repro.moe.analysis import expert_specialization, expert_usage_entropy, routing_entropy
from repro.moe.balance import LoadStats, load_balance_loss, load_stats, router_z_loss
from repro.moe.capacity import CapacityResult, apply_capacity, expert_capacity
from repro.moe.dispatch import (
    DispatchPlan,
    build_dispatch,
    experts_of_rank,
    inference_keep_mask,
    owner_of_expert,
)
from repro.moe.gates import (
    BalancedGate,
    Gate,
    GateOutput,
    NoisyTopKGate,
    RandomGate,
    TopKGate,
    make_gate,
)

__all__ = [
    "expert_specialization",
    "expert_usage_entropy",
    "routing_entropy",
    "LoadStats",
    "load_balance_loss",
    "load_stats",
    "router_z_loss",
    "CapacityResult",
    "apply_capacity",
    "expert_capacity",
    "DispatchPlan",
    "build_dispatch",
    "experts_of_rank",
    "inference_keep_mask",
    "owner_of_expert",
    "BalancedGate",
    "Gate",
    "GateOutput",
    "NoisyTopKGate",
    "RandomGate",
    "TopKGate",
    "make_gate",
]
