"""Token dispatch plans: from routing decisions to send/receive layouts.

A :class:`DispatchPlan` flattens the kept (token, slot) pairs of a routing
decision into expert-sorted order — the layout both the local MoE layer
(per-expert batched matmuls) and the expert-parallel alltoall (contiguous
per-destination buffers) consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.mathx import ceil_div

__all__ = [
    "DispatchPlan",
    "build_dispatch",
    "inference_keep_mask",
    "owner_of_expert",
    "experts_of_rank",
]


@dataclass(frozen=True)
class DispatchPlan:
    """Expert-sorted flattening of kept routing slots.

    Attributes
    ----------
    token_idx:
        (M,) source-token row for each dispatched slot.
    expert_idx:
        (M,) destination expert for each dispatched slot (non-decreasing).
    slot_idx:
        (M,) which of the token's k slots this entry came from.
    counts:
        (E,) number of dispatched slots per expert;
        ``counts.sum() == M``.
    offsets:
        (E+1,) prefix sums of ``counts``: expert e's segment is
        ``[offsets[e], offsets[e+1])``.
    num_tokens:
        Number of source tokens (rows of the activations tensor).
    """

    token_idx: np.ndarray
    expert_idx: np.ndarray
    slot_idx: np.ndarray
    counts: np.ndarray
    offsets: np.ndarray
    num_tokens: int

    @property
    def num_slots(self) -> int:
        return int(self.token_idx.shape[0])

    @property
    def num_experts(self) -> int:
        return int(self.counts.shape[0])

    def segment(self, expert: int) -> slice:
        """Slice of the dispatched arrays belonging to ``expert``."""
        return slice(int(self.offsets[expert]), int(self.offsets[expert + 1]))

    def rank_segments(self, experts_per_rank: int) -> list[slice]:
        """Contiguous slices per owning rank (experts are blocked by rank)."""
        if experts_per_rank < 1 or self.num_experts % experts_per_rank != 0:
            raise ConfigError(
                f"experts_per_rank={experts_per_rank} must divide "
                f"num_experts={self.num_experts}"
            )
        num_ranks = self.num_experts // experts_per_rank
        out = []
        for r in range(num_ranks):
            lo = int(self.offsets[r * experts_per_rank])
            hi = int(self.offsets[(r + 1) * experts_per_rank])
            out.append(slice(lo, hi))
        return out


def build_dispatch(
    indices: np.ndarray,
    num_experts: int,
    keep_mask: np.ndarray | None = None,
) -> DispatchPlan:
    """Build an expert-sorted dispatch plan from (N, k) routing indices.

    ``keep_mask`` (same shape) excludes capacity-dropped slots. The sort is
    stable, so within one expert tokens appear in batch order — making the
    plan deterministic and the combine reproducible.
    """
    if indices.ndim != 2:
        raise ConfigError(f"indices must be (N, k), got shape {indices.shape}")
    n, k = indices.shape
    if keep_mask is None:
        keep_mask = np.ones((n, k), dtype=bool)
    if keep_mask.shape != (n, k):
        raise ConfigError(
            f"keep_mask shape {keep_mask.shape} must match indices {indices.shape}"
        )
    tok, slot = np.nonzero(keep_mask)
    exp = indices[tok, slot]
    if exp.size and (exp.min() < 0 or exp.max() >= num_experts):
        raise ConfigError(
            f"expert index out of range [0, {num_experts}): "
            f"[{exp.min()}, {exp.max()}]"
        )
    order = np.argsort(exp, kind="stable")
    tok, slot, exp = tok[order], slot[order], exp[order]
    counts = np.bincount(exp, minlength=num_experts)
    offsets = np.zeros(num_experts + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return DispatchPlan(
        token_idx=tok.astype(np.int64),
        expert_idx=exp.astype(np.int64),
        slot_idx=slot.astype(np.int64),
        counts=counts.astype(np.int64),
        offsets=offsets,
        num_tokens=n,
    )


def inference_keep_mask(
    indices: np.ndarray, num_experts: int, max_per_expert: int
) -> np.ndarray:
    """Cap each expert at ``max_per_expert`` dispatched slots (absolute).

    Training capacity (:func:`repro.moe.capacity.apply_capacity`) sizes
    buffers relative to the batch; a serving engine instead bounds each
    expert's *absolute* per-step work so one hot expert cannot stall a
    decode iteration for every request in flight. Slots are kept in batch
    order (earliest rows win — matching the stable dispatch sort), so the
    mask composes with :func:`build_dispatch` deterministically. Returns an
    (N, k) bool mask; dropped slots fall back to the residual path exactly
    like capacity drops.
    """
    if indices.ndim != 2:
        raise ConfigError(f"indices must be (N, k), got shape {indices.shape}")
    if max_per_expert < 1:
        raise ConfigError(
            f"max_per_expert must be >= 1, got {max_per_expert}"
        )
    n, k = indices.shape
    flat = indices.reshape(-1)
    if flat.size and (flat.min() < 0 or flat.max() >= num_experts):
        raise ConfigError(
            f"expert index out of range [0, {num_experts}): "
            f"[{flat.min()}, {flat.max()}]"
        )
    # Stable sort groups slots by expert while preserving batch order;
    # each slot's rank within its expert group is its claim number.
    order = np.argsort(flat, kind="stable")
    sorted_experts = flat[order]
    counts = np.bincount(sorted_experts, minlength=num_experts)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    claim = np.arange(flat.size) - offsets[sorted_experts]
    keep_sorted = claim < max_per_expert
    keep = np.empty(flat.size, dtype=bool)
    keep[order] = keep_sorted
    return keep.reshape(n, k)


def owner_of_expert(expert: int, num_experts: int, num_ranks: int) -> int:
    """Rank owning ``expert`` under blocked expert placement."""
    if num_experts % num_ranks != 0:
        raise ConfigError(
            f"num_ranks={num_ranks} must divide num_experts={num_experts}"
        )
    per = num_experts // num_ranks
    if not 0 <= expert < num_experts:
        raise ConfigError(f"expert {expert} out of range [0, {num_experts})")
    return expert // per


def experts_of_rank(rank: int, num_experts: int, num_ranks: int) -> range:
    """Experts owned by ``rank`` under blocked placement."""
    if num_experts % num_ranks != 0:
        raise ConfigError(
            f"num_ranks={num_ranks} must divide num_experts={num_experts}"
        )
    per = num_experts // num_ranks
    if not 0 <= rank < num_ranks:
        raise ConfigError(f"rank {rank} out of range [0, {num_ranks})")
    return range(rank * per, (rank + 1) * per)
