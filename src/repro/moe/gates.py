"""Gating strategies for Mixture-of-Experts routing.

A gate maps per-token routing logits to an expert assignment. The strategy
choice is the load-balance knob the paper ablates (experiment F5):

* :class:`TopKGate` — standard softmax top-k. Quality-optimal but routes by
  content, so Zipfian token streams produce heavily skewed expert loads.
* :class:`NoisyTopKGate` — top-k over noise-perturbed logits (Shazeer
  et al.); softens skew a little and regularizes routing.
* :class:`BalancedGate` — capacity-constrained greedy assignment (in the
  spirit of BaGuaLu's balanced gating / SWIPE): every expert receives at
  most its capacity, so per-node work is near-uniform by construction.
* :class:`RandomGate` — uniform random routing; perfectly balanced in
  expectation, content-oblivious (quality lower bound).

All gates return combine weights differentiable w.r.t. the logits (the
assignment itself is discrete, as in every real MoE implementation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor, softmax
from repro.utils.mathx import ceil_div

__all__ = [
    "GateOutput",
    "Gate",
    "TopKGate",
    "NoisyTopKGate",
    "BalancedGate",
    "RandomGate",
    "make_gate",
]


@dataclass
class GateOutput:
    """Routing decision for a batch of N tokens over E experts.

    Attributes
    ----------
    indices:
        (N, k) int array of expert ids per slot.
    combine_weights:
        (N, k) Tensor of mixing weights (differentiable w.r.t. logits);
        rows are renormalized over the k chosen slots.
    probs:
        (N, E) Tensor of full softmax probabilities (for aux losses).
    load:
        (E,) int array: tokens assigned per expert (before capacity drops).
    """

    indices: np.ndarray
    combine_weights: Tensor
    probs: Tensor
    load: np.ndarray

    @property
    def num_tokens(self) -> int:
        return self.indices.shape[0]

    @property
    def top_k(self) -> int:
        return self.indices.shape[1]


def _gather_weights(probs: Tensor, indices: np.ndarray) -> Tensor:
    """Differentiably pick probs[n, indices[n, j]] and renormalize per row."""
    n, k = indices.shape
    rows = np.arange(n)[:, None]
    picked = probs[rows, indices]  # (N, k) via autograd getitem
    denom = picked.sum(axis=1, keepdims=True) + 1e-9
    return picked / denom


def _bincount_load(indices: np.ndarray, num_experts: int) -> np.ndarray:
    return np.bincount(indices.reshape(-1), minlength=num_experts)


class Gate:
    """Base class: subclasses implement :meth:`assign`."""

    def __init__(self, num_experts: int, top_k: int = 1):
        if num_experts < 1:
            raise ConfigError(f"num_experts must be >= 1, got {num_experts}")
        if not 1 <= top_k <= num_experts:
            raise ConfigError(
                f"top_k must be in [1, num_experts={num_experts}], got {top_k}"
            )
        self.num_experts = num_experts
        self.top_k = top_k

    def assign(self, probs_data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return (N, k) expert indices from (N, E) probabilities."""
        raise NotImplementedError

    def __call__(self, logits: Tensor, rng: np.random.Generator) -> GateOutput:
        """Route tokens given (N, E) logits."""
        if logits.ndim != 2 or logits.shape[1] != self.num_experts:
            raise ConfigError(
                f"gate expects (N, {self.num_experts}) logits, got {logits.shape}"
            )
        probs = softmax(logits, axis=-1)
        indices = self.assign(probs.data, rng)
        weights = _gather_weights(probs, indices)
        return GateOutput(
            indices=indices,
            combine_weights=weights,
            probs=probs,
            load=_bincount_load(indices, self.num_experts),
        )


class TopKGate(Gate):
    """Vanilla softmax top-k routing."""

    name = "topk"

    def assign(self, probs_data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        k = self.top_k
        # argpartition is O(N*E); take the k largest then order them.
        part = np.argpartition(-probs_data, k - 1, axis=1)[:, :k]
        row = np.arange(probs_data.shape[0])[:, None]
        order = np.argsort(-probs_data[row, part], axis=1)
        return part[row, order]


class NoisyTopKGate(Gate):
    """Top-k over logits perturbed with Gaussian noise (train-time only)."""

    name = "noisy-topk"

    def __init__(self, num_experts: int, top_k: int = 1, noise_std: float = 1.0):
        super().__init__(num_experts, top_k)
        if noise_std < 0:
            raise ConfigError(f"noise_std must be >= 0, got {noise_std}")
        self.noise_std = noise_std

    def assign(self, probs_data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noisy = np.log(probs_data + 1e-9) + rng.normal(
            0.0, self.noise_std, size=probs_data.shape
        )
        k = self.top_k
        part = np.argpartition(-noisy, k - 1, axis=1)[:, :k]
        row = np.arange(probs_data.shape[0])[:, None]
        order = np.argsort(-noisy[row, part], axis=1)
        return part[row, order]


class BalancedGate(Gate):
    """Capacity-constrained greedy assignment (BaGuaLu-style balancing).

    Tokens are processed in descending order of routing confidence; each
    takes its most-preferred expert that still has capacity
    ``ceil(N * k / E * capacity_factor)``. The result bounds every expert's
    load, which bounds the slowest expert's compute and the largest
    alltoall bucket — the property that keeps 96,000 nodes in lock-step.
    """

    name = "balanced"

    def __init__(self, num_experts: int, top_k: int = 1, capacity_factor: float = 1.0):
        super().__init__(num_experts, top_k)
        if capacity_factor <= 0:
            raise ConfigError(f"capacity_factor must be > 0, got {capacity_factor}")
        self.capacity_factor = capacity_factor

    def assign(self, probs_data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, e = probs_data.shape
        k = self.top_k
        capacity = max(1, ceil_div(int(np.ceil(n * k * self.capacity_factor)), e))
        # Preference order per token; confidence order across tokens.
        pref = np.argsort(-probs_data, axis=1)
        conf_order = np.argsort(-probs_data.max(axis=1), kind="stable")
        remaining = np.full(e, capacity, dtype=np.int64)
        out = np.empty((n, k), dtype=np.int64)
        for token in conf_order:
            taken = 0
            chosen: list[int] = []
            for candidate in pref[token]:
                if taken == k:
                    break
                if remaining[candidate] > 0 and candidate not in chosen:
                    remaining[candidate] -= 1
                    chosen.append(int(candidate))
                    taken += 1
            while taken < k:
                # Capacity exhausted everywhere preferred: spill to the
                # globally least-loaded expert (never drops tokens).
                candidate = int(np.argmax(remaining))
                remaining[candidate] -= 1
                chosen.append(candidate)
                taken += 1
            out[token] = chosen
        return out


class RandomGate(Gate):
    """Uniform random routing (content-oblivious balance baseline)."""

    name = "random"

    def assign(self, probs_data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, e = probs_data.shape
        k = self.top_k
        if k == 1:
            return rng.integers(0, e, size=(n, 1))
        out = np.empty((n, k), dtype=np.int64)
        for i in range(n):
            out[i] = rng.choice(e, size=k, replace=False)
        return out


_GATES = {
    "topk": TopKGate,
    "noisy-topk": NoisyTopKGate,
    "balanced": BalancedGate,
    "random": RandomGate,
}


def make_gate(name: str, num_experts: int, top_k: int = 1, **kwargs) -> Gate:
    """Factory: build a gate by strategy name."""
    try:
        cls = _GATES[name]
    except KeyError:
        raise ConfigError(f"unknown gate {name!r}; known: {sorted(_GATES)}") from None
    return cls(num_experts, top_k, **kwargs)
