"""Expert capacity: buffer sizing and token dropping.

Static expert buffers are what make MoE communication fixed-size (and the
alltoall schedulable): each expert accepts at most
``capacity = ceil(tokens * top_k / num_experts * capacity_factor)`` tokens.
Tokens routed beyond an expert's capacity are *dropped* for that slot
(their combine weight is zeroed and the residual path carries them),
exactly as in Switch/GShard-style systems. Experiment F7 sweeps the factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.mathx import ceil_div

__all__ = ["expert_capacity", "CapacityResult", "apply_capacity"]


def expert_capacity(num_tokens: int, num_experts: int, top_k: int, capacity_factor: float) -> int:
    """Per-expert token buffer size."""
    if num_tokens < 0 or num_experts < 1 or top_k < 1:
        raise ConfigError("invalid capacity arguments")
    if capacity_factor <= 0:
        raise ConfigError(f"capacity_factor must be > 0, got {capacity_factor}")
    return max(1, ceil_div(int(np.ceil(num_tokens * top_k * capacity_factor)), num_experts))


@dataclass
class CapacityResult:
    """Outcome of enforcing capacity on a routing decision.

    Attributes
    ----------
    keep_mask:
        (N, k) bool — False for dropped slots.
    positions:
        (N, k) int — the slot's position within its expert's buffer
        (meaningless where dropped).
    capacity:
        The per-expert buffer size used.
    dropped:
        Number of dropped (token, slot) pairs.
    """

    keep_mask: np.ndarray
    positions: np.ndarray
    capacity: int
    dropped: int

    @property
    def drop_fraction(self) -> float:
        total = self.keep_mask.size
        return self.dropped / total if total else 0.0


def apply_capacity(
    indices: np.ndarray,
    num_experts: int,
    capacity_factor: float,
    priority: np.ndarray | None = None,
) -> CapacityResult:
    """Enforce per-expert capacity over (N, k) routing ``indices``.

    Tokens claim buffer slots in priority order (highest first; defaults to
    batch order like Switch Transformer). A slot whose expert buffer is
    full is dropped.
    """
    n, k = indices.shape
    cap = expert_capacity(n, num_experts, k, capacity_factor)
    if priority is None:
        order = np.arange(n)
    else:
        if priority.shape != (n,):
            raise ConfigError(f"priority must have shape ({n},), got {priority.shape}")
        order = np.argsort(-priority, kind="stable")
    fill = np.zeros(num_experts, dtype=np.int64)
    keep = np.zeros((n, k), dtype=bool)
    pos = np.zeros((n, k), dtype=np.int64)
    for token in order:
        for slot in range(k):
            e = indices[token, slot]
            if fill[e] < cap:
                keep[token, slot] = True
                pos[token, slot] = fill[e]
                fill[e] += 1
    dropped = int(n * k - keep.sum())
    return CapacityResult(keep_mask=keep, positions=pos, capacity=cap, dropped=dropped)
