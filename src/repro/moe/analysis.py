"""Routing analysis: entropy and expert-specialization diagnostics.

MoE papers report not only *balance* but what the router learned:

* :func:`routing_entropy` — how decisive per-token routing is (0 bits =
  one-hot confidence, log2(E) = uniform indecision);
* :func:`expert_usage_entropy` — how evenly the token mass spreads over
  experts in aggregate (the information-theoretic twin of
  :func:`~repro.moe.balance.load_stats`);
* :func:`expert_specialization` — mutual information between token
  identity and expert choice: 0 when routing ignores content, up to
  min(H(token), H(expert)) when experts own disjoint vocabularies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["routing_entropy", "expert_usage_entropy", "expert_specialization"]


def _entropy(p: np.ndarray, axis: int | None = None) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(p > 0, -p * np.log2(p), 0.0)
    return terms.sum(axis=axis)


def routing_entropy(probs: np.ndarray) -> float:
    """Mean per-token entropy of the router distribution, in bits.

    ``probs`` is the (N, E) softmax output. A confident router scores near
    0; an untrained/indifferent one near log2(E).
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 2 or probs.shape[0] == 0:
        raise ConfigError(f"probs must be a non-empty (N, E) array, got {probs.shape}")
    rows = probs.sum(axis=1)
    if not np.allclose(rows, 1.0, atol=1e-3):
        raise ConfigError("probs rows must sum to 1 (softmax output)")
    return float(_entropy(probs, axis=1).mean())


def expert_usage_entropy(loads: np.ndarray) -> float:
    """Entropy of the aggregate expert-usage distribution, in bits.

    log2(E) means perfectly even token mass; lower values mean collapse
    onto few experts. Complements the max/mean figure in
    :class:`~repro.moe.LoadStats` (which bounds the *critical path* while
    this measures overall spread).
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.ndim != 1 or loads.size == 0:
        raise ConfigError("loads must be a non-empty 1-D array")
    total = loads.sum()
    if total <= 0:
        return 0.0
    return float(_entropy(loads / total))


def expert_specialization(
    token_ids: np.ndarray, expert_ids: np.ndarray, vocab_size: int, num_experts: int
) -> float:
    """Mutual information I(token; expert) in bits.

    High MI means experts specialized on token subsets (the behaviour MoE
    training aims for); zero means routing is independent of content
    (e.g. the random gate).
    """
    token_ids = np.asarray(token_ids).reshape(-1)
    expert_ids = np.asarray(expert_ids).reshape(-1)
    if token_ids.shape != expert_ids.shape or token_ids.size == 0:
        raise ConfigError("token_ids and expert_ids must be equal-length, non-empty")
    if token_ids.min() < 0 or token_ids.max() >= vocab_size:
        raise ConfigError("token ids out of vocabulary range")
    if expert_ids.min() < 0 or expert_ids.max() >= num_experts:
        raise ConfigError("expert ids out of range")
    joint = np.zeros((vocab_size, num_experts), dtype=np.float64)
    np.add.at(joint, (token_ids, expert_ids), 1.0)
    joint /= joint.sum()
    h_token = _entropy(joint.sum(axis=1))
    h_expert = _entropy(joint.sum(axis=0))
    h_joint = _entropy(joint)
    mi = float(h_token + h_expert - h_joint)
    return max(mi, 0.0)  # clamp float noise
