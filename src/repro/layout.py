"""The shared parallel-layout descriptor.

One frozen dataclass describes how a world of ranks is factored over the
four parallel axes the stack knows about — expert (EP), tensor (TP),
pipeline (PP) and ZeRO optimizer-state sharding — and validates the
factorization once, in one place. Both the measured side
(:class:`~repro.parallel.runner.TrainingRunConfig`, the strategy registry)
and the analytic side (:class:`~repro.perf.ParallelPlan`) build a
:class:`ParallelLayout`, so a layout that launches is exactly a layout
that projects, and the two can never drift.

Rank-coordinate convention (world rank ``r``)::

    stage      = r // plane_size           (pipeline stage, outermost)
    plane_rank = r %  plane_size
    ep_rank    = plane_rank % ep_size      (innermost: EP groups are
                                            consecutive ranks, the
                                            BaGuaLu placement rule)
    tp_rank    = (plane_rank // ep_size) % tp_size
    dp_index   = plane_rank // (ep_size * tp_size)

Keeping EP innermost puts token alltoalls on the tightest links; TP sits
just outside it, and replica (data-parallel) groups span the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.models.configs import ModelConfig

__all__ = ["ParallelLayout", "validate_layout_for_model"]


@dataclass(frozen=True)
class ParallelLayout:
    """A validated factorization of ``world_size`` ranks over parallel axes.

    ``pp_size`` must divide the world; ``tp_size * ep_size`` must divide
    the per-stage plane. ``zero_shards`` is a free parameter (the ZeRO
    group is carved greedily, and :func:`~repro.parallel.zero.shard_bounds`
    balances uneven shards), so it only needs to be positive.
    """

    world_size: int
    ep_size: int = 1
    tp_size: int = 1
    pp_size: int = 1
    zero_shards: int = 1

    def __post_init__(self) -> None:
        for name in ("world_size", "ep_size", "tp_size", "pp_size", "zero_shards"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.world_size % self.pp_size != 0:
            raise ConfigError(
                f"pp_size={self.pp_size} must divide world_size={self.world_size}"
            )
        plane = self.world_size // self.pp_size
        if plane % (self.tp_size * self.ep_size) != 0:
            raise ConfigError(
                f"tp_size*ep_size={self.tp_size * self.ep_size} must divide "
                f"the stage plane ({plane} ranks = world_size/pp_size)"
            )

    # ------------------------------------------------------------------ #
    # Derived sizes
    # ------------------------------------------------------------------ #

    @property
    def plane_size(self) -> int:
        """Ranks per pipeline stage."""
        return self.world_size // self.pp_size

    @property
    def dp_size(self) -> int:
        """Pure-replica (data-parallel) width: plane / (tp * ep)."""
        return self.plane_size // (self.tp_size * self.ep_size)

    @property
    def num_ep_groups(self) -> int:
        """EP groups per stage plane."""
        return self.plane_size // self.ep_size

    @property
    def data_streams(self) -> int:
        """Distinct data shards consumed per step (TP groups share one)."""
        return self.world_size // (self.tp_size * self.pp_size)

    # ------------------------------------------------------------------ #
    # Rank coordinates
    # ------------------------------------------------------------------ #

    def stage_of(self, rank: int) -> int:
        """Pipeline stage of a world rank."""
        return rank // self.plane_size

    def ep_rank_of(self, rank: int) -> int:
        """Position within the EP group (innermost axis)."""
        return (rank % self.plane_size) % self.ep_size

    def tp_rank_of(self, rank: int) -> int:
        """Position within the TP group (middle axis)."""
        return ((rank % self.plane_size) // self.ep_size) % self.tp_size

    def dp_index_of(self, rank: int) -> int:
        """Replica index (outermost axis within the plane)."""
        return (rank % self.plane_size) // (self.ep_size * self.tp_size)

    def describe(self) -> str:
        """Human-readable ``pp x dp x tp x ep`` summary."""
        return (
            f"world={self.world_size}: pp={self.pp_size} x dp={self.dp_size} "
            f"x tp={self.tp_size} x ep={self.ep_size}"
            + (f", zero={self.zero_shards}" if self.zero_shards > 1 else "")
        )


def validate_layout_for_model(
    layout: ParallelLayout,
    model: "ModelConfig",
    *,
    expert_granularity: str = "layer",
) -> None:
    """Check that ``layout`` can host ``model`` — the one shared implementation.

    Both sides of the stack call this: the measured runner (through
    :meth:`~repro.parallel.strategy.ParallelStrategy.validate`) and the
    analytic :meth:`~repro.perf.ParallelPlan.validate_against`, so a layout
    rejected by one is rejected by the other with the identical
    :class:`~repro.errors.ConfigError` message.

    ``expert_granularity`` selects how experts are placed on the EP group:

    * ``"layer"`` — every rank holds a slice of *every* MoE layer, so
      ``ep_size`` must divide ``num_experts`` (the measured runner's
      :class:`~repro.parallel.ep.DistributedMoELayer` contract);
    * ``"instance"`` — the ``num_moe_layers * num_experts`` expert MLPs are
      distributed as individual instances (BaGuaLu shards experts over the
      whole machine, so a rank may own experts from only some layers), so
      ``ep_size`` only needs to stay within the instance count.
    """
    if expert_granularity not in ("layer", "instance"):
        raise ConfigError(
            f"expert_granularity must be 'layer' or 'instance', "
            f"got {expert_granularity!r}"
        )
    if expert_granularity == "layer":
        if model.num_experts % layout.ep_size != 0:
            raise ConfigError(
                f"ep_size={layout.ep_size} must divide "
                f"num_experts={model.num_experts}"
            )
    else:
        instances = model.num_moe_layers * model.num_experts
        if layout.ep_size > max(instances, 1):
            raise ConfigError(
                f"ep_size={layout.ep_size} exceeds total expert instances "
                f"({instances}) — ranks would be idle"
            )
    if layout.tp_size > 1:
        if model.d_ff % layout.tp_size != 0:
            raise ConfigError(
                f"tp_size={layout.tp_size} must divide d_ff={model.d_ff}"
            )
        if model.num_dense_ffn_layers == 0:
            raise ConfigError(
                "tp_size > 1 needs dense FFN blocks to shard; "
                f"moe_every={model.moe_every} makes every block MoE "
                "(use moe_every >= 2)"
            )
    if layout.pp_size > 1 and model.n_layers < layout.pp_size:
        raise ConfigError(
            f"cannot split {model.n_layers} layers into "
            f"{layout.pp_size} pipeline stages"
        )
