"""Layout search: enumerate, filter, and rank parallel layouts.

The planner answers "how should I factor N nodes over (dp, tp, pp, ep,
zero) for this model on this cluster?" by walking every divisor-consistent
:class:`~repro.layout.ParallelLayout`, filtering through exactly the
validation path a measured run would take (the strategy registry plus the
shared layout-vs-model checks), pricing the survivors with the analytic
:class:`~repro.perf.StepModel`, and ranking them by predicted step time.

Because candidates are filtered by building a real
:class:`~repro.parallel.runner.TrainingRunConfig` and calling its resolved
strategy's ``validate``, every layout the planner emits is guaranteed to
launch, and every layout it rejects raises the identical
:class:`~repro.errors.ConfigError` at launch time — one validation spine,
zero drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, TopologyError
from repro.layout import ParallelLayout
from repro.models.configs import ModelConfig
from repro.network.presets import ClusterPreset, cluster_preset
from repro.parallel.runner import TrainingRunConfig
from repro.perf.calibration import CalibrationResult
from repro.perf.memory import node_memory
from repro.perf.plan import ParallelPlan
from repro.perf.stepmodel import StepBreakdown, StepModel

__all__ = [
    "PlannerConfig",
    "PlanCandidate",
    "RejectedLayout",
    "VerifiedCandidate",
    "PlanResult",
    "enumerate_layouts",
    "search_plans",
]


def _divisors(n: int) -> list[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def _layout_key(layout: ParallelLayout) -> tuple[int, int, int, int]:
    """Deterministic tiebreaker for equal predicted times."""
    return (layout.pp_size, layout.tp_size, layout.ep_size, layout.zero_shards)


@dataclass(frozen=True)
class PlannerConfig:
    """One planner invocation: model + cluster + per-rank workload.

    ``micro_batch``/``seq_len`` describe what each rank processes per step
    — the same numbers a measured :class:`TrainingRunConfig` would use for
    ``batch_size``/``seq_len``, so analytic and measured step times price
    the identical workload.
    """

    model: ModelConfig
    num_nodes: int
    cluster: str = "sunway"
    micro_batch: int = 4
    seq_len: int = 16
    #: Microbatches per step for pipeline candidates (GPipe bubble knob).
    num_microbatches: int = 2
    #: Search bounds: TP wider than a node's FFN sharding ever pays off is
    #: rare, and huge ZeRO groups only move optimizer bytes — capping both
    #: keeps the enumeration linear in practice.
    max_tp: int = 8
    max_zero: int = 8
    load_imbalance: float = 1.0
    #: Comm/compute overlap width applied to every candidate: >1 prices
    #: (and would launch) chunked expert dispatch + bucketed grad-sync
    #: overlap. Pipeline layouts ignore it (the measured pipeline path
    #: does not overlap), so their plans are priced at 1.
    overlap_chunks: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.micro_batch < 1 or self.seq_len < 1:
            raise ConfigError("micro_batch and seq_len must be >= 1")
        if self.num_microbatches < 1:
            raise ConfigError(
                f"num_microbatches must be >= 1, got {self.num_microbatches}"
            )
        if self.max_tp < 1 or self.max_zero < 1:
            raise ConfigError("max_tp and max_zero must be >= 1")
        if self.overlap_chunks < 1:
            raise ConfigError(
                f"overlap_chunks must be >= 1, got {self.overlap_chunks}"
            )
        _ = self.preset  # fail fast on unknown cluster names

    @property
    def preset(self) -> ClusterPreset:
        """The resolved cluster preset (raises on unknown names)."""
        try:
            return cluster_preset(self.cluster)
        except TopologyError as exc:
            raise ConfigError(str(exc)) from None

    def _overlap_for(self, layout: ParallelLayout) -> int:
        """Overlap width for one candidate (pipeline layouts don't overlap)."""
        return 1 if layout.pp_size > 1 else self.overlap_chunks

    def training_config(
        self, layout: ParallelLayout, num_steps: int = 2
    ) -> TrainingRunConfig:
        """The measured-run config this planner row corresponds to."""
        return TrainingRunConfig(
            model=self.model,
            world_size=layout.world_size,
            ep_size=layout.ep_size,
            tp_size=layout.tp_size,
            pp_size=layout.pp_size,
            zero_shards=layout.zero_shards,
            num_steps=num_steps,
            batch_size=self.micro_batch,
            seq_len=self.seq_len,
            num_microbatches=self.num_microbatches,
            overlap_chunks=self._overlap_for(layout),
        )

    def parallel_plan(self, layout: ParallelLayout) -> ParallelPlan:
        """The analytic plan this planner row corresponds to."""
        return ParallelPlan(
            num_nodes=layout.world_size,
            ep_size=layout.ep_size,
            tp_size=layout.tp_size,
            pp_size=layout.pp_size,
            zero_shards=layout.zero_shards,
            micro_batch=self.micro_batch,
            seq_len=self.seq_len,
            num_microbatches=self.num_microbatches,
            load_imbalance=self.load_imbalance,
            overlap_chunks=self._overlap_for(layout),
        )


@dataclass(frozen=True)
class PlanCandidate:
    """One launchable layout with its analytic price."""

    layout: ParallelLayout
    #: Registry name of the strategy ``strategy_for_layout`` dispatches to.
    strategy: str
    plan: ParallelPlan
    predicted_step_time: float
    breakdown: StepBreakdown

    @property
    def tokens_per_second(self) -> float:
        return self.plan.global_tokens / self.predicted_step_time

    def axes(self) -> dict[str, int]:
        lay = self.layout
        return {
            "dp": lay.dp_size,
            "tp": lay.tp_size,
            "pp": lay.pp_size,
            "ep": lay.ep_size,
            "zero": lay.zero_shards,
        }


@dataclass(frozen=True)
class RejectedLayout:
    """A layout the validation spine (or memory model) turned down."""

    layout: ParallelLayout
    reason: str


@dataclass(frozen=True)
class VerifiedCandidate:
    """A top-k candidate after its short measured (simmpi) run."""

    candidate: PlanCandidate
    #: Virtual step time measured by the simmpi run.
    measured_step_time: float
    #: The raw analytic prediction (preset efficiency, pre-calibration).
    predicted_step_time: float
    #: Re-prediction with the fitted efficiency; None when calibration
    #: was skipped or infeasible.
    calibrated_step_time: float | None = None

    @property
    def relative_error(self) -> float:
        """|predicted - measured| / measured at the preset efficiency."""
        return (
            abs(self.predicted_step_time - self.measured_step_time)
            / self.measured_step_time
        )

    @property
    def calibrated_relative_error(self) -> float | None:
        if self.calibrated_step_time is None:
            return None
        return (
            abs(self.calibrated_step_time - self.measured_step_time)
            / self.measured_step_time
        )


@dataclass(frozen=True)
class PlanResult:
    """Everything one planner run produced."""

    config: PlannerConfig
    #: Launchable candidates, fastest predicted first.
    candidates: tuple[PlanCandidate, ...]
    #: Layouts turned down, with the exact launch-time error message.
    rejected: tuple[RejectedLayout, ...]
    #: Top-k candidates with measured step times (empty before verify).
    verified: tuple[VerifiedCandidate, ...] = ()
    #: Efficiency fit anchored on the best verified candidate, when one ran.
    calibration: CalibrationResult | None = None
    #: Candidate ranking re-priced at the fitted efficiency (empty unless
    #: calibration succeeded).
    recalibrated: tuple[PlanCandidate, ...] = field(default=())

    @property
    def best(self) -> PlanCandidate:
        """The winning layout: fastest measured if verified, else ranked #1."""
        if not self.candidates:
            raise ConfigError("planner produced no launchable candidates")
        if self.verified:
            winner = min(self.verified, key=lambda v: v.measured_step_time)
            return winner.candidate
        return self.candidates[0]

    @property
    def median_relative_error(self) -> float | None:
        """Median model-vs-measured error over the verified candidates.

        Uses the calibrated predictions when the fit ran (the planner's
        headline accuracy number); None before verification.
        """
        if not self.verified:
            return None
        errors = sorted(
            v.calibrated_relative_error
            if v.calibrated_relative_error is not None
            else v.relative_error
            for v in self.verified
        )
        mid = len(errors) // 2
        if len(errors) % 2:
            return errors[mid]
        return 0.5 * (errors[mid - 1] + errors[mid])


def enumerate_layouts(
    world_size: int, max_tp: int = 8, max_zero: int = 8
) -> list[ParallelLayout]:
    """Every divisor-consistent layout of ``world_size`` ranks.

    Walks pp over divisors of the world, tp x ep over divisors of the
    per-stage plane, and ZeRO shard counts (divisors of the world, capped
    at ``max_zero``) on otherwise-pure-DP layouts — the only shape the
    registered ``zero`` strategy accepts. Order is deterministic:
    ascending (pp, tp, ep, zero).
    """
    if world_size < 1:
        raise ConfigError(f"world_size must be >= 1, got {world_size}")
    layouts: list[ParallelLayout] = []
    for pp in _divisors(world_size):
        plane = world_size // pp
        for tp in _divisors(plane):
            if tp > max_tp:
                continue
            for ep in _divisors(plane // tp):
                if tp == 1 and pp == 1:
                    zeros = [1] + [
                        z for z in _divisors(world_size) if 2 <= z <= max_zero
                    ]
                else:
                    zeros = [1]
                for zero in zeros:
                    layouts.append(
                        ParallelLayout(
                            world_size=world_size,
                            ep_size=ep,
                            tp_size=tp,
                            pp_size=pp,
                            zero_shards=zero,
                        )
                    )
    return layouts


def search_plans(config: PlannerConfig) -> PlanResult:
    """Enumerate, filter through the launch path, price, and rank.

    Each enumerated layout passes through three gates:

    1. the measured-run validation spine — a real ``TrainingRunConfig`` is
       built and its resolved strategy's ``validate`` runs (identical
       checks and messages to an actual launch);
    2. the analytic plan's model checks (instance-granularity experts);
    3. per-node memory against the preset machine's capacity.

    Survivors are priced by :class:`StepModel` and ranked ascending by
    predicted step time (ties broken by the layout tuple, so the ranking
    is deterministic).
    """
    preset = config.preset
    machine = preset.machine(config.num_nodes)
    network = preset.network(config.num_nodes)
    step_model = StepModel(config.model, machine, network)
    mem_budget = machine.node.memory_bytes

    candidates: list[PlanCandidate] = []
    rejected: list[RejectedLayout] = []
    for layout in enumerate_layouts(
        config.num_nodes, max_tp=config.max_tp, max_zero=config.max_zero
    ):
        try:
            run_cfg = config.training_config(layout)
            strategy = run_cfg.resolve_strategy()
            strategy.validate(run_cfg)
        except ConfigError as exc:
            rejected.append(RejectedLayout(layout, str(exc)))
            continue
        try:
            plan = config.parallel_plan(layout)
            mem = node_memory(config.model, plan)
            if mem.total > mem_budget:
                rejected.append(
                    RejectedLayout(
                        layout,
                        f"needs {mem.total / 2**30:.3g} GiB/node but the "
                        f"{preset.name} node has {mem_budget / 2**30:.3g} GiB",
                    )
                )
                continue
            breakdown = step_model.step_breakdown(plan)
            predicted = step_model.step_time(plan)
        except ConfigError as exc:
            rejected.append(RejectedLayout(layout, str(exc)))
            continue
        candidates.append(
            PlanCandidate(
                layout=layout,
                strategy=strategy.name,
                plan=plan,
                predicted_step_time=predicted,
                breakdown=breakdown,
            )
        )

    candidates.sort(key=lambda c: (c.predicted_step_time, _layout_key(c.layout)))
    return PlanResult(
        config=config,
        candidates=tuple(candidates),
        rejected=tuple(rejected),
    )
