"""Auto-parallelism planner: search, rank, verify, and report layouts.

One subsystem ties the stack's three halves together:

* the shared :class:`~repro.layout.ParallelLayout` + strategy registry
  decide what *launches* (the measured spine);
* the analytic :class:`~repro.perf.StepModel` decides what is *fast*;
* short simmpi runs decide what is *true*, feeding
  :func:`~repro.perf.calibrate_efficiency` back into the ranking.

Typical use::

    from repro.plan import plan_layouts, build_plan_report

    result = plan_layouts(tiny_config(), num_nodes=8, cluster="toy")
    print(build_plan_report(result))

or from the CLI: ``python -m repro.cli plan --config tiny --nodes 8``.
"""

from repro.plan.search import (
    PlanCandidate,
    PlannerConfig,
    PlanResult,
    RejectedLayout,
    VerifiedCandidate,
    enumerate_layouts,
    search_plans,
)
from repro.plan.verify import plan_layouts, verify_plans
from repro.plan.report import (
    build_plan_report,
    generate_plan_report,
    plan_records,
    write_plan_records,
)

__all__ = [
    "PlannerConfig",
    "PlanCandidate",
    "RejectedLayout",
    "VerifiedCandidate",
    "PlanResult",
    "enumerate_layouts",
    "search_plans",
    "verify_plans",
    "plan_layouts",
    "plan_records",
    "write_plan_records",
    "build_plan_report",
    "generate_plan_report",
]
