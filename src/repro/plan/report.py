"""Deterministic markdown plan reports + typed planner records.

Mirrors :mod:`repro.obs.report`: the planner's outcome flattens into typed
JSONL records (``record`` ∈ ``plan_summary`` / ``plan_candidate`` /
``plan_verified`` / ``plan_calibration`` / ``plan_rejected``) and renders
into a byte-stable markdown report — floats through the shared
:func:`~repro.obs.report.fmt_scalar`, every table sorted or rank-ordered,
no wall-clock anywhere — so two planner runs over the same inputs produce
byte-identical documents CI can ``cmp``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.layout import ParallelLayout
from repro.obs.report import fmt_scalar as _fmt
from repro.obs.report import kv_table as _kv_table
from repro.plan.search import PlanResult

__all__ = [
    "plan_records",
    "write_plan_records",
    "build_plan_report",
    "generate_plan_report",
]

#: Rows shown per table before the deterministic "... and N more" cut.
_MAX_ROWS = 32


def _axes_str(layout: ParallelLayout) -> str:
    return (
        f"dp={layout.dp_size} tp={layout.tp_size} pp={layout.pp_size} "
        f"ep={layout.ep_size} zero={layout.zero_shards}"
    )


def _axes_fields(layout: ParallelLayout) -> dict[str, int]:
    return {
        "dp": layout.dp_size,
        "tp": layout.tp_size,
        "pp": layout.pp_size,
        "ep": layout.ep_size,
        "zero": layout.zero_shards,
    }


def plan_records(result: PlanResult) -> list[dict[str, Any]]:
    """Flatten a planner result into typed JSONL records."""
    cfg = result.config
    records: list[dict[str, Any]] = [
        {
            "record": "plan_summary",
            "model": cfg.model.name,
            "num_nodes": cfg.num_nodes,
            "cluster": cfg.cluster,
            "micro_batch": cfg.micro_batch,
            "seq_len": cfg.seq_len,
            "num_microbatches": cfg.num_microbatches,
            "num_candidates": len(result.candidates),
            "num_rejected": len(result.rejected),
            "num_verified": len(result.verified),
        }
    ]
    for rank, cand in enumerate(result.candidates, start=1):
        records.append(
            {
                "record": "plan_candidate",
                "rank": rank,
                **_axes_fields(cand.layout),
                "strategy": cand.strategy,
                "predicted_step_time": cand.predicted_step_time,
                "tokens_per_second": cand.tokens_per_second,
                **{
                    f"t_{name}": value
                    for name, value in cand.breakdown.as_dict().items()
                    if name != "total"
                },
            }
        )
    for v in result.verified:
        rec: dict[str, Any] = {
            "record": "plan_verified",
            **_axes_fields(v.candidate.layout),
            "strategy": v.candidate.strategy,
            "predicted_step_time": v.predicted_step_time,
            "measured_step_time": v.measured_step_time,
            "relative_error": v.relative_error,
        }
        if v.calibrated_step_time is not None:
            rec["calibrated_step_time"] = v.calibrated_step_time
            rec["calibrated_relative_error"] = v.calibrated_relative_error
        records.append(rec)
    if result.calibration is not None:
        cal = result.calibration
        records.append(
            {
                "record": "plan_calibration",
                "efficiency": cal.efficiency,
                "predicted_step_time": cal.predicted_step_time,
                "measured_step_time": cal.measured_step_time,
                "relative_error": cal.relative_error,
            }
        )
    for rej in result.rejected:
        records.append(
            {
                "record": "plan_rejected",
                **_axes_fields(rej.layout),
                "reason": rej.reason,
            }
        )
    return records


def write_plan_records(result: PlanResult, path: str | Path) -> None:
    """Write the planner's typed records as JSONL (stable key order)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for rec in plan_records(result):
            fh.write(json.dumps(rec, sort_keys=True) + "\n")


def _section_planner(result: PlanResult) -> list[str]:
    cfg = result.config
    rows = [
        ("model", cfg.model.name),
        ("nodes", cfg.num_nodes),
        ("cluster", cfg.cluster),
        ("micro_batch", cfg.micro_batch),
        ("seq_len", cfg.seq_len),
        ("num_microbatches", cfg.num_microbatches),
        ("layouts enumerated", len(result.candidates) + len(result.rejected)),
        ("launchable candidates", len(result.candidates)),
        ("rejected layouts", len(result.rejected)),
    ]
    if result.candidates:
        rows.append(("best layout", _axes_str(result.best.layout)))
    med = result.median_relative_error
    if med is not None:
        rows.append(("median model-vs-measured error", med))
    return ["## Planner", ""] + _kv_table(rows) + [""]


def _candidate_table(
    candidates, heading: str, note: str | None = None
) -> list[str]:
    if not candidates:
        return []
    lines = [heading, ""]
    if note:
        lines += [note, ""]
    lines += [
        "| rank | layout | strategy | step time (s) | tokens/s | compute (s) | comm (s) | bubble (s) |",
        "| --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    for rank, cand in enumerate(candidates[:_MAX_ROWS], start=1):
        bd = cand.breakdown
        lines.append(
            f"| {rank} | {_axes_str(cand.layout)} | {cand.strategy} | "
            f"{_fmt(cand.predicted_step_time)} | {_fmt(cand.tokens_per_second)} | "
            f"{_fmt(bd.compute)} | {_fmt(bd.communication)} | "
            f"{_fmt(bd.pipeline_bubble)} |"
        )
    if len(candidates) > _MAX_ROWS:
        lines.append(f"| ... | and {len(candidates) - _MAX_ROWS} more | | | | | | |")
    lines.append("")
    return lines


def _section_verified(result: PlanResult) -> list[str]:
    if not result.verified:
        return []
    lines = [
        "## Verified candidates",
        "",
        "| layout | strategy | predicted (s) | measured (s) | error | calibrated (s) | cal. error |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    for v in result.verified:
        if v.calibrated_step_time is not None:
            cal = _fmt(v.calibrated_step_time)
            cal_err = f"{v.calibrated_relative_error:.1%}"
        else:
            cal, cal_err = "-", "-"
        lines.append(
            f"| {_axes_str(v.candidate.layout)} | {v.candidate.strategy} | "
            f"{_fmt(v.predicted_step_time)} | {_fmt(v.measured_step_time)} | "
            f"{v.relative_error:.1%} | {cal} | {cal_err} |"
        )
    lines.append("")
    return lines


def _section_calibration(result: PlanResult) -> list[str]:
    cal = result.calibration
    if cal is None:
        return []
    rows = [
        ("fitted compute efficiency", cal.efficiency),
        ("anchor predicted step time (s)", cal.predicted_step_time),
        ("anchor measured step time (s)", cal.measured_step_time),
        ("anchor relative error", cal.relative_error),
    ]
    return ["## Calibration", ""] + _kv_table(rows) + [""]


def _section_rejected(result: PlanResult) -> list[str]:
    if not result.rejected:
        return []
    lines = [
        "## Rejected layouts",
        "",
        "| layout | reason |",
        "| --- | --- |",
    ]
    for rej in result.rejected[:_MAX_ROWS]:
        lines.append(f"| {_axes_str(rej.layout)} | {rej.reason} |")
    if len(result.rejected) > _MAX_ROWS:
        lines.append(f"| ... | and {len(result.rejected) - _MAX_ROWS} more |")
    lines.append("")
    return lines


def build_plan_report(result: PlanResult, title: str = "Plan report") -> str:
    """Render a planner result into one deterministic markdown report."""
    lines = [f"# {title}", ""]
    lines += _section_planner(result)
    lines += _candidate_table(result.candidates, "## Ranked candidates")
    lines += _section_verified(result)
    lines += _section_calibration(result)
    lines += _candidate_table(
        result.recalibrated,
        "## Ranking at fitted efficiency",
        note="The full candidate list re-priced with the calibrated machine.",
    )
    lines += _section_rejected(result)
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"


def generate_plan_report(
    result: PlanResult,
    out_path: str | Path | None = None,
    title: str = "Plan report",
) -> str:
    """Render the plan report; also write it to ``out_path`` when given."""
    report = build_plan_report(result, title=title)
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(report)
    return report
