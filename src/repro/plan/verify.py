"""Measured verification of ranked plan candidates.

The search layer ranks layouts analytically; this module closes the loop
by actually *running* the top-k through the measured side — short simmpi
SPMD runs dispatched through the strategy registry, on the same preset
network and machine the analytic model priced — then feeding the best
measurement back through :func:`~repro.perf.calibrate_efficiency` and
re-pricing the whole ranking at the fitted efficiency.

That gives the planner's report three columns per verified candidate:
the raw prediction, the measurement, and the calibrated prediction — with
the model-vs-measured relative error for each, which is the planner's
accuracy contract (median calibrated error on the verified set).
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigError
from repro.parallel.runner import run_distributed_training
from repro.perf.calibration import CalibrationResult, calibrate_efficiency
from repro.perf.stepmodel import StepModel
from repro.plan.search import (
    PlanCandidate,
    PlannerConfig,
    PlanResult,
    VerifiedCandidate,
    _layout_key,
    search_plans,
)

__all__ = ["verify_plans", "plan_layouts"]


def verify_plans(
    result: PlanResult,
    top_k: int = 2,
    num_steps: int = 2,
    calibrate: bool = True,
) -> PlanResult:
    """Run the top-k candidates through simmpi and calibrate the model.

    Each verified run uses the exact :class:`TrainingRunConfig` the search
    validated (same strategy dispatch, same workload), with the preset's
    network and machine models, so measured and predicted step times are
    directly comparable. When ``calibrate`` is set, the top-ranked
    candidate's measurement anchors an efficiency fit; all candidates are
    then re-priced with the fitted machine into ``result.recalibrated``.
    Calibration failures (e.g. a measurement at the modelled communication
    floor) are tolerated: the result simply carries no fit.
    """
    if top_k < 1:
        raise ConfigError(f"top_k must be >= 1, got {top_k}")
    if num_steps < 1:
        raise ConfigError(f"num_steps must be >= 1, got {num_steps}")
    config = result.config
    preset = config.preset
    network = preset.network(config.num_nodes)
    machine = preset.machine(config.num_nodes)

    top = result.candidates[:top_k]
    measured: list[tuple[PlanCandidate, float]] = []
    for cand in top:
        run_cfg = config.training_config(cand.layout, num_steps=num_steps)
        run = run_distributed_training(run_cfg, network=network, machine=machine)
        measured.append((cand, run.step_time))

    calibration: CalibrationResult | None = None
    if calibrate and measured:
        anchor, anchor_time = measured[0]  # top-ranked candidate anchors the fit
        try:
            calibration = calibrate_efficiency(
                config.model, machine, network, anchor.plan, anchor_time
            )
        except ConfigError:
            calibration = None

    recalibrated: tuple[PlanCandidate, ...] = ()
    calibrated_times: dict[int, float] = {}
    if calibration is not None:
        fitted_model = StepModel(config.model, calibration.machine, network)
        repriced = [
            replace(
                c,
                predicted_step_time=fitted_model.step_time(c.plan),
                breakdown=fitted_model.step_breakdown(c.plan),
            )
            for c in result.candidates
        ]
        repriced.sort(key=lambda c: (c.predicted_step_time, _layout_key(c.layout)))
        recalibrated = tuple(repriced)
        calibrated_times = {
            id(c): fitted_model.step_time(c.plan) for c, _ in measured
        }

    verified = tuple(
        VerifiedCandidate(
            candidate=cand,
            measured_step_time=t,
            predicted_step_time=cand.predicted_step_time,
            calibrated_step_time=calibrated_times.get(id(cand)),
        )
        for cand, t in measured
    )
    return replace(
        result,
        verified=verified,
        calibration=calibration,
        recalibrated=recalibrated,
    )


def plan_layouts(
    model,
    num_nodes: int,
    cluster: str = "sunway",
    micro_batch: int = 4,
    seq_len: int = 16,
    num_microbatches: int = 2,
    max_tp: int = 8,
    max_zero: int = 8,
    load_imbalance: float = 1.0,
    verify: bool = True,
    top_k: int = 2,
    verify_steps: int = 2,
) -> PlanResult:
    """One-shot planner facade: search, rank, and (optionally) verify.

    The single entry point the CLI and ``repro.api`` expose::

        result = plan_layouts(tiny_config(), num_nodes=8, cluster="toy")
        print(result.best.layout.describe())
    """
    config = PlannerConfig(
        model=model,
        num_nodes=num_nodes,
        cluster=cluster,
        micro_batch=micro_batch,
        seq_len=seq_len,
        num_microbatches=num_microbatches,
        max_tp=max_tp,
        max_zero=max_zero,
        load_imbalance=load_imbalance,
    )
    result = search_plans(config)
    if verify and result.candidates:
        result = verify_plans(result, top_k=top_k, num_steps=verify_steps)
    return result
