"""Single-process training loop (the reference the parallel paths match).

Handles the full mixed-precision protocol: scaled loss, overflow detection,
skipped steps, gradient clipping, and LR scheduling. The distributed
trainers in :mod:`repro.parallel` reuse the same step anatomy with
communication inserted at the gradient stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.amp import DynamicLossScaler, grads_have_overflow
from repro.data.loader import Batch, ShardedLoader
from repro.errors import ConfigError
from repro.models.module import Module
from repro.train.clip import clip_grad_norm, global_grad_norm
from repro.train.optim import Optimizer
from repro.train.schedules import ConstantLR, LRSchedule

__all__ = ["StepResult", "Trainer"]


@dataclass
class StepResult:
    """Metrics from one optimizer step attempt."""

    step: int
    loss: float
    lr: float
    grad_norm: float
    skipped: bool
    loss_scale: float
    extras: dict[str, float] = field(default_factory=dict)


class Trainer:
    """Glue between model, optimizer, schedule, loss scaler, and data.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.Module` exposing
        ``loss(tokens, targets) -> Tensor``.
    optimizer:
        An :class:`~repro.train.optim.Optimizer` over the model parameters.
    schedule:
        LR schedule (constant when omitted; the optimizer's ``lr`` is
        overwritten every step).
    scaler:
        Dynamic loss scaler; enables the fp16 protocol when given.
    grad_clip:
        Optional global-norm clip value.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        schedule: LRSchedule | None = None,
        scaler: DynamicLossScaler | None = None,
        grad_clip: float | None = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.schedule = schedule or ConstantLR(optimizer.lr)
        self.scaler = scaler
        self.grad_clip = grad_clip
        if grad_clip is not None and grad_clip <= 0:
            raise ConfigError(f"grad_clip must be > 0, got {grad_clip}")
        self.step_count = 0
        self.history: list[StepResult] = []

    def train_step(self, batch: Batch) -> StepResult:
        """Run forward/backward/update on one batch; returns metrics."""
        return self.train_step_accumulated([batch])

    def train_step_accumulated(self, batches: list[Batch]) -> StepResult:
        """One optimizer step over several microbatches (gradient
        accumulation): each backward is scaled by 1/len(batches), so the
        update equals a single step on the concatenated batch."""
        if not batches:
            raise ConfigError("train_step_accumulated needs >= 1 batch")
        lr = self.schedule(self.step_count)
        self.optimizer.lr = lr
        self.model.zero_grad()

        scale = self.scaler.scale if self.scaler is not None else 1.0
        inv_n = 1.0 / len(batches)
        loss_value = 0.0
        for batch in batches:
            loss = self.model.loss(batch.tokens, batch.targets)
            loss_value += float(loss.item()) * inv_n
            loss.backward(np.asarray(scale * inv_n, dtype=loss.data.dtype))

        inv = 1.0 / scale
        skipped = False
        if self.scaler is not None and grads_have_overflow(self.optimizer.params):
            skipped = True
            grad_norm = float("inf")
            self.scaler.update(found_overflow=True)
        else:
            if self.grad_clip is not None:
                grad_norm = clip_grad_norm(self.optimizer.params, self.grad_clip, grad_scale=inv)
            else:
                grad_norm = global_grad_norm(self.optimizer.params, grad_scale=inv)
            self.optimizer.step(grad_scale=inv)
            if self.scaler is not None:
                self.scaler.update(found_overflow=False)

        result = StepResult(
            step=self.step_count,
            loss=loss_value,
            lr=lr,
            grad_norm=grad_norm,
            skipped=skipped,
            loss_scale=scale,
        )
        self.step_count += 1
        self.history.append(result)
        return result

    def evaluate(self, loader: ShardedLoader, num_steps: int, start_step: int = 0) -> dict[str, float]:
        """Held-out evaluation: mean loss and perplexity over ``num_steps``
        batches, without touching gradients or the step counter."""
        if num_steps < 1:
            raise ConfigError(f"num_steps must be >= 1, got {num_steps}")
        from repro.tensor import no_grad

        was_training = self.model.training
        self.model.eval()
        total, count = 0.0, 0
        try:
            with no_grad():
                for batch in loader.iter_batches(num_steps, start_step=start_step):
                    loss = self.model.loss(batch.tokens, batch.targets)
                    total += float(loss.item())
                    count += 1
        finally:
            if was_training:
                self.model.train()
        mean = total / count
        return {"loss": mean, "perplexity": float(np.exp(min(mean, 50.0)))}

    def fit(
        self,
        loader: ShardedLoader,
        num_steps: int,
        log_every: int = 0,
        on_step: Callable[[StepResult], None] | None = None,
        accumulate_steps: int = 1,
    ) -> list[StepResult]:
        """Train for ``num_steps`` optimizer steps from ``loader``.

        With ``accumulate_steps > 1``, each optimizer step consumes that
        many consecutive loader batches (gradient accumulation).
        """
        if num_steps < 1:
            raise ConfigError(f"num_steps must be >= 1, got {num_steps}")
        if accumulate_steps < 1:
            raise ConfigError(f"accumulate_steps must be >= 1, got {accumulate_steps}")
        results = []
        for _ in range(num_steps):
            base = self.step_count * accumulate_steps
            batches = [loader.get_batch(base + i) for i in range(accumulate_steps)]
            result = self.train_step_accumulated(batches)
            results.append(result)
            if on_step is not None:
                on_step(result)
            if log_every and result.step % log_every == 0:
                print(
                    f"step {result.step:5d}  loss {result.loss:.4f}  "
                    f"lr {result.lr:.2e}  |g| {result.grad_norm:.3f}"
                    + ("  [skipped]" if result.skipped else "")
                )
        return results
