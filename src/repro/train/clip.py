"""Global gradient-norm clipping."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor

__all__ = ["global_grad_norm", "clip_grad_norm"]


def global_grad_norm(params: Iterable[Tensor], grad_scale: float = 1.0) -> float:
    """L2 norm over all gradients (after applying ``grad_scale``).

    Returns inf when any gradient is non-finite (so callers can treat a
    scaled-fp16 overflow uniformly).
    """
    total = 0.0
    for p in params:
        if p.grad is None:
            continue
        g = p.grad.astype(np.float64) * grad_scale
        if not np.isfinite(g).all():
            return math.inf
        total += float((g * g).sum())
    return math.sqrt(total)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float, grad_scale: float = 1.0) -> float:
    """Scale gradients so their global norm is at most ``max_norm``.

    Returns the pre-clip norm. With ``grad_scale`` (loss-scaler inverse),
    the comparison happens in *unscaled* units while gradients remain
    scaled — the clip factor is applied on top.
    """
    if max_norm <= 0:
        raise ConfigError(f"max_norm must be > 0, got {max_norm}")
    params = list(params)
    norm = global_grad_norm(params, grad_scale)
    if not math.isfinite(norm):
        return norm
    if norm > max_norm:
        factor = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad = (p.grad * factor).astype(p.grad.dtype)
    return norm
