"""Checkpointing: model + optimizer + scaler state to a single .npz file."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.amp import DynamicLossScaler
from repro.errors import CheckpointError
from repro.models.module import Module
from repro.train.optim import Optimizer

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(
    path: str | Path,
    model: Module,
    optimizer: Optimizer | None = None,
    scaler: DynamicLossScaler | None = None,
    step: int = 0,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Serialize training state to ``path`` (.npz). Returns the path."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    for name, arr in model.state_dict().items():
        arrays[f"model/{name}"] = arr
    if optimizer is not None:
        for name, val in optimizer.state_dict().items():
            arrays[f"optim/{name}"] = np.asarray(val)
    meta = {
        "format_version": _FORMAT_VERSION,
        "step": int(step),
        "scaler": scaler.state_dict() if scaler is not None else None,
        "extra": extra or {},
    }
    arrays["__meta__"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(
    path: str | Path,
    model: Module,
    optimizer: Optimizer | None = None,
    scaler: DynamicLossScaler | None = None,
    strict: bool = True,
) -> dict[str, Any]:
    """Restore state saved by :func:`save_checkpoint`.

    Returns the metadata dict (including ``step``). Raises
    :class:`~repro.errors.CheckpointError` on missing/corrupt files.
    """
    path = Path(path)
    if not path.exists():
        alt = path.with_suffix(path.suffix + ".npz")
        if alt.exists():
            path = alt
        else:
            raise CheckpointError(f"checkpoint not found: {path}")
    try:
        blob = np.load(path, allow_pickle=False)
    except Exception as exc:  # zipfile/format errors
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if "__meta__" not in blob:
        raise CheckpointError(f"{path} is not a repro checkpoint (missing __meta__)")
    meta = json.loads(bytes(blob["__meta__"]).decode("utf-8"))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {meta.get('format_version')!r}"
        )

    model_state = {
        key[len("model/"):]: blob[key] for key in blob.files if key.startswith("model/")
    }
    model.load_state_dict(model_state, strict=strict)

    if optimizer is not None:
        optim_state = {
            key[len("optim/"):]: blob[key] for key in blob.files if key.startswith("optim/")
        }
        if optim_state:
            # Scalars were saved as 0-d arrays.
            optimizer.load_state_dict(
                {k: (float(v) if v.ndim == 0 else v) for k, v in optim_state.items()}
            )
    if scaler is not None and meta.get("scaler") is not None:
        scaler.load_state_dict(meta["scaler"])
    return meta
