"""Training stack: optimizers, schedules, clipping, trainer, checkpoints."""

from repro.train.checkpoint import load_checkpoint, save_checkpoint
from repro.train.clip import clip_grad_norm, global_grad_norm
from repro.train.metrics import LatencyStats, MetricsLogger, read_jsonl
from repro.train.optim import SGD, Adam, AdamW, Optimizer
from repro.train.schedules import ConstantLR, LRSchedule, WarmupCosineLR, WarmupLinearLR
from repro.train.trainer import StepResult, Trainer

__all__ = [
    "load_checkpoint",
    "save_checkpoint",
    "LatencyStats",
    "MetricsLogger",
    "read_jsonl",
    "clip_grad_norm",
    "global_grad_norm",
    "SGD",
    "Adam",
    "AdamW",
    "Optimizer",
    "ConstantLR",
    "LRSchedule",
    "WarmupCosineLR",
    "WarmupLinearLR",
    "StepResult",
    "Trainer",
]
