"""Optimizers with fp32 master weights for low-precision parameters.

When a parameter's emulated dtype is fp16/bf16, the optimizer keeps an
fp32 master copy: gradients (possibly scaled) update the master, and the
parameter is re-quantized from it — the standard mixed-precision recipe,
without which fp16 weight updates stall once ``lr * grad`` drops below the
representable step around each weight value.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor, quantize

__all__ = ["Optimizer", "SGD", "Adam", "AdamW"]


class Optimizer:
    """Base optimizer over a list of tensors."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: list[Tensor] = list(params)
        if not self.params:
            raise ConfigError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigError(f"lr must be > 0, got {lr}")
        self.lr = float(lr)
        self.step_count = 0
        # fp32 master copies for low-precision params.
        self._masters: dict[int, np.ndarray] = {}
        for i, p in enumerate(self.params):
            if p.dtype.name in ("fp16", "bf16"):
                self._masters[i] = p.data.astype(np.float32).copy()

    def master_of(self, index: int) -> np.ndarray:
        """The array actually updated for param ``index`` (master or data)."""
        return self._masters.get(index, self.params[index].data)

    def _write_back(self, index: int, new_master: np.ndarray) -> None:
        p = self.params[index]
        if index in self._masters:
            self._masters[index] = new_master
            p.data = quantize(new_master, p.dtype)
        else:
            p.data = new_master.astype(p.data.dtype, copy=False)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self, grad_scale: float = 1.0) -> None:
        """Apply one update. ``grad_scale`` multiplies gradients (use the
        loss scaler's ``inv_scale`` for fp16 training)."""
        raise NotImplementedError

    # -- checkpointing -------------------------------------------------- #

    def state_dict(self) -> dict[str, np.ndarray | float]:
        state: dict[str, np.ndarray | float] = {"step_count": float(self.step_count)}
        for i, m in self._masters.items():
            state[f"master.{i}"] = m.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray | float]) -> None:
        self.step_count = int(state["step_count"])
        for i in list(self._masters):
            key = f"master.{i}"
            if key in state:
                self._masters[i] = np.asarray(state[key], dtype=np.float32).copy()


class SGD(Optimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0,1), got {momentum}")
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, grad_scale: float = 1.0) -> None:
        self.step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad.astype(np.float32) * grad_scale
            if self.momentum > 0.0:
                v = self._velocity.get(i)
                v = g if v is None else self.momentum * v + g
                self._velocity[i] = v
                g = v
            master = self.master_of(i).astype(np.float32)
            self._write_back(i, master - self.lr * g)

    def state_dict(self) -> dict[str, np.ndarray | float]:
        state = super().state_dict()
        for i, v in self._velocity.items():
            state[f"velocity.{i}"] = v.copy()
        return state

    def load_state_dict(self, state) -> None:
        super().load_state_dict(state)
        self._velocity = {
            int(k.split(".")[1]): np.asarray(v, dtype=np.float32).copy()
            for k, v in state.items()
            if k.startswith("velocity.")
        }


class Adam(Optimizer):
    """Adam (Kingma & Ba) with fp32 moments and bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ConfigError(f"betas must be in [0,1), got {betas}")
        if eps <= 0:
            raise ConfigError(f"eps must be > 0, got {eps}")
        if weight_decay < 0:
            raise ConfigError(f"weight_decay must be >= 0, got {weight_decay}")
        self.beta1, self.beta2 = float(b1), float(b2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    #: AdamW decouples weight decay from the gradient; plain Adam adds
    #: ``wd * w`` to the gradient. Subclass toggles this.
    decoupled_weight_decay = False

    def step(self, grad_scale: float = 1.0) -> None:
        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad.astype(np.float32) * grad_scale
            master = self.master_of(i).astype(np.float32)
            if self.weight_decay and not self.decoupled_weight_decay:
                g = g + self.weight_decay * master
            m = self._m.get(i)
            v = self._v.get(i)
            m = (1 - self.beta1) * g if m is None else self.beta1 * m + (1 - self.beta1) * g
            v = (1 - self.beta2) * g * g if v is None else self.beta2 * v + (1 - self.beta2) * g * g
            self._m[i], self._v[i] = m, v
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            if self.weight_decay and self.decoupled_weight_decay:
                update = update + self.weight_decay * master
            self._write_back(i, master - self.lr * update)

    def state_dict(self) -> dict[str, np.ndarray | float]:
        state = super().state_dict()
        for i, m in self._m.items():
            state[f"m.{i}"] = m.copy()
        for i, v in self._v.items():
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_dict(self, state) -> None:
        super().load_state_dict(state)
        self._m = {
            int(k.split(".")[1]): np.asarray(v, dtype=np.float32).copy()
            for k, v in state.items()
            if k.startswith("m.")
        }
        self._v = {
            int(k.split(".")[1]): np.asarray(v, dtype=np.float32).copy()
            for k, v in state.items()
            if k.startswith("v.")
        }


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    decoupled_weight_decay = True
